//! Differential persistence suite and snapshot fault-injection tests.
//!
//! The contract under test: `persist(dir)` + `OramBuilder::resume(dir)` is
//! **behaviourally invisible**.  A seeded workload that is persisted
//! mid-run and resumed into a fresh instance (only the snapshot directory
//! crosses the gap — the original instance is dropped first, so this is
//! what a process restart sees) must produce byte-identical responses and
//! final contents to an uninterrupted oracle, across every scheme point,
//! both tree stores, and both AES engines (the CI matrix runs this file
//! under `ORAM_CRYPTO_FORCE_SOFT` as well).
//!
//! The fault-injection half flips and truncates bytes in the persisted
//! state file and in tree bucket slots on disk: integrity-protected
//! content must surface `FreecursiveError::Integrity` — never silently
//! wrong data — while version mismatches and short files surface as
//! `Config`/`Backend` errors, not panics.

use freecursive::{FreecursiveError, Oram, OramBuilder, Request, SchemePoint, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N: u64 = 512;
const BLOCK: usize = 32;
const ACCESSES: u64 = 4000;
const PERSIST_AT: u64 = ACCESSES / 2;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory for one snapshot.
fn snap_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oram-persistence-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn builder(scheme: SchemePoint, storage: StorageKind) -> OramBuilder {
    OramBuilder::for_scheme(scheme)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(32)
        .seed(7)
        .storage(storage)
}

/// The seeded mixed workload: reads, writes and read-removes drawn from one
/// generator, so driver and oracle see the same stream.
fn request(i: u64, rng: &mut StdRng) -> Request {
    let addr = rng.gen_range(0..N);
    match i % 4 {
        0 | 1 => Request::Read { addr },
        2 => {
            let mut data = vec![0u8; BLOCK];
            rng.fill(&mut data[..]);
            data[0] = i as u8;
            Request::Write { addr, data }
        }
        _ => Request::ReadRemove { addr },
    }
}

#[test]
fn persist_resume_is_byte_identical_to_an_uninterrupted_run() {
    for scheme in [SchemePoint::PX16, SchemePoint::PcX32, SchemePoint::PicX32] {
        for storage in [StorageKind::Mem, StorageKind::TempFile] {
            let label = format!("{}-{:?}", scheme.label(), storage);
            let dir = snap_dir(&label.replace([' ', '{', '}'], ""));

            // The oracle runs the whole workload uninterrupted (in memory;
            // store choice is proven behaviour-neutral by this same test's
            // subject leg).
            let mut oracle = builder(scheme, StorageKind::Mem).build().unwrap();
            let mut subject = builder(scheme, storage.clone()).build().unwrap();
            let mut rng = StdRng::seed_from_u64(0xD1FF);

            for i in 0..ACCESSES {
                let req = request(i, &mut rng);
                let expected = oracle.access(req.clone()).unwrap();
                let got = subject.access(req).unwrap();
                assert_eq!(got, expected, "{label}: access {i}");

                if i + 1 == PERSIST_AT {
                    subject.persist(&dir).unwrap();
                    // Drop before resuming: the resumed instance may see
                    // only what reached the snapshot directory, exactly as
                    // a fresh process would.
                    drop(subject);
                    subject = OramBuilder::resume(&dir).unwrap();
                }
            }

            // Final-contents sweep: every block byte-identical.
            for addr in 0..N {
                assert_eq!(
                    subject.read(addr).unwrap(),
                    oracle.read(addr).unwrap(),
                    "{label}: final contents of block {addr}"
                );
            }
            assert_eq!(
                subject.stats().frontend_requests,
                oracle.stats().frontend_requests,
                "{label}: stats continue across the snapshot"
            );
            drop(subject);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn recursive_and_insecure_schemes_roundtrip_too() {
    for scheme in [SchemePoint::RX8, SchemePoint::Insecure] {
        let dir = snap_dir(&format!("extra-{}", scheme.label()));
        let mut oracle = builder(scheme, StorageKind::Mem).build().unwrap();
        let mut subject = builder(scheme, StorageKind::Mem).build().unwrap();
        let mut rng = StdRng::seed_from_u64(0xBEE);
        for i in 0..600 {
            let req = request(i, &mut rng);
            let expected = oracle.access(req.clone()).unwrap();
            let got = subject.access(req).unwrap();
            assert_eq!(got, expected, "{}: access {i}", scheme.label());
            if i == 299 {
                subject.persist(&dir).unwrap();
                drop(subject);
                subject = OramBuilder::resume(&dir).unwrap();
            }
        }
        for addr in 0..N {
            assert_eq!(subject.read(addr).unwrap(), oracle.read(addr).unwrap());
        }
        drop(subject);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn sharded_composites_persist_into_per_shard_subdirectories() {
    let dir = snap_dir("sharded");
    let make = || {
        builder(SchemePoint::PicX32, StorageKind::Mem)
            .shards(4)
            .build_sharded()
            .unwrap()
    };
    let mut oracle = make();
    let mut subject = make();
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    for i in 0..800 {
        let req = request(i, &mut rng);
        let expected = oracle.access(req.clone()).unwrap();
        assert_eq!(subject.access(req).unwrap(), expected, "access {i}");
    }
    subject.persist(&dir).unwrap();
    for shard in 0..4 {
        assert!(
            dir.join(format!("shard{shard}"))
                .join("oram.state")
                .exists(),
            "per-shard snapshot directory"
        );
    }
    drop(subject);
    let mut resumed = OramBuilder::resume(&dir).unwrap();
    for i in 800..1200u64 {
        let req = request(i, &mut rng);
        let expected = oracle.access(req.clone()).unwrap();
        assert_eq!(resumed.access(req).unwrap(), expected, "post-resume {i}");
    }
    for addr in 0..N {
        assert_eq!(resumed.read(addr).unwrap(), oracle.read(addr).unwrap());
    }
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Builds a persisted PicX32 snapshot to corrupt, returning its directory.
fn persisted_snapshot(tag: &str, storage: StorageKind) -> PathBuf {
    let dir = snap_dir(tag);
    let mut subject = builder(SchemePoint::PicX32, storage).build().unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA);
    for i in 0..400 {
        let req = request(i, &mut rng);
        subject.access(req).unwrap();
    }
    subject.persist(&dir).unwrap();
    dir
}

fn is_backend_error(e: &FreecursiveError) -> bool {
    matches!(
        e,
        FreecursiveError::Backend(_) | FreecursiveError::Config(_)
    )
}

/// `Box<dyn Oram>` has no `Debug`, so `unwrap_err` is unavailable on the
/// resume result; this is the expect-an-error unwrap.
fn resume_err(dir: &std::path::Path) -> FreecursiveError {
    match OramBuilder::resume(dir) {
        Err(e) => e,
        Ok(_) => panic!("resume unexpectedly succeeded"),
    }
}

#[test]
fn flipping_any_state_file_byte_surfaces_as_integrity_violation() {
    let dir = persisted_snapshot("state-flip", StorageKind::Mem);
    let state = dir.join("oram.state");
    let pristine = std::fs::read(&state).unwrap();
    // Sample positions across the whole file: header, payload, digest.
    for pos in [0, 5, 7, 40, pristine.len() / 2, pristine.len() - 1] {
        let mut corrupt = pristine.clone();
        corrupt[pos] ^= 0x08;
        std::fs::write(&state, &corrupt).unwrap();
        match OramBuilder::resume(&dir) {
            Err(FreecursiveError::Integrity { .. }) => {}
            other => panic!(
                "flip at byte {pos}: expected Integrity, got {:?}",
                other.err()
            ),
        }
    }
    std::fs::write(&state, &pristine).unwrap();
    assert!(OramBuilder::resume(&dir).is_ok(), "pristine file resumes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_and_missing_state_files_are_backend_errors_not_panics() {
    let dir = persisted_snapshot("state-trunc", StorageKind::Mem);
    let state = dir.join("oram.state");
    let pristine = std::fs::read(&state).unwrap();
    for len in [0, 3, 15, 40, pristine.len() - 1] {
        std::fs::write(&state, &pristine[..len]).unwrap();
        let err = resume_err(&dir);
        assert!(
            is_backend_error(&err) || matches!(err, FreecursiveError::Integrity { .. }),
            "truncation to {len}: got {err:?}"
        );
    }
    std::fs::remove_file(&state).unwrap();
    let err = resume_err(&dir);
    assert!(is_backend_error(&err), "missing state file: got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_snapshot_temp_file_beside_a_valid_snapshot_is_ignored() {
    // A crash *inside* an atomic state write leaves `oram.state.tmp` (the
    // pre-rename scratch file) beside the last complete snapshot.  Resume
    // must ignore the partial file — whatever garbage it holds — resume
    // from the valid `oram.state`, and clean the orphan up.
    let dir = persisted_snapshot("state-torn-tmp", StorageKind::Mem);
    let tmp = dir.join("oram.state.tmp");
    let pristine = std::fs::read(dir.join("oram.state")).unwrap();
    for torn in [
        Vec::new(),                              // crash before any byte
        pristine[..pristine.len() / 2].to_vec(), // half-written copy
        vec![0xFFu8; pristine.len() + 64],       // wrong-sized garbage
    ] {
        std::fs::write(&tmp, &torn).unwrap();
        let mut resumed = OramBuilder::resume(&dir)
            .unwrap_or_else(|e| panic!("a torn temp file must not block resume: {e:?}"));
        resumed.read(0).unwrap();
        drop(resumed);
        assert!(
            !tmp.exists(),
            "resume should clean up the orphaned temp file"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_mismatch_with_valid_digest_is_a_backend_error() {
    let dir = persisted_snapshot("state-version", StorageKind::Mem);
    let state = dir.join("oram.state");
    let mut bytes = std::fs::read(&state).unwrap();
    // Rewrite the version field and re-seal the digest so the file is a
    // *well-formed* snapshot of an unsupported version, not a corrupt one.
    const DIGEST_BYTES: usize = 28;
    let body_len = bytes.len() - DIGEST_BYTES;
    bytes[4..6].copy_from_slice(&77u16.to_le_bytes());
    let digest = oram_crypto::Sha3_224::digest(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&digest);
    std::fs::write(&state, &bytes).unwrap();
    let err = resume_err(&dir);
    assert!(
        matches!(&err, FreecursiveError::Backend(e) if e.to_string().contains("version")),
        "got {err:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_tree_metadata_is_an_integrity_violation() {
    let dir = persisted_snapshot("meta-flip", StorageKind::Mem);
    let meta = dir.join("tree0.meta");
    let mut bytes = std::fs::read(&meta).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&meta, &bytes).unwrap();
    match OramBuilder::resume(&dir) {
        Err(FreecursiveError::Integrity { .. }) => {}
        other => panic!("expected Integrity, got {:?}", other.err()),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_tree_payload_bytes_on_disk_yield_integrity_never_wrong_data() {
    use freecursive::FreecursiveOram;
    // File-backed subject so the tamper API flips real bytes on disk; a
    // parallel oracle supplies the expected contents.
    let dir = snap_dir("tree-flip");
    let mut oracle = builder(SchemePoint::PicX32, StorageKind::Mem)
        .build()
        .unwrap();
    let mut subject = builder(SchemePoint::PicX32, StorageKind::File { dir: dir.clone() })
        .build_freecursive()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA11);
    for i in 0..600 {
        let req = request(i, &mut rng);
        let expected = oracle.access(req.clone()).unwrap();
        assert_eq!(subject.access(req).unwrap(), expected);
    }
    subject.persist(&dir).unwrap();
    drop(subject);

    let mut resumed = FreecursiveOram::<freecursive::PathOramBackend>::resume(&dir).unwrap();
    // Flip one byte inside slot 0's *data* region of every initialised
    // bucket — on-disk ciphertext corruption that leaves the bucket framing
    // parseable, so any real block in slot 0 decrypts to wrong bytes whose
    // MAC must now fail.  (Corrupting slot metadata instead garbles the
    // framing and surfaces as Backend errors; the adversary suite covers
    // that leg.)
    let data_offset = 8 + 4 * 13 + 2;
    let storage = resumed.backend_mut().storage_mut();
    assert!(storage.is_file_backed());
    let mut flipped = 0u64;
    for idx in 0..storage.num_buckets() as u64 {
        if storage.tamper_xor(idx, data_offset, 0xFF) {
            flipped += 1;
        }
    }
    assert!(flipped > 0, "tamper must reach the tree");

    // Sweep: every response is either byte-identical to the oracle or an
    // integrity violation.  Silent wrong data is the one forbidden outcome.
    let mut violations = 0u64;
    for addr in 0..N {
        let expected = oracle.read(addr).unwrap();
        match resumed.read(addr) {
            Ok(data) => assert_eq!(data, expected, "silent wrong data on block {addr}"),
            Err(e) => {
                assert!(
                    e.is_integrity_violation(),
                    "block {addr}: expected Integrity, got {e:?}"
                );
                violations += 1;
                // The threat model halts the machine here; stop driving
                // the instance past its first detected violation.
                break;
            }
        }
    }
    assert!(violations > 0, "corruption must be detected");
    drop(resumed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resuming_with_the_wrong_scheme_resumer_is_a_backend_error() {
    use freecursive::RecursiveOram;
    let dir = persisted_snapshot("wrong-kind", StorageKind::Mem);
    let err = RecursiveOram::<freecursive::PathOramBackend>::resume(&dir).unwrap_err();
    assert!(is_backend_error(&err), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}
