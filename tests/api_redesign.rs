//! Integration tests for the backend-generic `ObliviousMemory` API: the
//! `OramBuilder` round-trip over every `SchemePoint`, object safety of the
//! `Oram` trait, the `access_batch` equivalence guarantee, and the
//! `OramBackend` seam.

use freecursive::{FreecursiveError, InsecureBackend, Oram, OramBuilder, Request, SchemePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 1 << 10;
const BLOCK: usize = 32;

fn small_builder(scheme: SchemePoint) -> OramBuilder {
    OramBuilder::for_scheme(scheme)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
}

/// Every scheme point constructs through the builder and serves a mixed
/// workload of 200 accesses against a reference memory.
#[test]
fn every_scheme_point_builds_and_serves_mixed_accesses() {
    for scheme in SchemePoint::all_points() {
        let mut oram = small_builder(scheme)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.label()));
        assert_eq!(oram.num_blocks(), N, "{}", scheme.label());
        assert_eq!(oram.block_bytes(), BLOCK, "{}", scheme.label());

        let mut rng = StdRng::seed_from_u64(0xA11 ^ scheme.label().len() as u64);
        let mut reference: Vec<Vec<u8>> = vec![vec![0u8; BLOCK]; N as usize];
        for i in 0..200u32 {
            let addr = rng.gen_range(0..N);
            match i % 4 {
                0 | 1 => {
                    let mut data = vec![0u8; BLOCK];
                    rng.fill(&mut data[..]);
                    oram.write(addr, &data).unwrap();
                    reference[addr as usize] = data;
                }
                2 => {
                    assert_eq!(
                        oram.read(addr).unwrap(),
                        reference[addr as usize],
                        "{} access {i} addr {addr}",
                        scheme.label()
                    );
                }
                _ => {
                    assert_eq!(
                        oram.read_remove(addr).unwrap(),
                        reference[addr as usize],
                        "{} access {i} addr {addr}",
                        scheme.label()
                    );
                    reference[addr as usize] = vec![0u8; BLOCK];
                }
            }
        }
        assert_eq!(oram.stats().frontend_requests, 200, "{}", scheme.label());
    }
}

/// The `Oram` trait is object-safe: heterogeneous design points can be
/// collected, dispatched and served through `Box<dyn Oram>`.
#[test]
fn oram_trait_objects_serve_requests() {
    let mut orams: Vec<(SchemePoint, Box<dyn Oram>)> = SchemePoint::all_points()
        .into_iter()
        .map(|s| (s, small_builder(s).build().unwrap()))
        .collect();
    for (scheme, oram) in &mut orams {
        oram.write(1, &[0x42; BLOCK]).unwrap();
        let response = oram
            .access(Request::Read { addr: 1 })
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.label()));
        assert_eq!(response.data.as_deref(), Some(&[0x42u8; BLOCK][..]));
        // Errors come through the unified enum regardless of the frontend.
        assert!(matches!(oram.read(N), Err(FreecursiveError::Backend(_))));
    }
}

/// `access_batch` on a 1k-request mixed trace produces byte-identical final
/// contents to sequential `read`/`write` calls — on the full design and on
/// the baseline, over both backends.
#[test]
fn access_batch_equals_sequential_on_a_1k_mixed_trace() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let requests: Vec<Request> = (0..1000)
        .map(|i| {
            let addr = rng.gen_range(0..N);
            match i % 5 {
                0 | 1 => Request::Read { addr },
                2 | 3 => {
                    let mut data = vec![0u8; BLOCK];
                    rng.fill(&mut data[..]);
                    Request::Write { addr, data }
                }
                _ => Request::ReadRemove { addr },
            }
        })
        .collect();

    for scheme in [SchemePoint::PicX32, SchemePoint::RX8, SchemePoint::Insecure] {
        let mut batched = small_builder(scheme).build().unwrap();
        let mut sequential = small_builder(scheme).build().unwrap();

        let batch_responses = batched.access_batch(&requests).unwrap();
        let mut seq_responses = Vec::new();
        for request in &requests {
            // Drive the sequential twin exclusively through the convenience
            // wrappers, reconstructing the responses.
            let response = match request {
                Request::Read { addr } => freecursive::Response {
                    addr: *addr,
                    data: Some(sequential.read(*addr).unwrap()),
                },
                Request::Write { addr, data } => {
                    sequential.write(*addr, data).unwrap();
                    freecursive::Response {
                        addr: *addr,
                        data: None,
                    }
                }
                Request::ReadRemove { addr } => freecursive::Response {
                    addr: *addr,
                    data: Some(sequential.read_remove(*addr).unwrap()),
                },
            };
            seq_responses.push(response);
        }
        assert_eq!(batch_responses, seq_responses, "{}", scheme.label());

        // Byte-identical final contents.
        for addr in 0..N {
            assert_eq!(
                batched.read(addr).unwrap(),
                sequential.read(addr).unwrap(),
                "{} final contents diverge at {addr}",
                scheme.label()
            );
        }
    }
}

/// A batch that fails mid-way stops at the failing request.
#[test]
fn access_batch_stops_at_the_first_error() {
    let mut oram = small_builder(SchemePoint::PicX32).build().unwrap();
    let requests = vec![
        Request::Write {
            addr: 1,
            data: vec![7u8; BLOCK],
        },
        Request::Read { addr: N }, // out of range
        Request::Write {
            addr: 2,
            data: vec![9u8; BLOCK],
        },
    ];
    assert!(oram.access_batch(&requests).is_err());
    // The first write landed, the one after the failure did not.
    assert_eq!(oram.read(1).unwrap(), vec![7u8; BLOCK]);
    assert_eq!(oram.read(2).unwrap(), vec![0u8; BLOCK]);
}

/// The `OramBackend` seam: the same frontend configuration runs over the
/// Path ORAM tree and over the flat insecure backend with identical
/// contents semantics.
#[test]
fn freecursive_frontend_is_backend_generic() {
    let builder = small_builder(SchemePoint::PicX32);
    let mut on_tree = builder.build_freecursive().unwrap();
    let mut on_flat = builder.build_freecursive_on::<InsecureBackend>().unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..400 {
        let addr = rng.gen_range(0..N);
        if rng.gen_bool(0.5) {
            let mut data = vec![0u8; BLOCK];
            rng.fill(&mut data[..]);
            on_tree.write(addr, &data).unwrap();
            on_flat.write(addr, &data).unwrap();
        } else {
            assert_eq!(on_tree.read(addr).unwrap(), on_flat.read(addr).unwrap());
        }
    }
    // Both ran the full frontend: same request counts, PMMAC active on both.
    assert_eq!(
        on_tree.stats().frontend_requests,
        on_flat.stats().frontend_requests
    );
    assert!(on_tree.stats().macs_verified > 0);
    assert!(on_flat.stats().macs_verified > 0);
}
