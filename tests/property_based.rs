//! Randomised property tests over the core data structures and the
//! functional ORAM: serialisation roundtrips, counter monotonicity, tree
//! index arithmetic, and linearisability of the ORAM against a reference
//! memory under arbitrary request sequences.
//!
//! The environment has no crates.io access, so instead of proptest these
//! properties are driven by a seeded RNG over many randomly drawn cases —
//! deterministic across runs, with the failing case identified by its index.

use freecursive::{Oram, OramBuilder, SchemePoint};
use oram_crypto::mac::MacKey;
use oram_crypto::prf::{AesPrf, Prf};
use path_oram::tree;
use path_oram::OramParams;
use posmap::addressing::{tag_address, untag_address, RecursionAddressing};
use posmap::CompressedPosMapBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compressed PosMap blocks survive a serialise/parse roundtrip for any
/// counter state reachable by increments.
#[test]
fn compressed_posmap_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0001);
    for case in 0..64 {
        let mut block = CompressedPosMapBlock::with_defaults(32);
        let increments = rng.gen_range(0usize..200);
        for _ in 0..increments {
            block.increment(rng.gen_range(0usize..32));
        }
        let bytes = block.to_bytes(64);
        assert_eq!(
            CompressedPosMapBlock::from_bytes(&bytes, 32, 64, 14),
            block,
            "case {case}"
        );
    }
}

/// The scalar counter GC‖IC of any entry never decreases, whatever the
/// interleaving of increments across entries.
#[test]
fn compressed_counters_are_monotonic() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0002);
    for case in 0..64 {
        let mut block = CompressedPosMapBlock::new(8, 32, 4);
        let mut last: Vec<u64> = (0..8).map(|j| block.counter_of(j)).collect();
        let increments = rng.gen_range(1usize..300);
        for _ in 0..increments {
            block.increment(rng.gen_range(0usize..8));
            for (k, l) in last.iter_mut().enumerate() {
                let now = block.counter_of(k);
                assert!(
                    now >= *l,
                    "case {case}: entry {k} went backwards: {l} -> {now}"
                );
                *l = now;
            }
        }
    }
}

/// Tree index arithmetic: every bucket on a path is an ancestor of the leaf
/// bucket, and the block-residency predicate agrees with the
/// deepest-common-level computation.
#[test]
fn path_indices_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0003);
    for case in 0..64 {
        let leaf_level = rng.gen_range(1u32..20);
        let leaf = rng.gen::<u64>() & ((1u64 << leaf_level) - 1);
        let path = tree::path_linear_indices(leaf, leaf_level);
        assert_eq!(path.len() as u32, leaf_level + 1, "case {case}");
        for (level, linear) in path.iter().enumerate() {
            let (lvl, idx) = tree::bucket_coordinates(*linear);
            assert_eq!(lvl, level as u32, "case {case}");
            assert_eq!(idx, leaf >> (leaf_level - level as u32), "case {case}");
        }
        let other = (leaf ^ 1) & ((1u64 << leaf_level) - 1);
        let deepest = tree::deepest_common_level(leaf, other, leaf_level);
        assert!(
            tree::block_can_reside(leaf, other, deepest, leaf_level),
            "case {case}"
        );
    }
}

/// Unified address tagging is injective and reversible.
#[test]
fn unified_address_tagging_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0004);
    for _ in 0..256 {
        let level = rng.gen_range(0u32..8);
        let index = rng.gen_range(0u64..(1u64 << 40));
        assert_eq!(untag_address(tag_address(level, index)), (level, index));
    }
}

/// Recursion addressing: the covering PosMap block at each level really
/// covers the data block (the entry index is within X), and the deepest level
/// fits the on-chip PosMap.
#[test]
fn recursion_addressing_covers_every_block() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0005);
    for case in 0..64 {
        let n = 1u64 << rng.gen_range(8u32..22);
        let x = 1u64 << rng.gen_range(1u32..6);
        let rec = RecursionAddressing::new(n, x, 64);
        let a0 = rng.gen::<u64>() % n;
        for level in 1..rec.num_levels() {
            let parent = rec.posmap_block_addr(level, a0);
            let child = rec.posmap_block_addr(level - 1, a0);
            assert_eq!(parent, child / x, "case {case}");
            assert!(rec.entry_index(level, a0) < x as usize, "case {case}");
        }
        assert!(rec.required_onchip_entries() <= 64.max(n), "case {case}");
    }
}

/// OramParams always provides at least 2N slots and bucket sizes padded to
/// the configured alignment.
#[test]
fn oram_params_capacity_invariant() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0006);
    for case in 0..128 {
        let n = rng.gen_range(1u64..(1 << 24));
        let block = rng.gen_range(16usize..256);
        let z = rng.gen_range(2usize..8);
        let p = OramParams::new(n, block, z);
        let slots = p.z as u64 * (p.num_buckets() + 1);
        assert!(slots >= 2 * n, "case {case}: n={n} block={block} z={z}");
        assert_eq!(p.bucket_bytes() % p.bucket_align, 0, "case {case}");
        assert!(p.path_bytes() >= p.bucket_bytes() as u64, "case {case}");
    }
}

/// PRF leaves always fall inside the tree.
#[test]
fn prf_leaves_are_in_range() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0007);
    let prf = AesPrf::new([3u8; 16]);
    for _ in 0..256 {
        let addr = rng.gen::<u64>();
        let counter = rng.gen::<u64>();
        let levels = rng.gen_range(0u32..40);
        let leaf = prf.leaf_for(addr, counter, levels);
        assert!(levels == 0 || leaf < (1u64 << levels));
    }
}

/// MAC verification accepts exactly the tuple that was MACed.
#[test]
fn mac_detects_any_single_field_change() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0008);
    let key = MacKey::new([1u8; 16]);
    for case in 0..64 {
        let counter = rng.gen::<u64>();
        let addr = rng.gen::<u64>();
        let mut data = vec![0u8; rng.gen_range(1usize..64)];
        rng.fill(&mut data[..]);
        let mac = key.compute(counter, addr, &data);
        assert!(key.verify(counter, addr, &data, &mac), "case {case}");
        assert!(
            !key.verify(counter.wrapping_add(1), addr, &data, &mac),
            "case {case}"
        );
        assert!(!key.verify(counter, addr ^ 1, &data, &mac), "case {case}");
        let mut tampered = data.clone();
        tampered[0] ^= 0x80;
        assert!(!key.verify(counter, addr, &tampered, &mac), "case {case}");
    }
}

/// The Freecursive ORAM behaves exactly like a flat array of blocks under
/// arbitrary (bounded) request sequences, for both the compressed and
/// flat-counter designs.
#[test]
fn oram_is_linearisable_against_reference_memory() {
    let mut rng = StdRng::seed_from_u64(0xC0DE_0009);
    let n: u64 = 256;
    let block = 32usize;
    for case in 0..6 {
        let scheme = if case % 2 == 0 {
            SchemePoint::PicX32
        } else {
            SchemePoint::PiX8
        };
        let mut oram = OramBuilder::for_scheme(scheme)
            .num_blocks(n)
            .block_bytes(block)
            .onchip_entries(32)
            .build_freecursive()
            .unwrap();
        let mut reference: Vec<Vec<u8>> = vec![vec![0u8; block]; n as usize];
        let ops = rng.gen_range(1usize..120);
        for op in 0..ops {
            let addr = rng.gen_range(0u64..n);
            if rng.gen_bool(0.5) {
                let data = vec![rng.gen::<u8>(); block];
                oram.write(addr, &data).unwrap();
                reference[addr as usize] = data;
            } else {
                assert_eq!(
                    oram.read(addr).unwrap(),
                    reference[addr as usize],
                    "case {case} op {op} addr {addr}"
                );
            }
        }
    }
}
