//! Property-based tests (proptest) over the core data structures and the
//! functional ORAM: serialisation roundtrips, counter monotonicity, tree
//! index arithmetic, and linearisability of the ORAM against a reference
//! memory under arbitrary request sequences.

use freecursive::{FreecursiveConfig, FreecursiveOram, Oram, PosMapFormat};
use oram_crypto::mac::MacKey;
use oram_crypto::prf::{AesPrf, Prf};
use path_oram::tree;
use path_oram::OramParams;
use posmap::addressing::{tag_address, untag_address, RecursionAddressing};
use posmap::CompressedPosMapBlock;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compressed PosMap blocks survive a serialise/parse roundtrip for any
    /// counter state reachable by increments.
    #[test]
    fn compressed_posmap_roundtrip(increments in proptest::collection::vec(0usize..32, 0..200)) {
        let mut block = CompressedPosMapBlock::with_defaults(32);
        for j in increments {
            block.increment(j);
        }
        let bytes = block.to_bytes(64);
        prop_assert_eq!(
            CompressedPosMapBlock::from_bytes(&bytes, 32, 64, 14),
            block
        );
    }

    /// The scalar counter GC‖IC of any entry never decreases, whatever the
    /// interleaving of increments across entries.
    #[test]
    fn compressed_counters_are_monotonic(increments in proptest::collection::vec(0usize..8, 1..300)) {
        let mut block = CompressedPosMapBlock::new(8, 32, 4);
        let mut last: Vec<u64> = (0..8).map(|j| block.counter_of(j)).collect();
        for j in increments {
            block.increment(j);
            for (k, l) in last.iter_mut().enumerate() {
                let now = block.counter_of(k);
                prop_assert!(now >= *l, "entry {} went backwards: {} -> {}", k, *l, now);
                *l = now;
            }
        }
    }

    /// Tree index arithmetic: every bucket on a path is an ancestor of the
    /// leaf bucket, and the block-residency predicate agrees with the
    /// deepest-common-level computation.
    #[test]
    fn path_indices_are_consistent(leaf_level in 1u32..20, leaf_bits in 0u64..u64::MAX) {
        let leaf = leaf_bits & ((1u64 << leaf_level) - 1);
        let path = tree::path_linear_indices(leaf, leaf_level);
        prop_assert_eq!(path.len() as u32, leaf_level + 1);
        for (level, linear) in path.iter().enumerate() {
            let (lvl, idx) = tree::bucket_coordinates(*linear);
            prop_assert_eq!(lvl, level as u32);
            prop_assert_eq!(idx, leaf >> (leaf_level - level as u32));
        }
        let other = (leaf ^ 1) & ((1u64 << leaf_level) - 1);
        let deepest = tree::deepest_common_level(leaf, other, leaf_level);
        prop_assert!(tree::block_can_reside(leaf, other, deepest, leaf_level));
    }

    /// Unified address tagging is injective and reversible.
    #[test]
    fn unified_address_tagging_roundtrips(level in 0u32..8, index in 0u64..(1u64 << 40)) {
        prop_assert_eq!(untag_address(tag_address(level, index)), (level, index));
    }

    /// Recursion addressing: the covering PosMap block at each level really
    /// covers the data block (the entry index is within X), and the deepest
    /// level fits the on-chip PosMap.
    #[test]
    fn recursion_addressing_covers_every_block(
        n_exp in 8u32..22,
        x_exp in 1u32..6,
        addr_bits in 0u64..u64::MAX,
    ) {
        let n = 1u64 << n_exp;
        let x = 1u64 << x_exp;
        let rec = RecursionAddressing::new(n, x, 64);
        let a0 = addr_bits % n;
        for level in 1..rec.num_levels() {
            let parent = rec.posmap_block_addr(level, a0);
            let child = rec.posmap_block_addr(level - 1, a0);
            prop_assert_eq!(parent, child / x);
            prop_assert!(rec.entry_index(level, a0) < x as usize);
        }
        prop_assert!(rec.required_onchip_entries() <= 64.max(n));
    }

    /// OramParams always provides at least 2N slots and bucket sizes padded
    /// to the configured alignment.
    #[test]
    fn oram_params_capacity_invariant(n in 1u64..(1 << 24), block in 16usize..256, z in 2usize..8) {
        let p = OramParams::new(n, block, z);
        let slots = p.z as u64 * (p.num_buckets() + 1);
        prop_assert!(slots >= 2 * n);
        prop_assert_eq!(p.bucket_bytes() % p.bucket_align, 0);
        prop_assert!(p.path_bytes() >= p.bucket_bytes() as u64);
    }

    /// PRF leaves always fall inside the tree.
    #[test]
    fn prf_leaves_are_in_range(addr: u64, counter: u64, levels in 0u32..40) {
        let prf = AesPrf::new([3u8; 16]);
        let leaf = prf.leaf_for(addr, counter, levels);
        prop_assert!(levels == 0 || leaf < (1u64 << levels));
    }

    /// MAC verification accepts exactly the tuple that was MACed.
    #[test]
    fn mac_detects_any_single_field_change(counter: u64, addr: u64, data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let key = MacKey::new([1u8; 16]);
        let mac = key.compute(counter, addr, &data);
        prop_assert!(key.verify(counter, addr, &data, &mac));
        prop_assert!(!key.verify(counter.wrapping_add(1), addr, &data, &mac));
        prop_assert!(!key.verify(counter, addr ^ 1, &data, &mac));
        let mut tampered = data.clone();
        tampered[0] ^= 0x80;
        prop_assert!(!key.verify(counter, addr, &tampered, &mac));
    }
}

proptest! {
    // The full-ORAM linearisability property runs fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The Freecursive ORAM behaves exactly like a flat array of blocks under
    /// arbitrary (bounded) request sequences, for both the compressed and
    /// flat-counter designs.
    #[test]
    fn oram_is_linearisable_against_reference_memory(
        ops in proptest::collection::vec((0u64..256, any::<bool>(), any::<u8>()), 1..120),
        compressed: bool,
    ) {
        let n: u64 = 256;
        let block = 32usize;
        let config = if compressed {
            FreecursiveConfig::pic_x32(n, block)
        } else {
            FreecursiveConfig {
                posmap_format: PosMapFormat::FlatCounters,
                ..FreecursiveConfig::pi_x8(n, block)
            }
        }
        .with_onchip_entries(32);
        let mut oram = FreecursiveOram::new(config).unwrap();
        let mut reference: Vec<Vec<u8>> = vec![vec![0u8; block]; n as usize];
        for (addr, is_write, fill) in ops {
            if is_write {
                let data = vec![fill; block];
                oram.write(addr, &data).unwrap();
                reference[addr as usize] = data;
            } else {
                prop_assert_eq!(&oram.read(addr).unwrap(), &reference[addr as usize]);
            }
        }
    }
}
