//! Kill-point recovery suite for the crash-consistent [`FileStore`].
//!
//! The durability contract under test (see `path_oram::wal`):
//!
//! * a path writeback is WAL-logged **before** the tree file is touched, so
//!   a kill at any byte of the sequence leaves either a torn log record
//!   (the writeback never happened) or a complete one (replay finishes the
//!   tree writes on reopen);
//! * recovery replays the checksum-valid log tail, stopping cleanly at the
//!   first torn or invalid record — it never panics, and it never applies
//!   unvalidated bytes;
//! * the recovered store equals the state an uninterrupted run had after
//!   some *prefix* of the workload — exactly the writebacks whose log
//!   records were complete — never a torn mixture and never silently wrong
//!   data.
//!
//! Every sweep below drives the same deterministic workload against a
//! differential oracle (a flat per-bucket model), injects a kill at a
//! chosen point via the store's fault hooks, reopens, and checks the
//! recovered image byte-for-byte against the oracle's prefix state.
//! Because the simulated kill is in-process (the budgeted prefix of the
//! record reaches the file, nothing after it does), the recovery point is
//! exact, not merely bounded.

use path_oram::storage::TreeStore as _;
use path_oram::{Durability, FileStore, OramParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn params() -> OramParams {
    OramParams::new(64, 16, 4)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "oram-crash-test-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One writeback of the deterministic workload: a root-to-leaf path (as
/// linear bucket indices) and the sealed image to write along it.
struct Writeback {
    indices: Vec<u64>,
    image: Vec<u8>,
}

/// A fixed pseudo-random workload of `n` path writebacks.  Leaves cycle
/// through the tree so every sweep touches overlapping paths (the root is
/// rewritten by each of them — the interesting case for replay
/// idempotence), and images are distinct per step so a wrong recovery
/// point cannot alias a right one.
fn workload(p: &OramParams, n: usize) -> Vec<Writeback> {
    let leaf_level = p.leaf_level();
    let bb = p.bucket_bytes();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|step| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let leaf = state % p.num_leaves();
            let indices = path_oram::tree::path_linear_indices(leaf, leaf_level);
            let image: Vec<u8> = (0..indices.len() * bb)
                .map(|i| {
                    ((i as u64)
                        .wrapping_mul(31)
                        .wrapping_add(step as u64 * 131 + 7)
                        % 251) as u8
                        + 1
                })
                .collect();
            Writeback { indices, image }
        })
        .collect()
}

/// The differential oracle: a flat model of the tree applying writebacks
/// in order.  `None` = never written (the store reports uninitialised).
struct Oracle {
    buckets: Vec<Option<Vec<u8>>>,
    bucket_bytes: usize,
}

impl Oracle {
    fn new(p: &OramParams) -> Self {
        Self {
            buckets: vec![None; p.num_buckets() as usize],
            bucket_bytes: p.bucket_bytes(),
        }
    }

    fn apply(&mut self, wb: &Writeback) {
        for (level, &index) in wb.indices.iter().enumerate() {
            let image =
                wb.image[level * self.bucket_bytes..(level + 1) * self.bucket_bytes].to_vec();
            self.buckets[index as usize] = Some(image);
        }
    }

    /// Model state after the first `prefix` writebacks.
    fn after(p: &OramParams, wbs: &[Writeback], prefix: usize) -> Self {
        let mut oracle = Self::new(p);
        for wb in &wbs[..prefix] {
            oracle.apply(wb);
        }
        oracle
    }

    /// Asserts the store's full image equals this model, bucket for bucket.
    fn assert_matches(&self, store: &FileStore, context: &str) {
        let mut out = vec![0u8; self.bucket_bytes];
        for (index, expected) in self.buckets.iter().enumerate() {
            let index = index as u64;
            match expected {
                Some(image) => {
                    assert!(
                        store.is_initialized(index),
                        "{context}: bucket {index} lost"
                    );
                    store.read_bucket_into(index, &mut out).unwrap();
                    assert_eq!(&out, image, "{context}: bucket {index} content diverged");
                }
                None => {
                    assert!(
                        !store.is_initialized(index),
                        "{context}: bucket {index} materialised from nowhere"
                    );
                }
            }
        }
    }
}

const WORKLOAD_LEN: usize = 12;

/// Byte length of one WAL record for this geometry (header-relative), probed
/// from a real log so the sweeps stay honest if the format changes.
fn probe_record_len(p: &OramParams) -> (u64, u64) {
    let dir = temp_dir("probe");
    let mut store = FileStore::create(p, &dir, 0, Durability::Strict).unwrap();
    let wal_path = dir.join("tree0.wal");
    let header_len = std::fs::metadata(&wal_path).unwrap().len();
    let wb = &workload(p, 1)[0];
    store.write_path(&wb.indices, &wb.image).unwrap();
    let after_one = std::fs::metadata(&wal_path).unwrap().len();
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
    (header_len, after_one - header_len)
}

/// Sweep A: kill inside the WAL append of every writeback, at the record
/// boundary and at offsets throughout the record.  The log holds k-1
/// complete records plus a torn prefix of record k; recovery must land
/// exactly on the state after k-1 writebacks.
#[test]
fn kill_points_inside_every_wal_append_recover_the_exact_prefix() {
    let p = params();
    let (_, rec_len) = probe_record_len(&p);
    let wbs = workload(&p, WORKLOAD_LEN);
    for k in 1..=WORKLOAD_LEN {
        for offset in [0, 1, rec_len / 2, rec_len - 1] {
            let dir = temp_dir("sweep-a");
            let mut store = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
            // Permit records 1..k in full, then `offset` bytes of record k.
            store.set_fail_after_wal_bytes((k as u64 - 1) * rec_len + offset);
            let mut completed = 0usize;
            let mut killed = false;
            for wb in &wbs {
                match store.write_path(&wb.indices, &wb.image) {
                    Ok(()) => completed += 1,
                    Err(path_oram::OramError::Storage { detail }) => {
                        assert!(
                            detail.contains("injected crash"),
                            "unexpected error: {detail}"
                        );
                        killed = true;
                        break;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            assert!(killed, "kill point k={k} offset={offset} never fired");
            assert_eq!(completed, k - 1);
            drop(store);

            let recovered = FileStore::open(&p, &dir, 0, Durability::Strict).unwrap();
            assert_eq!(
                recovered.wal_seq(),
                k as u64 - 1,
                "k={k} offset={offset}: wrong recovery sequence"
            );
            Oracle::after(&p, &wbs, k - 1)
                .assert_matches(&recovered, &format!("k={k} offset={offset}"));
            drop(recovered);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Sweep B: kill inside the tree writes of every writeback, after 0, 1 and
/// 2 buckets of the path have hit the file.  The WAL record is complete,
/// so recovery must *finish* the writeback: state after k, not k-1.
#[test]
fn kill_points_inside_every_tree_write_replay_to_completion() {
    let p = params();
    let wbs = workload(&p, WORKLOAD_LEN);
    let path_len = wbs[0].indices.len() as u64;
    for k in 1..=WORKLOAD_LEN {
        for torn_buckets in [0u64, 1, path_len - 1] {
            let dir = temp_dir("sweep-b");
            let mut store = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
            store.set_fail_after_tree_writes((k as u64 - 1) * path_len + torn_buckets);
            let mut killed = false;
            for wb in &wbs {
                match store.write_path(&wb.indices, &wb.image) {
                    Ok(()) => {}
                    Err(path_oram::OramError::Storage { detail }) => {
                        assert!(
                            detail.contains("injected crash"),
                            "unexpected error: {detail}"
                        );
                        killed = true;
                        break;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            assert!(killed, "kill point k={k} torn={torn_buckets} never fired");
            drop(store);

            let recovered = FileStore::open(&p, &dir, 0, Durability::Strict).unwrap();
            assert_eq!(
                recovered.wal_seq(),
                k as u64,
                "k={k} torn={torn_buckets}: the logged writeback must be replayed"
            );
            Oracle::after(&p, &wbs, k)
                .assert_matches(&recovered, &format!("k={k} torn={torn_buckets}"));
            drop(recovered);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Builds a directory whose WAL holds the whole workload but whose tree
/// file absorbed **none** of it (tree writes fail from the first bucket).
/// This is the worst-case recovery shape: everything rides on the log.
fn stale_tree_full_log(p: &OramParams, wbs: &[Writeback]) -> PathBuf {
    let dir = temp_dir("stale");
    let mut store = FileStore::create(p, &dir, 0, Durability::Strict).unwrap();
    store.set_fail_after_tree_writes(0);
    for wb in wbs {
        // Every call logs its record, then dies on the first tree write.
        assert!(store.write_path(&wb.indices, &wb.image).is_err());
    }
    drop(store);
    dir
}

/// Post-mortem truncation sweep: chop the log at every byte length and
/// reopen.  Recovery must never panic and never error — a short log is the
/// expected shape of a crash — and must recover exactly the writebacks
/// whose records survived in full.
#[test]
fn truncating_the_log_at_every_byte_recovers_a_valid_prefix() {
    let p = params();
    let (header_len, rec_len) = probe_record_len(&p);
    let wbs = workload(&p, 6);
    let master = stale_tree_full_log(&p, &wbs);
    let wal_bytes = std::fs::read(master.join("tree0.wal")).unwrap();
    assert_eq!(wal_bytes.len() as u64, header_len + 6 * rec_len);

    let dir = temp_dir("trunc");
    for len in 0..=wal_bytes.len() {
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        std::fs::write(dir.join("tree0.wal"), &wal_bytes[..len]).unwrap();
        let complete_records = (len as u64).saturating_sub(header_len) / rec_len;
        let recovered = FileStore::open(&p, &dir, 0, Durability::Strict)
            .unwrap_or_else(|e| panic!("truncation at {len} must recover cleanly: {e}"));
        assert_eq!(recovered.wal_seq(), complete_records, "truncation at {len}");
        Oracle::after(&p, &wbs, complete_records as usize)
            .assert_matches(&recovered, &format!("truncation at {len}"));
        drop(recovered);
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&master).unwrap();
}

/// Post-mortem corruption sweep: flip one byte at positions across the log
/// and reopen.  The per-record digests must stop replay at the corrupted
/// record — never panic, never apply the poisoned bytes, never touch a
/// record *before* the flip.
#[test]
fn flipping_any_log_byte_recovers_the_checksummed_prefix() {
    let p = params();
    let (header_len, rec_len) = probe_record_len(&p);
    let wbs = workload(&p, 6);
    let master = stale_tree_full_log(&p, &wbs);
    let wal_bytes = std::fs::read(master.join("tree0.wal")).unwrap();

    let dir = temp_dir("flip");
    for pos in (0..wal_bytes.len()).step_by(3) {
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        let mut poisoned = wal_bytes.clone();
        poisoned[pos] ^= 0x41;
        std::fs::write(dir.join("tree0.wal"), &poisoned).unwrap();
        // A flip in the header invalidates the whole log; a flip in record
        // r (1-based) stops replay just before it.
        let intact_records = if (pos as u64) < header_len {
            0
        } else {
            ((pos as u64) - header_len) / rec_len
        };
        let recovered = FileStore::open(&p, &dir, 0, Durability::Strict)
            .unwrap_or_else(|e| panic!("flip at {pos} must recover cleanly: {e}"));
        assert_eq!(recovered.wal_seq(), intact_records, "flip at {pos}");
        Oracle::after(&p, &wbs, intact_records as usize)
            .assert_matches(&recovered, &format!("flip at {pos}"));
        drop(recovered);
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&master).unwrap();
}

/// Batch mode buffers fsyncs but still orders the log ahead of the tree:
/// the in-process kill sweep must hold under `Batch` exactly as under
/// `Strict` (the fsync discipline changes what a *power loss* keeps, not
/// what a process kill keeps).
#[test]
fn batch_mode_kill_points_recover_like_strict() {
    let p = params();
    let (_, rec_len) = probe_record_len(&p);
    let wbs = workload(&p, WORKLOAD_LEN);
    for k in [1usize, 5, WORKLOAD_LEN] {
        let dir = temp_dir("batch");
        let mut store = FileStore::create(&p, &dir, 0, Durability::Batch(4)).unwrap();
        store.set_fail_after_wal_bytes((k as u64 - 1) * rec_len + rec_len / 3);
        for wb in &wbs {
            if store.write_path(&wb.indices, &wb.image).is_err() {
                break;
            }
        }
        drop(store);
        let recovered = FileStore::open(&p, &dir, 0, Durability::Batch(4)).unwrap();
        assert_eq!(recovered.wal_seq(), k as u64 - 1);
        Oracle::after(&p, &wbs, k - 1).assert_matches(&recovered, &format!("batch k={k}"));
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A kill during the post-checkpoint log truncation leaves an empty or
/// bare-header log; the checkpoint that preceded it covers every applied
/// record, so recovery from the metadata alone must be complete.
#[test]
fn recovery_after_a_checkpoint_needs_no_log_tail() {
    let p = params();
    let wbs = workload(&p, WORKLOAD_LEN);
    let dir = temp_dir("ckpt");
    let mut store = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
    for wb in &wbs {
        store.write_path(&wb.indices, &wb.image).unwrap();
    }
    store.checkpoint().unwrap();
    drop(store);
    // Simulate the worst truncation crash: the log vanishes entirely.
    std::fs::remove_file(dir.join("tree0.wal")).unwrap();
    let recovered = FileStore::open(&p, &dir, 0, Durability::Strict).unwrap();
    assert_eq!(recovered.wal_seq(), WORKLOAD_LEN as u64);
    Oracle::after(&p, &wbs, WORKLOAD_LEN).assert_matches(&recovered, "post-checkpoint");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// ORAM-level legs: the controller-state barrier over a crash-consistent
// store.
// ---------------------------------------------------------------------

mod oram_level {
    use super::temp_dir;
    use freecursive::{Durability, FreecursiveError, Oram, OramBuilder, SchemePoint, StorageKind};

    fn builder(dir: &std::path::Path) -> OramBuilder {
        OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(256)
            .block_bytes(64)
            .onchip_entries(32)
            .storage(StorageKind::File {
                dir: dir.to_path_buf(),
            })
            .durability(Durability::Strict)
            .seed(7)
    }

    /// persist → drop → resume over a logged file store round-trips, and
    /// the resumed instance serves the persisted contents.
    #[test]
    fn persist_then_resume_round_trips_under_strict_durability() {
        let dir = temp_dir("oram-ok");
        let mut oram = builder(&dir).build_freecursive().unwrap();
        for addr in 0..16u64 {
            oram.write(addr, &[addr as u8 + 1; 64]).unwrap();
        }
        oram.persist(&dir).unwrap();
        drop(oram);
        let mut resumed = OramBuilder::resume(&dir).unwrap();
        for addr in 0..16u64 {
            assert_eq!(resumed.read(addr).unwrap(), vec![addr as u8 + 1; 64]);
        }
        drop(resumed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Accesses after the last persist move the tree past the controller
    /// barrier.  Resume must detect the mismatch and fail cleanly — under
    /// PR 5's unlogged store this same shape silently resumed against a
    /// drifted tree and failed later with integrity errors.
    #[test]
    fn resume_past_the_barrier_is_a_clean_error_not_silent_corruption() {
        let dir = temp_dir("oram-drift");
        let mut oram = builder(&dir).build_freecursive().unwrap();
        for addr in 0..8u64 {
            oram.write(addr, &[addr as u8 + 1; 64]).unwrap();
        }
        oram.persist(&dir).unwrap();
        // Post-barrier work: WAL-logged writebacks the controller state
        // knows nothing about.
        for addr in 8..16u64 {
            oram.write(addr, &[0xEE; 64]).unwrap();
        }
        drop(oram);
        match OramBuilder::resume(&dir) {
            Err(FreecursiveError::Backend(path_oram::OramError::Snapshot { detail })) => {
                assert!(
                    detail.contains("barrier") || detail.contains("writeback"),
                    "barrier error should explain itself: {detail}"
                );
            }
            Err(other) => panic!("expected a clean barrier error, got: {other}"),
            Ok(_) => panic!("resume must not silently accept a drifted tree"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The durability knob rides the snapshot: a resumed instance keeps
    /// logging without the caller restating the mode.
    #[test]
    fn resumed_instances_keep_their_wal() {
        let dir = temp_dir("oram-rewal");
        let mut oram = builder(&dir).build_freecursive().unwrap();
        oram.write(3, &[0x3A; 64]).unwrap();
        oram.persist(&dir).unwrap();
        drop(oram);
        let resumed = OramBuilder::resume(&dir).unwrap();
        assert!(
            dir.join("tree0.wal").exists(),
            "resume under a logged config must reopen a log generation"
        );
        drop(resumed);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
