//! Differential equivalence suite for the tiered treetop store.
//!
//! The contract under test: `StorageKind::Tiered` — top K tree levels in a
//! RAM arena, the rest in the file store, K derived from the
//! `memory_budget` knob — is **behaviourally invisible**.  A seeded mixed
//! workload through a tiered instance must produce byte-identical responses
//! and final contents to an in-memory oracle for every treetop split,
//! including both degenerate corners (budget 0: everything file-backed;
//! unbounded budget: the whole tree in the arena).  The same must hold when
//! the workload is submitted through `access_batch` — which engages the
//! backend's batch dedup scheduler over non-arena stores — and across a
//! mid-run persist/resume cycle, where the budget travels inside the
//! snapshot's config codec.

use freecursive::{Oram, OramBuilder, Request, SchemePoint, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const N: u64 = 512;
const BLOCK: usize = 32;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn snap_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "oram-tiered-diff-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn builder(scheme: SchemePoint, storage: StorageKind) -> OramBuilder {
    OramBuilder::for_scheme(scheme)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(32)
        .seed(7)
        .storage(storage)
}

/// The seeded mixed workload: reads, writes and read-removes drawn from one
/// generator, so subject and oracle see the same stream.
fn request(i: u64, rng: &mut StdRng) -> Request {
    let addr = rng.gen_range(0..N);
    match i % 4 {
        0 | 1 => Request::Read { addr },
        2 => {
            let mut data = vec![0u8; BLOCK];
            rng.fill(&mut data[..]);
            data[0] = i as u8;
            Request::Write { addr, data }
        }
        _ => Request::ReadRemove { addr },
    }
}

/// Treetop budgets spanning the K sweep: 0 pins nothing (pure spill, K=0),
/// the mid values split the tree, `u64::MAX` pins everything (K=levels,
/// the file tier only sees checkpoints).
const BUDGET_SWEEP: [u64; 4] = [0, 2 << 10, 32 << 10, u64::MAX];

#[test]
fn tiered_matches_the_mem_oracle_across_the_k_sweep() {
    for scheme in [SchemePoint::PX16, SchemePoint::PicX32] {
        for budget in BUDGET_SWEEP {
            let label = format!("{} budget={budget}", scheme.label());
            let mut oracle = builder(scheme, StorageKind::Mem).build().unwrap();
            let mut subject = builder(
                scheme,
                StorageKind::TempTiered {
                    memory_budget: budget,
                },
            )
            .build()
            .unwrap();
            let mut rng = StdRng::seed_from_u64(0x71E2);
            for i in 0..2000 {
                let req = request(i, &mut rng);
                let expected = oracle.access(req.clone()).unwrap();
                let got = subject.access(req).unwrap();
                assert_eq!(got, expected, "{label}: access {i}");
            }
            for addr in 0..N {
                assert_eq!(
                    subject.read(addr).unwrap(),
                    oracle.read(addr).unwrap(),
                    "{label}: final contents of block {addr}"
                );
            }
        }
    }
}

#[test]
fn batched_submission_is_byte_identical_to_sequential_over_every_store() {
    // `access_batch` engages the backend's dedup scheduler for file and
    // tiered stores (upper-level buckets shared by the batch's paths are
    // read and sealed once per batch).  The schedule must be semantically
    // invisible: batched responses byte-identical to the same requests
    // issued one at a time, and the final contents identical to the
    // in-memory oracle's.
    for storage in [
        StorageKind::TempFile,
        StorageKind::TempTiered {
            memory_budget: 2 << 10,
        },
        StorageKind::TempTiered { memory_budget: 0 },
        StorageKind::Mem,
    ] {
        let label = format!("{storage:?}");
        let mut sequential = builder(SchemePoint::PX16, storage.clone()).build().unwrap();
        let mut batched = builder(SchemePoint::PX16, storage).build().unwrap();
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let mut i = 0u64;
        while i < 2000 {
            let window: Vec<Request> = (0..16)
                .map(|_| {
                    let req = request(i, &mut rng);
                    i += 1;
                    req
                })
                .collect();
            let expected: Vec<_> = window
                .iter()
                .map(|req| sequential.access(req.clone()).unwrap())
                .collect();
            let got = batched.access_batch(&window).unwrap();
            assert_eq!(got, expected, "{label}: batch ending at {i}");
        }
        for addr in 0..N {
            assert_eq!(
                batched.read(addr).unwrap(),
                sequential.read(addr).unwrap(),
                "{label}: final contents of block {addr}"
            );
        }
    }
}

#[test]
fn tiered_persist_resume_is_byte_identical_and_carries_the_budget() {
    for budget in [0u64, 2 << 10, u64::MAX] {
        let label = format!("budget={budget}");
        let dir = snap_dir(&label.replace('=', "-"));
        let mut oracle = builder(SchemePoint::PcX32, StorageKind::Mem)
            .build()
            .unwrap();
        let mut subject = builder(
            SchemePoint::PcX32,
            StorageKind::Tiered {
                dir: dir.clone(),
                memory_budget: budget,
            },
        )
        .build()
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for i in 0..2000 {
            let req = request(i, &mut rng);
            let expected = oracle.access(req.clone()).unwrap();
            let got = subject.access(req).unwrap();
            assert_eq!(got, expected, "{label}: access {i}");
            if i == 999 {
                subject.persist(&dir).unwrap();
                // Drop before resuming: the resumed instance may see only
                // what reached the snapshot directory, exactly as a fresh
                // process would.  The tiered kind (and its budget) is
                // restored from the snapshot's own config codec.
                drop(subject);
                subject = OramBuilder::resume(&dir).unwrap();
            }
        }
        for addr in 0..N {
            assert_eq!(
                subject.read(addr).unwrap(),
                oracle.read(addr).unwrap(),
                "{label}: final contents of block {addr}"
            );
        }
        drop(subject);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn batches_spanning_a_persist_cycle_stay_consistent() {
    // Interleave batched windows with persist/resume: every window is
    // bracketed inside one `access_batch` call, so a snapshot taken between
    // windows must capture a fully flushed tree (no deferred state may leak
    // across the persist boundary).
    let dir = snap_dir("batch-persist");
    let mut oracle = builder(SchemePoint::PX16, StorageKind::Mem)
        .build()
        .unwrap();
    let mut subject = builder(
        SchemePoint::PX16,
        StorageKind::Tiered {
            dir: dir.clone(),
            memory_budget: 2 << 10,
        },
    )
    .build()
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut i = 0u64;
    for round in 0..8 {
        let window: Vec<Request> = (0..64)
            .map(|_| {
                let req = request(i, &mut rng);
                i += 1;
                req
            })
            .collect();
        let expected: Vec<_> = window
            .iter()
            .map(|req| oracle.access(req.clone()).unwrap())
            .collect();
        let got = subject.access_batch(&window).unwrap();
        assert_eq!(got, expected, "round {round}");
        if round % 2 == 1 {
            subject.persist(&dir).unwrap();
            drop(subject);
            subject = OramBuilder::resume(&dir).unwrap();
        }
    }
    for addr in 0..N {
        assert_eq!(
            subject.read(addr).unwrap(),
            oracle.read(addr).unwrap(),
            "final contents of block {addr}"
        );
    }
    drop(subject);
    std::fs::remove_dir_all(&dir).ok();
}
