//! Cross-crate integration tests: the functional Freecursive controller
//! against the baseline Recursive ORAM, the cache hierarchy, and synthetic
//! traces — exercising the whole stack the way the evaluation does.

use cache_sim::{FunctionalOramMemory, MainMemory, ProcessorConfig, SecureProcessor};
use freecursive::{Oram, OramBuilder, SchemePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trace_gen::{SpecBenchmark, TraceGenerator};

const N: u64 = 1 << 12;
const BLOCK: usize = 64;

/// Both frontends implement the same `Oram` contract; drive them with the
/// same request sequence and check they produce identical contents.
#[test]
fn freecursive_and_recursive_agree_on_contents() {
    let mut reference = OramBuilder::for_scheme(SchemePoint::RX8)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
        .build_recursive()
        .unwrap();
    let mut freecursive = OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
        .build_freecursive()
        .unwrap();

    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..1200u32 {
        let addr = rng.gen_range(0..N);
        if rng.gen_bool(0.4) {
            let mut data = vec![0u8; BLOCK];
            rng.fill(&mut data[..]);
            data[0] = i as u8;
            reference.write(addr, &data).unwrap();
            freecursive.write(addr, &data).unwrap();
        } else {
            let a = reference.read(addr).unwrap();
            let b = freecursive.read(addr).unwrap();
            assert_eq!(a, b, "divergence at access {i}, addr {addr}");
        }
    }
    // The PLB design used strictly fewer backend accesses for the PosMap.
    let h = u64::from(freecursive.num_levels());
    assert!(h >= 2);
    assert!(
        freecursive.stats().posmap_backend_accesses < reference.stats().posmap_backend_accesses,
        "freecursive {} vs recursive {}",
        freecursive.stats().posmap_backend_accesses,
        reference.stats().posmap_backend_accesses
    );
}

/// A functional ORAM plugged in as the main memory of the cache-simulator
/// processor: the full secure-processor stack at small scale, through the
/// `cache_sim::FunctionalOramMemory` adapter.
#[test]
fn functional_oram_behind_the_cache_hierarchy() {
    let oram = OramBuilder::for_scheme(SchemePoint::PcX32)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
        .build_freecursive()
        .unwrap();
    let mut cpu = SecureProcessor::new(
        ProcessorConfig::default(),
        FunctionalOramMemory::new(oram, 1200),
    );
    let trace = TraceGenerator::new(SpecBenchmark::Gcc.profile(), 5);
    for access in trace.take(4000) {
        // Map the synthetic footprint onto the small ORAM.
        cpu.step(
            access.gap,
            access.addr % (N * BLOCK as u64),
            access.is_write,
        );
    }
    let result = cpu.result();
    assert!(result.llc_misses > 0, "the workload must miss the LLC");
    assert_eq!(
        cpu.memory().oram().stats().frontend_requests,
        result.llc_misses + result.llc_writebacks,
        "every LLC miss and writeback becomes exactly one ORAM request"
    );
}

/// Write-heavy workloads exercise dirty evictions end to end.
#[test]
fn dirty_eviction_path_reaches_the_oram() {
    struct CountingMemory {
        reads: u64,
        writes: u64,
    }
    impl MainMemory for CountingMemory {
        fn access(&mut self, _line: u64, is_write: bool) -> u64 {
            if is_write {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
            100
        }
    }
    let mut cpu = SecureProcessor::new(
        ProcessorConfig::default(),
        CountingMemory {
            reads: 0,
            writes: 0,
        },
    );
    // Store to far more lines than the LLC holds.
    let llc_lines = (1u64 << 20) / 64;
    for i in 0..(llc_lines * 3) {
        cpu.step(0, i * 64, true);
    }
    assert!(
        cpu.memory().writes > 0,
        "dirty LLC lines must be written back"
    );
    assert_eq!(cpu.result().llc_writebacks, cpu.memory().writes);
    assert_eq!(cpu.result().llc_misses, cpu.memory().reads);
}

/// The statistics the figures are computed from stay internally consistent
/// across a mixed workload on the full design.
#[test]
fn frontend_statistics_are_internally_consistent() {
    let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
        .build_freecursive()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..800 {
        let addr = rng.gen_range(0..N);
        if rng.gen_bool(0.5) {
            oram.write(addr, &[1u8; BLOCK]).unwrap();
        } else {
            oram.read(addr).unwrap();
        }
    }
    let s = oram.stats();
    assert_eq!(s.frontend_requests, 800);
    assert_eq!(s.data_backend_accesses, 800);
    // Every backend access moved one full path in each direction.
    use path_oram::OramBackend as _;
    let per_access = oram.backend().params().access_bytes();
    assert_eq!(
        s.total_bytes_moved(),
        s.total_backend_accesses() * per_access
    );
    // PMMAC verified and recomputed a MAC for every block of interest.
    assert!(s.macs_verified >= s.total_backend_accesses());
    assert!(s.macs_computed >= s.appends);
    assert_eq!(s.integrity_violations, 0);
}
