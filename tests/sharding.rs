//! Integration tests for the sharded oblivious memory service: the
//! `ShardedOram` composite and the worker-thread `OramService` are checked
//! byte-identical against a single-instance oracle on seeded mixed
//! workloads — including concurrent clients and a final contents sweep —
//! and worker panics are shown to surface as `FreecursiveError::Service`
//! rather than hangs.

use freecursive::{
    FreecursiveError, FrontendStats, Oram, OramBuilder, OramService, Request, Response, SchemePoint,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 256;
const BLOCK: usize = 64;

/// The full PIC_X32 design at a debug-friendly size; encryption stays at
/// the scheme default (AES global seed), so both CI engine legs exercise
/// the real cipher through every shard.
fn small_builder() -> OramBuilder {
    OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(32)
}

/// One seeded mixed request (2:2:1 read/write/read-remove) over `addrs`.
fn mixed_request(rng: &mut StdRng, addrs: &[u64], i: usize) -> Request {
    let addr = addrs[rng.gen_range(0..addrs.len() as u64) as usize];
    match i % 5 {
        0 | 1 => Request::Read { addr },
        2 | 3 => {
            let mut data = vec![0u8; BLOCK];
            rng.fill(&mut data[..]);
            Request::Write { addr, data }
        }
        _ => Request::ReadRemove { addr },
    }
}

/// Drives `requests` through the single-instance oracle one by one.
fn oracle_responses(oracle: &mut Box<dyn Oram>, requests: &[Request]) -> Vec<Response> {
    requests
        .iter()
        .map(|request| oracle.access(request.clone()).unwrap())
        .collect()
}

/// A 5k-request seeded mixed workload through `ShardedOram` at 1, 2 and 4
/// shards is byte-identical — responses and final contents — to a single
/// instance serving the same trace.
#[test]
fn sharded_composite_matches_the_single_instance_oracle() {
    let addrs: Vec<u64> = (0..N).collect();
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let requests: Vec<Request> = (0..5000)
        .map(|i| mixed_request(&mut rng, &addrs, i))
        .collect();

    let mut oracle = small_builder().build().unwrap();
    let expected = oracle_responses(&mut oracle, &requests);

    for shards in [1u64, 2, 4] {
        let mut sharded = small_builder().shards(shards).build_sharded().unwrap();
        assert_eq!(sharded.num_blocks(), N, "{shards} shards");

        // Mixed submission granularity: batches of 512 via the owned hot
        // path, remainder through single accesses.
        let mut responses = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(512) {
            if chunk.len() == 512 {
                responses.extend(sharded.access_batch_owned(chunk.to_vec()).unwrap());
            } else {
                for request in chunk {
                    responses.push(sharded.access(request.clone()).unwrap());
                }
            }
        }
        assert_eq!(responses, expected, "{shards} shards: responses diverge");

        // Final contents sweep.
        for addr in 0..N {
            assert_eq!(
                sharded.read(addr).unwrap(),
                oracle.read(addr).unwrap(),
                "{shards} shards: final contents diverge at {addr}"
            );
        }

        // The merged stats saw the whole workload (5000 requests + the
        // sweep just performed), and per-shard stats partition it.
        let merged = sharded.stats().clone();
        assert_eq!(merged.frontend_requests, 5000 + N);
        let per_shard: u64 = sharded
            .shard_stats()
            .iter()
            .map(|s| s.frontend_requests)
            .sum();
        assert_eq!(per_shard, merged.frontend_requests);
    }
}

/// Four clients drive one 4-shard `OramService` concurrently over disjoint
/// address ranges; every client's responses and the final contents are
/// byte-identical to a single-instance oracle serving the same per-client
/// traces sequentially.  (Disjoint high-bit ranges make the outcome
/// interleaving-independent, while low-bit routing still spreads every
/// client across all four shards.)
#[test]
fn concurrent_service_clients_match_the_single_instance_oracle() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 1250;

    let service = small_builder().shards(4).build_service().unwrap();

    // Client c owns the address range [c * N/4, (c+1) * N/4).
    let span = N / CLIENTS as u64;
    let client_requests: Vec<Vec<Request>> = (0..CLIENTS)
        .map(|c| {
            let addrs: Vec<u64> = (c as u64 * span..(c as u64 + 1) * span).collect();
            let mut rng = StdRng::seed_from_u64(0xC11E_0000 + c as u64);
            (0..PER_CLIENT)
                .map(|i| mixed_request(&mut rng, &addrs, i))
                .collect()
        })
        .collect();

    let handles: Vec<_> = client_requests
        .iter()
        .map(|requests| {
            let mut client = service.client();
            let requests = requests.clone();
            std::thread::spawn(move || {
                let mut responses = Vec::with_capacity(requests.len());
                // Mixed submission styles: sync batches, pipelined
                // submit/wait pairs, and single accesses.
                for (i, chunk) in requests.chunks(100).enumerate() {
                    match i % 3 {
                        0 => responses.extend(client.access_batch(chunk).unwrap()),
                        1 => {
                            let pending = client.submit(chunk.to_vec()).unwrap();
                            responses.extend(pending.wait().unwrap());
                        }
                        _ => {
                            for request in chunk {
                                responses.push(client.access(request.clone()).unwrap());
                            }
                        }
                    }
                }
                responses
            })
        })
        .collect();
    let actual: Vec<Vec<Response>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Oracle: same per-client traces, applied sequentially (any client
    // order gives the same answer because the address sets are disjoint).
    let mut oracle = small_builder().build().unwrap();
    for (client, requests) in client_requests.iter().enumerate() {
        let expected = oracle_responses(&mut oracle, requests);
        assert_eq!(
            actual[client], expected,
            "client {client} responses diverge"
        );
    }

    // Final contents sweep through a fresh client, against the oracle.
    let mut sweeper = service.client();
    for addr in 0..N {
        assert_eq!(
            sweeper.read(addr).unwrap(),
            oracle.read(addr).unwrap(),
            "final contents diverge at {addr}"
        );
    }

    // The merged service stats account for every request all clients sent
    // (4 x 1250 + the N-sweep).
    let stats = sweeper.fetch_stats().unwrap();
    assert_eq!(stats.frontend_requests, (CLIENTS * PER_CLIENT) as u64 + N);

    // Shutdown hands the shards back; their summed capacity is the global.
    let shards = service.shutdown().unwrap();
    assert_eq!(shards.iter().map(|s| s.num_blocks()).sum::<u64>(), N);
}

/// An `Oram` that panics on a chosen address — fault injection for the
/// worker-failure path.
struct PanickingOram {
    blocks: Vec<Vec<u8>>,
    stats: FrontendStats,
    panic_addr: u64,
}

impl PanickingOram {
    fn new(num_blocks: u64, panic_addr: u64) -> Self {
        Self {
            blocks: vec![vec![0u8; BLOCK]; num_blocks as usize],
            stats: FrontendStats::default(),
            panic_addr,
        }
    }
}

impl Oram for PanickingOram {
    fn block_bytes(&self) -> usize {
        BLOCK
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        let addr = request.addr();
        assert!(addr != self.panic_addr, "injected fault at address {addr}");
        self.stats.frontend_requests += 1;
        let slot = &mut self.blocks[addr as usize];
        Ok(match request {
            Request::Read { .. } => Response {
                addr,
                data: Some(slot.clone()),
            },
            Request::Write { data, .. } => {
                *slot = data;
                Response { addr, data: None }
            }
            Request::ReadRemove { .. } => {
                let data = std::mem::replace(slot, vec![0u8; BLOCK]);
                Response {
                    addr,
                    data: Some(data),
                }
            }
        })
    }

    fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FrontendStats::default();
    }
}

/// A worker that panics mid-batch surfaces as `FreecursiveError::Service`
/// on the submitting client, on later submissions, and on shutdown — never
/// as a hang — while the surviving shards keep serving.
#[test]
fn a_panicking_worker_yields_service_errors_not_deadlocks() {
    // Global address 6 routes to shard 0 (6 mod 2) at intra-shard address
    // 3: shard 0 is rigged to blow up there, shard 1 is healthy.
    let shards: Vec<Box<dyn Oram>> = vec![
        Box::new(PanickingOram::new(8, 3)),
        Box::new(PanickingOram::new(8, u64::MAX)),
    ];
    let service = OramService::from_shards(shards).unwrap();
    let mut client = service.client();
    let mut second_client = service.client();

    client.write(0, &[1u8; BLOCK]).unwrap();

    // The batch hits the rigged address: the worker's panic comes back as
    // a Service error carrying the panic message.
    let err = client
        .access_batch(&[
            Request::Read { addr: 0 },
            Request::Read { addr: 6 }, // boom on shard 0
        ])
        .unwrap_err();
    match &err {
        FreecursiveError::Service { detail } => {
            assert!(detail.contains("panicked"), "unexpected detail: {detail}")
        }
        other => panic!("expected Service error, got {other:?}"),
    }

    // Later interactions with the dead shard fail fast on every client.
    assert!(matches!(
        client.read(0),
        Err(FreecursiveError::Service { .. })
    ));
    assert!(matches!(
        second_client.read(2), // also shard 0
        Err(FreecursiveError::Service { .. })
    ));
    assert!(matches!(
        second_client.fetch_stats(),
        Err(FreecursiveError::Service { .. })
    ));

    // The healthy shard keeps serving odd addresses (shard 1).
    second_client.write(1, &[7u8; BLOCK]).unwrap();
    assert_eq!(second_client.read(1).unwrap(), vec![7u8; BLOCK]);

    // Shutdown reports the casualty but still reaps every worker thread.
    assert!(matches!(
        service.shutdown(),
        Err(FreecursiveError::Service { .. })
    ));
}

/// A cross-shard batch that routes to an already-dead shard fails
/// *side-effect-free*: `submit` pre-checks worker liveness for every shard
/// the batch touches before dispatching anything, matching
/// `ShardRouter::partition`'s validate-before-dispatch discipline.  (Before
/// this check, the fan-out fed earlier live shards first and only then hit
/// the dead worker's disconnected channel, leaving the live shards mutated
/// by a failed submit.)
#[test]
fn submit_to_a_dead_shard_leaves_live_shards_untouched() {
    // Shard 0 is rigged to blow up at intra-shard address 3 (global 6);
    // shard 1 is healthy.
    let shards: Vec<Box<dyn Oram>> = vec![
        Box::new(PanickingOram::new(8, 3)),
        Box::new(PanickingOram::new(8, u64::MAX)),
    ];
    let service = OramService::from_shards(shards).unwrap();
    let mut client = service.client();

    // Seed a known value on the healthy shard (global 1 -> shard 1).
    client.write(1, &[0xAAu8; BLOCK]).unwrap();
    assert!(client.is_worker_live(0) && client.is_worker_live(1));

    // Kill shard 0's worker.  Once the panic error has been delivered, the
    // liveness table is guaranteed to show the retirement (the worker
    // clears its flag before sending the reply).
    let err = client.read(6).unwrap_err();
    assert!(matches!(err, FreecursiveError::Service { .. }), "{err:?}");
    assert!(!client.is_worker_live(0));
    assert!(client.is_worker_live(1));

    // A batch touching BOTH shards — with the shard-1 writes *first* in
    // batch order — must fail without executing anything anywhere.
    let err = client
        .submit(vec![
            Request::Write {
                addr: 1, // shard 1: would overwrite the seeded value
                data: vec![0xBBu8; BLOCK],
            },
            Request::ReadRemove { addr: 3 }, // shard 1: would zero the block
            Request::Read { addr: 0 },       // shard 0: dead
        ])
        .unwrap_err();
    assert!(matches!(err, FreecursiveError::Service { .. }), "{err:?}");

    // The healthy shard neither saw the write nor the read-remove.
    assert_eq!(client.read(1).unwrap(), vec![0xAAu8; BLOCK]);
    // Shutdown still reports the casualty.
    assert!(matches!(
        service.shutdown(),
        Err(FreecursiveError::Service { .. })
    ));
}

/// The liveness pre-check only fires for shards the batch actually
/// touches: single-shard batches to healthy shards keep working after
/// another shard dies, and an all-live batch still round-trips.
#[test]
fn liveness_precheck_scopes_to_touched_shards() {
    let shards: Vec<Box<dyn Oram>> = vec![
        Box::new(PanickingOram::new(8, 0)), // dies on its first access
        Box::new(PanickingOram::new(8, u64::MAX)),
    ];
    let service = OramService::from_shards(shards).unwrap();
    let mut client = service.client();
    assert!(client.read(0).is_err()); // kill shard 0
    for round in 0..3u8 {
        // Shard-1-only batches must not be blocked by shard 0's corpse.
        let responses = client
            .submit(vec![
                Request::Write {
                    addr: 1,
                    data: vec![round; BLOCK],
                },
                Request::Read { addr: 1 },
            ])
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(responses[1].data(), Some(&[round; BLOCK][..]));
    }
}
