//! Allocator-level companion to `backend_zero_alloc.rs` /
//! `backend_zero_alloc_file.rs` for the **tiered** tree store: after
//! warm-up, steady-state accesses through `TieredStore` must also perform
//! zero heap allocations — arena-tier buckets are memcpy'd from the
//! resident treetop, spill-tier buckets go through the file store's
//! positional I/O, and both land in the backend's reusable scratch
//! buffers.  The measured loop additionally runs inside batch windows
//! (`begin_batch` / `end_batch`), so the dedup scheduler's cache fills,
//! seal pass, and chunked flush are all pinned to the same zero budget.
//!
//! This file deliberately contains a single test: the counter is global, so
//! a concurrently running test in the same binary would pollute it.

use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The pinned allocation budget for 2000 steady-state tiered accesses
/// issued in batch windows of 16.  It is zero today; if a legitimate change
/// ever needs to allocate on this path, raise the pin consciously in review
/// rather than letting it drift.
const STEADY_STATE_ALLOCATION_BUDGET: u64 = 0;

/// Batch window width for the measured loop; matches the frontend's
/// `access_batch` bracketing of `begin_batch` / `end_batch`.
const WINDOW: u64 = 16;

#[test]
fn tiered_store_steady_state_allocation_count_is_pinned() {
    const N: u64 = 1 << 10;
    const BLOCK: usize = 64;
    let params = OramParams::new(N, BLOCK, 4);
    // A budget that splits the tree mid-way: big enough for a non-trivial
    // treetop, small enough that the lower levels spill to the file tier.
    let treetop_budget = 16u64 << 10;
    let mut backend = PathOramBackend::new_with_storage(
        params,
        EncryptionMode::GlobalSeed,
        [3u8; 16],
        0,
        &StorageKind::TempTiered {
            memory_budget: treetop_budget,
        },
        path_oram::Durability::None,
        0,
    )
    .unwrap();
    let tiered = backend
        .storage()
        .as_tiered()
        .expect("this test pins the tiered store");
    let split = tiered.treetop_levels();
    assert!(
        split > 0 && split < params.levels(),
        "budget must give a genuine mid-tree split, got K={split} of {} levels",
        params.levels()
    );
    let leaves = params.num_leaves();

    let mut rng = StdRng::seed_from_u64(0x71E2_A110C);
    let mut posmap: Vec<u64> = (0..N).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::with_capacity(BLOCK);
    let mut write_data = vec![0u8; BLOCK];

    let access = |backend: &mut PathOramBackend,
                  i: u64,
                  posmap: &mut [u64],
                  rng: &mut StdRng,
                  out: &mut Vec<u8>,
                  write_data: &mut [u8]| {
        let addr = rng.gen_range(0..N);
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        if i.is_multiple_of(2) {
            backend
                .access_into(AccessOp::Read, addr, old_leaf, new_leaf, None, out)
                .unwrap();
        } else {
            write_data[0] = i as u8;
            backend
                .access_into(
                    AccessOp::Write,
                    addr,
                    old_leaf,
                    new_leaf,
                    Some(write_data),
                    out,
                )
                .unwrap();
        }
    };

    // Warm-up: touch every block, then run the mixed workload — including
    // batch windows, so the dedup cache and flush buffers reach steady
    // capacity before measurement starts.
    for addr in 0..N {
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        backend
            .access_into(
                AccessOp::Write,
                addr,
                old_leaf,
                new_leaf,
                Some(&write_data),
                &mut out,
            )
            .unwrap();
    }
    for window in 0..(2000 / WINDOW) {
        backend.begin_batch();
        for i in 0..WINDOW {
            access(
                &mut backend,
                window * WINDOW + i,
                &mut posmap,
                &mut rng,
                &mut out,
                &mut write_data,
            );
        }
        backend.end_batch().unwrap();
    }

    let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);

    for window in 0..(2000 / WINDOW) {
        backend.begin_batch();
        for i in 0..WINDOW {
            access(
                &mut backend,
                window * WINDOW + i,
                &mut posmap,
                &mut rng,
                &mut out,
                &mut write_data,
            );
        }
        backend.end_batch().unwrap();
    }

    let allocation_delta = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;
    assert_eq!(
        allocation_delta, STEADY_STATE_ALLOCATION_BUDGET,
        "tiered-store batched steady state must stay at its pinned allocation count"
    );
    assert!(
        backend.stats().max_stash_occupancy <= params.stash_capacity,
        "stash stayed within capacity"
    );
}
