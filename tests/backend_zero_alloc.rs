//! Allocator-level proof that `PathOramBackend::access_into` is
//! allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! that touches every block (so the residency set, stash slab, classifier
//! lists and scratch buffers have all reached their working capacities),
//! two thousand further accesses — half sequential, half inside
//! `begin_batch`/`end_batch` windows — must perform **zero** heap
//! allocations.
//!
//! This file deliberately contains a single test: the counter is global, so
//! a concurrently running test in the same binary would pollute it.

use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_access_performs_zero_heap_allocations() {
    const N: u64 = 1 << 10;
    const BLOCK: usize = 64;
    let params = OramParams::new(N, BLOCK, 4);
    // GlobalSeed: the proof covers the *encrypted* hot path, not just the
    // plaintext fast path.  The storage kind is pinned to the in-memory
    // arena explicitly (not left to `ORAM_STORAGE` resolution): this test
    // is the MemStore hot-path guarantee, and its file-store companion
    // lives in `backend_zero_alloc_file.rs`.
    let mut backend = PathOramBackend::new_with_storage(
        params,
        EncryptionMode::GlobalSeed,
        [3u8; 16],
        0,
        &path_oram::StorageKind::Mem,
        path_oram::Durability::None,
        0,
    )
    .unwrap();
    assert!(
        backend.storage().as_mem().is_some(),
        "this test pins the arena store"
    );
    let leaves = params.num_leaves();

    let mut rng = StdRng::seed_from_u64(0x2E20_A110C);
    let mut posmap: Vec<u64> = (0..N).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::with_capacity(BLOCK);
    let mut write_data = vec![0u8; BLOCK];

    let access = |backend: &mut PathOramBackend,
                  i: u64,
                  posmap: &mut [u64],
                  rng: &mut StdRng,
                  out: &mut Vec<u8>,
                  write_data: &mut [u8]| {
        let addr = rng.gen_range(0..N);
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        if i.is_multiple_of(2) {
            backend
                .access_into(AccessOp::Read, addr, old_leaf, new_leaf, None, out)
                .unwrap();
        } else {
            write_data[0] = i as u8;
            backend
                .access_into(
                    AccessOp::Write,
                    addr,
                    old_leaf,
                    new_leaf,
                    Some(write_data),
                    out,
                )
                .unwrap();
        }
    };

    // Warm-up: write every block once (populating the residency set to its
    // final size), then run a mixed workload long enough for every scratch
    // buffer and map to reach steady capacity.
    for addr in 0..N {
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        backend
            .access_into(
                AccessOp::Write,
                addr,
                old_leaf,
                new_leaf,
                Some(&write_data),
                &mut out,
            )
            .unwrap();
    }
    for i in 0..2000u64 {
        access(
            &mut backend,
            i,
            &mut posmap,
            &mut rng,
            &mut out,
            &mut write_data,
        );
    }

    let slab_before = backend.stash_slot_capacity();
    let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);

    // Half the measured accesses run inside batch windows: the scheduler is
    // a no-op on the arena store (the arena already is a top-level cache),
    // and the bracketing itself must stay free.
    for i in 0..1000u64 {
        access(
            &mut backend,
            i,
            &mut posmap,
            &mut rng,
            &mut out,
            &mut write_data,
        );
    }
    for window in 0..62u64 {
        backend.begin_batch();
        for i in 0..16 {
            access(
                &mut backend,
                1000 + window * 16 + i,
                &mut posmap,
                &mut rng,
                &mut out,
                &mut write_data,
            );
        }
        backend.end_batch().unwrap();
    }

    let allocation_delta = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;
    assert_eq!(
        allocation_delta, 0,
        "steady-state accesses must not touch the heap"
    );
    assert_eq!(
        backend.stash_slot_capacity(),
        slab_before,
        "stash slab capacity is stable"
    );
    assert!(
        backend.stats().max_stash_occupancy <= params.stash_capacity,
        "stash stayed within capacity"
    );
}
