//! Allocator-level companion to `backend_zero_alloc.rs` for the
//! **file-backed** tree store: after warm-up, steady-state accesses through
//! `FileStore` must also perform zero heap allocations — positional I/O
//! reads and writes go straight between the kernel and the backend's
//! reusable scratch buffers (`path_buf` in, `write_buf` out), so the trait
//! seam cannot silently reintroduce per-access allocation for either store.
//!
//! This file deliberately contains a single test: the counter is global, so
//! a concurrently running test in the same binary would pollute it.

use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The pinned allocation budget for 2000 steady-state file-store accesses.
/// It is zero today; if a legitimate change ever needs to allocate on this
/// path, raise the pin consciously in review rather than letting it drift.
const STEADY_STATE_ALLOCATION_BUDGET: u64 = 0;

#[test]
fn file_store_steady_state_allocation_count_is_pinned() {
    const N: u64 = 1 << 10;
    const BLOCK: usize = 64;
    let params = OramParams::new(N, BLOCK, 4);
    let mut backend = PathOramBackend::new_with_storage(
        params,
        EncryptionMode::GlobalSeed,
        [3u8; 16],
        0,
        &StorageKind::TempFile,
        path_oram::Durability::None,
        0,
    )
    .unwrap();
    assert!(
        backend.storage().is_file_backed(),
        "this test pins the file store"
    );
    let leaves = params.num_leaves();

    let mut rng = StdRng::seed_from_u64(0xF11E_A110C);
    let mut posmap: Vec<u64> = (0..N).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::with_capacity(BLOCK);
    let mut write_data = vec![0u8; BLOCK];

    let access = |backend: &mut PathOramBackend,
                  i: u64,
                  posmap: &mut [u64],
                  rng: &mut StdRng,
                  out: &mut Vec<u8>,
                  write_data: &mut [u8]| {
        let addr = rng.gen_range(0..N);
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        if i.is_multiple_of(2) {
            backend
                .access_into(AccessOp::Read, addr, old_leaf, new_leaf, None, out)
                .unwrap();
        } else {
            write_data[0] = i as u8;
            backend
                .access_into(
                    AccessOp::Write,
                    addr,
                    old_leaf,
                    new_leaf,
                    Some(write_data),
                    out,
                )
                .unwrap();
        }
    };

    // Warm-up: touch every block, then run the mixed workload until every
    // scratch buffer and map has reached steady capacity.
    for addr in 0..N {
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        backend
            .access_into(
                AccessOp::Write,
                addr,
                old_leaf,
                new_leaf,
                Some(&write_data),
                &mut out,
            )
            .unwrap();
    }
    for i in 0..2000u64 {
        access(
            &mut backend,
            i,
            &mut posmap,
            &mut rng,
            &mut out,
            &mut write_data,
        );
    }

    let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);

    for i in 0..2000u64 {
        access(
            &mut backend,
            i,
            &mut posmap,
            &mut rng,
            &mut out,
            &mut write_data,
        );
    }

    let allocation_delta = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;
    assert_eq!(
        allocation_delta, STEADY_STATE_ALLOCATION_BUDGET,
        "file-store steady state must stay at its pinned allocation count"
    );
    assert!(
        backend.stats().max_stash_occupancy <= params.stash_capacity,
        "stash stayed within capacity"
    );
}
