//! Byte-level equivalence harness for the zero-copy backend hot path.
//!
//! The arena/in-place `PathOramBackend` must be observationally identical to
//! the flat [`InsecureBackend`] contents oracle under the full Freecursive
//! frontend, across several scheme points and a long seeded random workload.
//! (`InsecureBackend` has no tree, so its *byte accounting* is
//! block-granular by design; the tree-side accounting invariants and the
//! run-to-run identity of `bytes_read` / `bytes_written` /
//! `max_stash_occupancy` are pinned down separately below — the indexed
//! eviction made the backend fully deterministic, which the old
//! hash-map-ordered eviction was not.)

use freecursive::{InsecureBackend, Oram, OramBuilder, Request, SchemePoint};
use path_oram::{BackendStats, OramBackend as _};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 1 << 10;
const BLOCK: usize = 32;
const ACCESSES: u32 = 4000;

fn builder(scheme: SchemePoint) -> OramBuilder {
    OramBuilder::for_scheme(scheme)
        .num_blocks(N)
        .block_bytes(BLOCK)
        .onchip_entries(64)
}

/// The seeded random workload every harness below replays.
fn workload(seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ACCESSES)
        .map(|i| {
            let addr = rng.gen_range(0..N);
            match i % 5 {
                0 | 1 => {
                    let mut data = vec![0u8; BLOCK];
                    rng.fill(&mut data[..]);
                    data[0] = i as u8;
                    Request::Write { addr, data }
                }
                4 => Request::ReadRemove { addr },
                _ => Request::Read { addr },
            }
        })
        .collect()
}

/// Tree backend vs. flat oracle: identical responses over 4k accesses for
/// three scheme points (with and without compression and PMMAC), and
/// identical final contents.
#[test]
fn path_backend_matches_insecure_oracle_across_scheme_points() {
    for (i, scheme) in [SchemePoint::PX16, SchemePoint::PcX32, SchemePoint::PicX32]
        .into_iter()
        .enumerate()
    {
        let mut tree = builder(scheme).build_freecursive().unwrap();
        let mut flat = builder(scheme)
            .build_freecursive_on::<InsecureBackend>()
            .unwrap();
        for (j, request) in workload(0xE0_0001 + i as u64).into_iter().enumerate() {
            let a = tree.access(request.clone()).unwrap();
            let b = flat.access(request).unwrap();
            assert_eq!(a, b, "{} access {j}", scheme.label());
        }
        for addr in 0..N {
            assert_eq!(
                tree.read(addr).unwrap(),
                flat.read(addr).unwrap(),
                "{} final contents at {addr}",
                scheme.label()
            );
        }
    }
}

/// Replaying the same workload twice produces bit-identical backend
/// counters: `bytes_read`, `bytes_written` and `max_stash_occupancy` are
/// reproducible quantities, not artefacts of hash-map iteration order.
#[test]
fn backend_stats_are_deterministic_across_runs() {
    let run = |scheme: SchemePoint| -> BackendStats {
        let mut oram = builder(scheme).build_freecursive().unwrap();
        for request in workload(0xD0_0002) {
            oram.access(request).unwrap();
        }
        oram.stats().backend.clone()
    };
    for scheme in [SchemePoint::PX16, SchemePoint::PcX32, SchemePoint::PicX32] {
        let a = run(scheme);
        let b = run(scheme);
        assert_eq!(a, b, "{}", scheme.label());
        assert!(
            a.bytes_read > 0 && a.max_stash_occupancy > 0,
            "{}",
            scheme.label()
        );
    }
}

/// The tree backend's byte accounting follows the Path ORAM shape: every
/// path access moves exactly one path in each direction, every bucket on a
/// written path goes through the cipher, and the stash stays within its
/// configured capacity.
#[test]
fn backend_accounting_invariants_hold_under_the_frontend() {
    let mut oram = builder(SchemePoint::PicX32).build_freecursive().unwrap();
    for request in workload(0xC0_0003) {
        oram.access(request).unwrap();
    }
    let params = *oram.backend().params();
    let stats = &oram.stats().backend;
    assert_eq!(stats.bytes_read, stats.path_accesses * params.path_bytes());
    assert_eq!(stats.bytes_written, stats.bytes_read);
    assert_eq!(
        stats.buckets_encrypted,
        stats.path_accesses * u64::from(params.levels())
    );
    // Reads only decrypt initialised buckets, so the decrypt counter is
    // bounded by (and, once the tree is warm, close to) the encrypt counter.
    assert!(stats.buckets_decrypted <= stats.buckets_encrypted);
    assert!(stats.buckets_decrypted > stats.buckets_encrypted / 2);
    assert!(stats.max_stash_occupancy <= params.stash_capacity);
}

/// Steady state never grows the backing stores: the arena footprint is
/// fixed at construction and the stash slab never reallocates beyond its
/// capacity + transient headroom.  (The allocator-level proof lives in
/// `tests/backend_zero_alloc.rs`.)
#[test]
fn arena_and_stash_capacities_are_stable_after_warmup() {
    let mut oram = builder(SchemePoint::PcX32).build_freecursive().unwrap();
    for request in workload(0xB0_0004) {
        oram.access(request).unwrap();
    }
    let backend = oram.backend();
    let arena_bytes = backend.storage().num_buckets() * backend.storage().bucket_bytes();
    let slab_slots = backend.stash_slot_capacity();
    let params = *backend.params();
    assert_eq!(
        slab_slots,
        params.stash_capacity + params.levels() as usize * params.z + 1,
        "slab never grew beyond its constructed bound"
    );
    // Run the workload again: both bounds are unchanged.
    for request in workload(0xB0_0005) {
        oram.access(request).unwrap();
    }
    let backend = oram.backend();
    assert_eq!(
        backend.storage().num_buckets() * backend.storage().bucket_bytes(),
        arena_bytes
    );
    assert_eq!(backend.stash_slot_capacity(), slab_slots);
    assert!(backend.storage().resident_bytes() <= arena_bytes as u64);
}
