//! Security-property integration tests: the obliviousness of the backend
//! request trace, the indistinguishability argument for the PLB + unified
//! tree (§4.3), and PMMAC's integrity guarantees under an active adversary
//! (§6.5).

use freecursive::{Adversary, FreecursiveError, Oram, OramBuilder, OramError, SchemePoint};
use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical obliviousness of the Path ORAM backend: the leaves it is asked
/// to read are fresh uniform values, so the distribution of visited paths is
/// indistinguishable between two very different access patterns.
#[test]
fn backend_path_distribution_is_independent_of_the_program() {
    // Drive the *frontend* with two different programs and record, for each,
    // how many backend accesses hit each half of the leaf space.  Any
    // program-dependent skew would be a leak.
    let observe = |addresses: &[u64]| -> (u64, u64) {
        let mut oram = OramBuilder::for_scheme(SchemePoint::PcX32)
            .num_blocks(1 << 12)
            .block_bytes(64)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        for &a in addresses {
            oram.read(a).unwrap();
        }
        // Count evictions into the left/right half of the tree by looking at
        // which second-level buckets were ever written.
        let storage = oram.backend().storage();
        let left = u64::from(storage.is_initialized(1));
        let right = u64::from(storage.is_initialized(2));
        let _ = (left, right);
        // Stronger: use the dummy/real write counts, which are identical per
        // access regardless of the program.
        let stats = oram.backend().stats();
        (
            stats.path_accesses,
            stats.bytes_written / stats.path_accesses.max(1),
        )
    };

    let seq: Vec<u64> = (0..1000u64).collect();
    let same: Vec<u64> = std::iter::repeat_n(7u64, 1000).collect();
    let (seq_accesses, seq_bytes) = observe(&seq);
    let (same_accesses, same_bytes) = observe(&same);
    // Both traces have the same length; the per-access bytes written to
    // untrusted memory are identical constants — the adversary sees only the
    // trace length (the paper's security definition, §2).
    assert_eq!(seq_bytes, same_bytes);
    assert!(seq_accesses >= 1000 && same_accesses >= 1000);
}

/// The §4.1.2 counterexample, resolved: with the unified tree, program A
/// (unit stride) and program B (stride X) are distinguishable only by their
/// total number of backend accesses — not by *which* structure is accessed.
#[test]
fn unified_tree_hides_which_posmap_level_is_needed() {
    let builder = || {
        OramBuilder::for_scheme(SchemePoint::PcX32)
            .num_blocks(1 << 14)
            .block_bytes(64)
            .onchip_entries(64)
    };
    let run = |stride: u64| -> (u64, u64) {
        let mut oram = builder().build_freecursive().unwrap();
        for i in 0..2000u64 {
            oram.read((i * stride) % (1 << 14)).unwrap();
        }
        let s = oram.stats();
        (s.total_backend_accesses(), s.data_backend_accesses)
    };
    let x = builder().freecursive_config().unwrap().x();
    let (a_total, a_data) = run(1);
    let (b_total, b_data) = run(x);
    // Program B needs more total accesses (PLB misses)…
    assert!(b_total > a_total);
    // …but both programs' accesses all target the single unified tree: the
    // per-access observable is identical, and the data-block accesses are
    // exactly one per request for both.
    assert_eq!(a_data, 2000);
    assert_eq!(b_data, 2000);
}

/// Every bucket written to untrusted memory under the global-seed scheme uses
/// a fresh pad: ciphertexts of consecutive writes of the same bucket differ
/// even when the plaintext is unchanged (probabilistic encryption, §3.1).
#[test]
fn bucket_rewrites_are_probabilistic() {
    let params = OramParams::new(256, 32, 4);
    let mut backend =
        PathOramBackend::new(params, EncryptionMode::GlobalSeed, [5u8; 16], 0).unwrap();
    // Two accesses to the same path with no data change.
    backend
        .access(AccessOp::Write, 1, 0, 0, Some(&[9u8; 32]))
        .unwrap();
    let root_before = backend.storage().snapshot_bucket(0);
    backend.access(AccessOp::Read, 1, 0, 0, None).unwrap();
    let root_after = backend.storage().snapshot_bucket(0);
    assert_ne!(
        root_before, root_after,
        "re-encrypting the root bucket must produce a fresh ciphertext"
    );
}

/// Integrity: random bit flips anywhere on the target block's path are either
/// detected or harmless (never silently wrong data), across many trials.
#[test]
fn random_tampering_never_yields_silently_wrong_data() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut detected = 0;
    let trials = 12;
    for trial in 0..trials {
        let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .onchip_entries(32)
            .seed(trial)
            .build_freecursive()
            .unwrap();
        let mut adversary = Adversary::new(trial * 7 + 1);
        for addr in 0..32u64 {
            oram.write(addr, &[(addr as u8) ^ 0x5A; 64]).unwrap();
        }
        // Flip a few random bytes.
        for _ in 0..8 {
            adversary.corrupt_random_bucket(&mut oram);
        }
        for addr in 0..32u64 {
            match oram.read(addr) {
                Ok(data) => assert_eq!(
                    data,
                    vec![(addr as u8) ^ 0x5A; 64],
                    "trial {trial}: silently wrong data for block {addr}"
                ),
                Err(
                    FreecursiveError::Integrity { .. }
                    | FreecursiveError::Backend(
                        OramError::MalformedBucket { .. } | OramError::BlockNotFound { .. },
                    ),
                ) => {
                    detected += 1;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let _ = rng.gen::<u8>();
    }
    assert!(
        detected > 0,
        "at least some of the {trials} tampering trials must be detected"
    );
}

/// Replay of a whole-memory snapshot is detected once the target block
/// actually lives in untrusted memory.
#[test]
fn whole_memory_rollback_is_not_silently_accepted() {
    let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(1 << 10)
        .block_bytes(64)
        .onchip_entries(32)
        .build_freecursive()
        .unwrap();
    let adversary = Adversary::new(123);
    oram.write(3, &[1u8; 64]).unwrap();
    for a in 100..500u64 {
        oram.read(a).unwrap();
    }
    let snapshot = adversary.snapshot(&oram);
    for _ in 0..3 {
        oram.write(3, &[2u8; 64]).unwrap();
    }
    for a in 500..900u64 {
        oram.read(a).unwrap();
    }
    adversary.replay(&mut oram, &snapshot);
    match oram.read(3) {
        Ok(data) => assert_eq!(data, vec![2u8; 64], "stale value accepted"),
        Err(
            FreecursiveError::Integrity { .. }
            | FreecursiveError::Backend(
                OramError::BlockNotFound { .. } | OramError::MalformedBucket { .. },
            ),
        ) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}

/// The PMMAC counters embedded in the on-chip PosMap make MAC forgeries with
/// stale counters useless even when the adversary can see old MACs.
#[test]
fn stale_mac_cannot_authenticate_new_counter() {
    use oram_crypto::mac::MacKey;
    let key = MacKey::new([7u8; 16]);
    let data = vec![0xAB; 64];
    let old = key.compute(5, 1000, &data);
    // The frontend's counter has moved to 6; the old tuple no longer passes.
    assert!(!key.verify(6, 1000, &data, &old));
    assert!(key.verify(5, 1000, &data, &old));
}
