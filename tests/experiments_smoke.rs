//! Smoke tests for every experiment driver: each one must run at the quick
//! scale and produce results with the qualitative shape the paper reports.
//! (The full-scale numbers are produced by the `bench` binaries and recorded
//! in EXPERIMENTS.md.)

use oram_sim::experiments::{
    fig3, fig5, fig6, fig7, fig9, hash_bandwidth, table2, table3, ExperimentScale,
};
use oram_sim::scheme::SchemePoint;

#[test]
fn figure3_posmap_share_grows_with_capacity_and_shrinks_with_block_size() {
    let fig = fig3::run();
    assert_eq!(fig.series.len(), 4);
    let at = |block: usize, pm: usize, log2: u32| {
        fig.series
            .iter()
            .find(|(s, _)| s.block_bytes == block && s.onchip_posmap_bytes == pm)
            .unwrap()
            .1
            .iter()
            .find(|p| p.log2_capacity == log2)
            .unwrap()
            .posmap_percent
    };
    // 4 GB, 64 B, 8 KB on-chip PosMap: roughly half the traffic is PosMap.
    let headline = at(64, 8 << 10, 32);
    assert!(headline > 40.0 && headline < 75.0, "{headline}");
    // Larger blocks spend relatively less on PosMap.
    assert!(at(128, 8 << 10, 32) < at(64, 8 << 10, 32));
    // The share grows with capacity.
    assert!(at(64, 8 << 10, 40) > at(64, 8 << 10, 30));
}

#[test]
fn table2_latency_scales_sublinearly_with_channels() {
    let t = table2::run(15);
    let by_channels = |c: usize| {
        t.rows
            .iter()
            .find(|r| r.channels == c)
            .unwrap()
            .tree_latency_cycles
    };
    assert!(by_channels(1) > by_channels(2));
    assert!(by_channels(2) > by_channels(4));
    assert!(by_channels(4) > by_channels(8));
    let scaling = by_channels(1) as f64 / by_channels(8) as f64;
    assert!(
        scaling < 8.0,
        "channel scaling must be sub-linear: {scaling}"
    );
}

#[test]
fn figure5_plb_capacity_never_hurts() {
    let fig = fig5::run(ExperimentScale::Quick);
    for row in &fig.rows {
        for (plb, runtime) in &row.normalised_runtime {
            assert!(
                *runtime <= 1.05,
                "{:?} at {plb} bytes: normalised runtime {runtime}",
                row.benchmark
            );
        }
    }
}

#[test]
fn figure6_headline_claims_hold_qualitatively() {
    let fig = fig6::run(ExperimentScale::Quick);
    // PC_X32 beats the baseline; integrity is cheap.
    assert!(fig.pc_speedup_over_baseline() > 1.05);
    assert!(fig.integrity_overhead() < 0.35);
    // All slowdowns are > 1 (ORAM is never free).
    for row in &fig.rows {
        for (_, s) in &row.slowdowns {
            assert!(*s > 1.0);
        }
    }
}

#[test]
fn figure7_posmap_traffic_shrinks_under_plb_designs() {
    // Run a single-capacity quick variant through the public API.
    let fig = fig7::run(ExperimentScale::Quick);
    for &capacity in fig7::CAPACITIES.iter() {
        let posmap_reduction = fig.posmap_reduction(capacity).unwrap();
        assert!(
            posmap_reduction > 0.5,
            "at {capacity} bytes, reduction {posmap_reduction}"
        );
        // Baseline PosMap traffic grows with capacity; PLB designs stay
        // comparatively flat.
        let base = fig.bar(SchemePoint::RX8, capacity).unwrap();
        let pc = fig.bar(SchemePoint::PcX32, capacity).unwrap();
        assert!(base.posmap_bytes_per_access > pc.posmap_bytes_per_access);
    }
}

#[test]
fn figure9_pc_x32_beats_phantom_parameterisation() {
    let fig = fig9::run(ExperimentScale::Quick);
    assert!(fig.geomean_speedup > 3.0, "{}", fig.geomean_speedup);
}

#[test]
fn table3_area_claims() {
    let t = table3::run();
    // PMMAC ≤ 13% of design area, PLB ≈ 10%, frontend share shrinks with
    // channels, no-recursion alternative is >10x.
    for b in &t.breakdowns {
        assert!(b.pmmac_fraction() < 0.14);
        assert!(b.plb_fraction() < 0.12);
    }
    assert!(t.breakdowns[0].frontend_fraction() > t.breakdowns[2].frontend_fraction());
    assert!(t.flat_posmap_mm2 / t.breakdowns[1].total_mm2 > 10.0);
}

#[test]
fn hash_bandwidth_reduction_matches_paper_analytics() {
    let r = hash_bandwidth::run(150);
    let l16 = r.analytic.iter().find(|x| x.leaf_level == 16).unwrap();
    let l32 = r.analytic.iter().find(|x| x.leaf_level == 32).unwrap();
    assert_eq!(l16.merkle_blocks_hashed, 68);
    assert_eq!(l32.merkle_blocks_hashed, 132);
    assert!(r.measured_reduction > 10.0);
}

#[test]
fn experiment_renders_are_nonempty_and_mention_schemes() {
    assert!(fig3::run().render().contains("b64_pm8"));
    assert!(table3::run().render().contains("PMMAC"));
    let f6 = fig6::run(ExperimentScale::Quick).render();
    assert!(f6.contains("R_X8") && f6.contains("PIC_X32"));
}
