//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` and `#[derive(Serialize,
//! Deserialize)]` compile unchanged in an environment without crates.io
//! access.  No runtime serialisation is provided (none is used in this
//! repository).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
