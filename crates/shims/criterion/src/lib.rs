//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BenchmarkId`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a simple wall-clock harness: each benchmark
//! is timed over a fixed number of iterations and a mean time per iteration
//! is printed.  No statistical analysis, plots, or baselines; the point is
//! that `cargo bench` compiles and produces usable throughput numbers in an
//! environment without crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier (best-effort without inline asm or unsafe code).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting throughput alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier, rendered into the printed label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn report(label: &str, iterations: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = if iterations == 0 {
        Duration::ZERO
    } else {
        elapsed / iterations as u32
    };
    let mut line = format!("bench: {label:<48} {per_iter:>12.2?}/iter ({iterations} iters)");
    if let Some(tp) = throughput {
        let per_sec = |units: u64| {
            if elapsed.as_secs_f64() > 0.0 {
                units as f64 * iterations as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            }
        };
        match tp {
            Throughput::Bytes(b) => {
                line.push_str(&format!("  {:>10.1} MiB/s", per_sec(b) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(e) => {
                line.push_str(&format!("  {:>10.1} elem/s", per_sec(e)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn iterations(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size) as u64
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iterations: self.iterations(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.iterations,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iterations: self.iterations(),
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.iterations,
            b.elapsed,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50 }
    }
}

impl Criterion {
    /// Accepted for API parity; the shim has no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity; the shim times a fixed iteration count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the iteration count used per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.iterations, b.elapsed, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
