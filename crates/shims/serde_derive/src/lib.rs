//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! supplies `#[derive(Serialize)]` / `#[derive(Deserialize)]` that expand to
//! nothing.  Nothing in this repository serialises at runtime (the derives
//! only mark config/result types as *serialisable in principle*), so empty
//! expansions keep every annotated type compiling without pulling in the real
//! serde machinery.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
