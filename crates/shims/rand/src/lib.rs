//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the rand 0.8 API the workspace uses — `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool, fill}` and `rngs::StdRng` — over a
//! xoshiro256++ generator seeded through SplitMix64.  The statistical quality
//! is more than sufficient for the simulator's uniform leaf draws; nothing
//! here is cryptographic (the ORAM's security-relevant randomness goes
//! through the AES-based PRF in `oram-crypto`, not this crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A source of random `u64`s (minimal analogue of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from the generator's raw output
/// (minimal analogue of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `Rng::gen_range` can sample uniformly from a half-open interval
/// (minimal analogue of `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "gen_range called with empty range");
                let span = (end - start) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (start as i64).wrapping_add((v % span) as i64) as $t;
                    }
                }
            }
        }
    )*};
}

uniform_signed!(i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "gen_range called with empty range");
        start + f64::draw(rng) * (end - start)
    }
}

/// Ranges that `Rng::gen_range` accepts (minimal analogue of
/// `SampleRange`).  The element type is an independent parameter so the
/// caller's expected output type drives integer-literal inference, exactly
/// as in rand 0.8.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// Slice types `Rng::fill` can fill (minimal analogue of `Fill`).
pub trait Fill {
    /// Fills `self` with uniformly random content.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        let mut chunks = self.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = rng.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing convenience methods (minimal analogue of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::draw(self) < p
    }

    /// Fills a buffer with random bytes.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a seed (minimal analogue of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The generator's full internal state.
        ///
        /// Extension over the rand 0.8 surface: the ORAM snapshot/restore
        /// machinery persists the generator mid-stream so a resumed instance
        /// draws exactly the numbers an uninterrupted run would have.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously captured with
        /// [`StdRng::state`]; the stream continues exactly where it left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1000 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_randomises_every_chunk_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 7, 8, 9, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }
}
