//! Recursive ORAM addressing: the multi-level page-table arithmetic of §3.2
//! and the unified `i‖a_i` address space of §4.2.1.
//!
//! With `X` leaves per PosMap block, the leaf of data block `a_0` is stored in
//! PosMap block `a_1 = a_0 / X` of level 1, whose leaf is stored in block
//! `a_2 = a_0 / X²` of level 2, and so on until a level small enough to keep
//! on chip.  `H` denotes the total number of ORAMs in the recursion,
//! `H = ⌈log(N/p)/log X⌉ + 1` for an on-chip PosMap with `p` entries.

use serde::{Deserialize, Serialize};

/// Bit position at which the recursion-level tag is packed into a unified
/// block address (`i‖a_i`, §4.2.1).  56 bits of block index supports ORAMs
/// far beyond anything simulated here.
pub const LEVEL_TAG_SHIFT: u32 = 56;

/// Describes one recursion: the data ORAM plus its chain of PosMap levels.
///
/// Level 0 is the Data ORAM; level `i ≥ 1` holds the PosMap blocks whose
/// entries give the leaves of level `i - 1` blocks.  Level `H - 1` is the
/// deepest PosMap ORAM; its blocks' leaves (or counters) live in the on-chip
/// PosMap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursionAddressing {
    /// Number of data blocks (N).
    data_blocks: u64,
    /// Leaves (or counters) per PosMap block (X).
    x: u64,
    /// On-chip PosMap capacity in entries (p).
    onchip_entries: u64,
    /// Total number of ORAMs in the recursion (H), including the Data ORAM.
    num_levels: u32,
}

impl RecursionAddressing {
    /// Builds the addressing for `data_blocks` data blocks with `x` entries
    /// per PosMap block and an on-chip PosMap of `onchip_entries` entries.
    ///
    /// Recursion is applied until the deepest level has at most
    /// `onchip_entries` blocks, i.e. the on-chip PosMap can hold one entry per
    /// block of level `H - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `x < 2` or either capacity is zero.
    pub fn new(data_blocks: u64, x: u64, onchip_entries: u64) -> Self {
        assert!(x >= 2, "X must be at least 2");
        assert!(data_blocks > 0, "need at least one data block");
        assert!(onchip_entries > 0, "on-chip PosMap must have capacity");
        let mut num_levels = 1u32;
        let mut blocks = data_blocks;
        while blocks > onchip_entries {
            blocks = blocks.div_ceil(x);
            num_levels += 1;
        }
        Self {
            data_blocks,
            x,
            onchip_entries,
            num_levels,
        }
    }

    /// Number of ORAMs in the recursion, including the Data ORAM (the
    /// paper's `H`).
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// Number of PosMap ORAM levels (`H - 1`).
    pub fn num_posmap_levels(&self) -> u32 {
        self.num_levels - 1
    }

    /// Leaves/counters per PosMap block (X).
    pub fn x(&self) -> u64 {
        self.x
    }

    /// Number of data blocks (N).
    pub fn data_blocks(&self) -> u64 {
        self.data_blocks
    }

    /// On-chip PosMap capacity in entries.
    pub fn onchip_entries(&self) -> u64 {
        self.onchip_entries
    }

    /// Number of blocks that exist at recursion level `i` (level 0 = data
    /// blocks, level `i` = PosMap blocks covering level `i - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels`.
    pub fn blocks_at_level(&self, level: u32) -> u64 {
        assert!(level < self.num_levels, "level {level} out of range");
        let mut blocks = self.data_blocks;
        for _ in 0..level {
            blocks = blocks.div_ceil(self.x);
        }
        blocks
    }

    /// Number of entries required in the on-chip PosMap (one per block of the
    /// deepest PosMap level, or per data block when there is no recursion).
    pub fn required_onchip_entries(&self) -> u64 {
        self.blocks_at_level(self.num_levels - 1)
    }

    /// Address of the level-`i` PosMap block that covers data block `a0`
    /// (`a_i = a_0 / X^i`, §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_levels`.
    pub fn posmap_block_addr(&self, level: u32, a0: u64) -> u64 {
        assert!(level < self.num_levels, "level {level} out of range");
        let mut a = a0;
        for _ in 0..level {
            a /= self.x;
        }
        a
    }

    /// The index (0..X) of data-side block `a_{i-1}` within its covering
    /// level-`i` PosMap block.
    pub fn entry_index(&self, level: u32, a0: u64) -> usize {
        assert!(level >= 1, "entry_index is defined for PosMap levels only");
        usize::try_from(self.posmap_block_addr(level - 1, a0) % self.x)
            .expect("entry index bounded by X fits usize")
    }

    /// The unified-tree address `i‖a_i` of the level-`i` block covering `a0`
    /// (§4.2.1).  Level 0 returns `a0` itself.
    pub fn unified_addr(&self, level: u32, a0: u64) -> u64 {
        let a_i = self.posmap_block_addr(level, a0);
        tag_address(level, a_i)
    }

    /// Total number of blocks (data + all PosMap levels) stored in the
    /// unified ORAM tree.
    pub fn unified_total_blocks(&self) -> u64 {
        (0..self.num_levels).map(|l| self.blocks_at_level(l)).sum()
    }
}

/// Packs a recursion level tag and block index into a unified address.
///
/// # Panics
///
/// Panics if the index does not fit below the tag bits.
pub fn tag_address(level: u32, index: u64) -> u64 {
    assert!(index < (1u64 << LEVEL_TAG_SHIFT), "block index too large");
    (u64::from(level) << LEVEL_TAG_SHIFT) | index
}

/// Splits a unified address into `(level, index)`.
pub fn untag_address(unified: u64) -> (u32, u64) {
    (
        u32::try_from(unified >> LEVEL_TAG_SHIFT).expect("8-bit level tag fits u32"),
        unified & ((1u64 << LEVEL_TAG_SHIFT) - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_h_formula_holds() {
        // H = ceil(log(N/p) / log X) + 1 when N, p, X are powers of two.
        for (n, x, p) in [
            (1u64 << 26, 8u64, 1u64 << 13),
            (1 << 26, 32, 1 << 9),
            (1 << 30, 8, 1 << 13),
            (1 << 20, 16, 1 << 10),
        ] {
            let rec = RecursionAddressing::new(n, x, p);
            let expected = ((n as f64 / p as f64).log2() / (x as f64).log2()).ceil() as u32 + 1;
            assert_eq!(rec.num_levels(), expected, "N={n} X={x} p={p}");
            assert!(rec.required_onchip_entries() <= p);
        }
    }

    #[test]
    fn no_recursion_needed_when_data_fits_on_chip() {
        let rec = RecursionAddressing::new(100, 8, 128);
        assert_eq!(rec.num_levels(), 1);
        assert_eq!(rec.num_posmap_levels(), 0);
        assert_eq!(rec.required_onchip_entries(), 100);
    }

    #[test]
    fn posmap_block_addr_divides_by_x_per_level() {
        let rec = RecursionAddressing::new(1 << 20, 8, 1 << 4);
        let a0 = 0b1001001u64; // 73
        assert_eq!(rec.posmap_block_addr(0, a0), 73);
        assert_eq!(rec.posmap_block_addr(1, a0), 9);
        assert_eq!(rec.posmap_block_addr(2, a0), 1);
        assert_eq!(rec.posmap_block_addr(3, a0), 0);
    }

    #[test]
    fn entry_index_identifies_slot_within_covering_block() {
        let rec = RecursionAddressing::new(1 << 20, 8, 1 << 4);
        // Data block 73 = 8*9 + 1 is entry 1 of PosMap block 9 at level 1.
        assert_eq!(rec.entry_index(1, 73), 1);
        // PosMap block 9 = 8*1 + 1 is entry 1 of level-2 block 1.
        assert_eq!(rec.entry_index(2, 73), 1);
    }

    #[test]
    fn unified_addresses_are_disjoint_across_levels() {
        let rec = RecursionAddressing::new(1 << 16, 8, 1 << 6);
        let a = rec.unified_addr(0, 5);
        let b = rec.unified_addr(1, 5);
        let c = rec.unified_addr(2, 5);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(untag_address(b), (1, 5 / 8));
        assert_eq!(untag_address(a), (0, 5));
    }

    #[test]
    fn blocks_at_level_shrink_by_x() {
        let rec = RecursionAddressing::new(1 << 26, 32, 1 << 9);
        assert_eq!(rec.blocks_at_level(0), 1 << 26);
        assert_eq!(rec.blocks_at_level(1), 1 << 21);
        assert_eq!(rec.blocks_at_level(2), 1 << 16);
        assert_eq!(rec.blocks_at_level(3), 1 << 11);
        assert_eq!(rec.blocks_at_level(4), 1 << 6);
        // Storing PosMap blocks alongside data adds well under one tree level
        // of extra blocks (§4.2.1).
        let total = rec.unified_total_blocks();
        assert!(total < 2 * rec.data_blocks());
    }

    #[test]
    fn tag_untag_roundtrip() {
        for level in 0..8u32 {
            for index in [0u64, 1, 12345, (1 << 40) + 7] {
                assert_eq!(untag_address(tag_address(level, index)), (level, index));
            }
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn tag_rejects_oversized_index() {
        let _ = tag_address(1, 1 << 60);
    }
}
