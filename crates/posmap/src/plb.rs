//! The PosMap Lookaside Buffer (PLB, §4): a set-associative cache of PosMap
//! blocks inside the ORAM frontend.
//!
//! The PLB caches *whole PosMap blocks* (akin to caching page tables, §4.1.4),
//! tagged by their unified address `i‖a_i` so blocks from different recursion
//! levels never alias (§4.1.1).  Each cached block is stored together with its
//! current leaf, because PLB-resident blocks have been read-removed from the
//! ORAM tree and must be appended back (with that leaf) when evicted
//! (§4.2.3).
//!
//! The paper evaluates direct-mapped PLBs of 8–128 KB and finds ≤10% benefit
//! from full associativity (§7.1.3), so direct-mapped is the default here.

use serde::{Deserialize, Serialize};

/// Hit/miss statistics for a PLB instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlbStats {
    /// Lookups that found the requested block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions that displaced a resident block.
    pub evictions: u64,
}

impl PlbStats {
    /// Hit rate over all lookups, or `None` if no lookups occurred.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Adds another PLB's counters into this one (for merged views over
    /// several frontends, e.g. a sharded deployment's per-shard PLBs).
    pub fn accumulate(&mut self, other: &PlbStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// One PLB-resident PosMap block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlbEntry<V> {
    /// Unified address (`i‖a_i`) of the cached PosMap block.
    pub unified_addr: u64,
    /// The leaf under which the block must be appended back to the ORAM when
    /// evicted from the PLB.
    pub leaf: u64,
    /// The block payload (serialised or typed PosMap block).
    pub payload: V,
}

/// A set-associative PLB holding PosMap blocks of type `V`.
///
/// `V` is typically a typed PosMap block during functional simulation, or a
/// unit type `()` in the address-only timing simulator.
///
/// # Examples
///
/// ```
/// use posmap::plb::{Plb, PlbEntry};
///
/// // An 8 KB direct-mapped PLB of 64-byte PosMap blocks: 128 entries.
/// let mut plb: Plb<Vec<u8>> = Plb::new(128, 1);
/// assert!(plb.lookup(42).is_none());
/// plb.insert(PlbEntry { unified_addr: 42, leaf: 7, payload: vec![0u8; 64] });
/// assert!(plb.lookup(42).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Plb<V> {
    sets: Vec<Vec<PlbEntry<V>>>,
    associativity: usize,
    stats: PlbStats,
}

impl<V> Plb<V> {
    /// Creates a PLB with `capacity_blocks` total entries organised into sets
    /// of `associativity` ways.  An associativity of 1 is direct-mapped; an
    /// associativity equal to the capacity is fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero, the associativity is zero, or the
    /// capacity is not a multiple of the associativity.
    pub fn new(capacity_blocks: usize, associativity: usize) -> Self {
        assert!(capacity_blocks > 0, "PLB must have at least one entry");
        assert!(associativity > 0, "associativity must be at least 1");
        assert!(
            capacity_blocks.is_multiple_of(associativity),
            "capacity must be a multiple of associativity"
        );
        let num_sets = capacity_blocks / associativity;
        Self {
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            associativity,
            stats: PlbStats::default(),
        }
    }

    /// Builds a PLB sized in bytes, as the paper specifies capacities
    /// (e.g. "64 KB direct-mapped PLB"), given the PosMap block size.
    pub fn with_capacity_bytes(
        capacity_bytes: usize,
        block_bytes: usize,
        associativity: usize,
    ) -> Self {
        let blocks = (capacity_bytes / block_bytes).max(associativity);
        Self::new(blocks - blocks % associativity, associativity)
    }

    /// Total number of entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the PLB holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Associativity (ways per set).
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PlbStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PlbStats::default();
    }

    // lint: ct-scope, no-alloc
    fn set_index(&self, unified_addr: u64) -> usize {
        // Mix the level tag into the index so PosMap levels do not all map to
        // the same few sets.
        let h = unified_addr ^ (unified_addr >> 56).wrapping_mul(0x9e37_79b9);
        (h % self.sets.len() as u64) as usize
    }

    /// Looks up a PosMap block by unified address, returning a mutable
    /// reference on a hit (the frontend updates counters/leaves in place).
    /// Updates hit/miss statistics and LRU order.
    pub fn lookup(&mut self, unified_addr: u64) -> Option<&mut PlbEntry<V>> {
        let set_idx = self.set_index(unified_addr);
        let set = &mut self.sets[set_idx];
        // lint: allow(secret-branch, PLB hit or miss and the hit depth are revealed by design per section 4.1.2)
        if let Some(pos) = set.iter().position(|e| e.unified_addr == unified_addr) {
            self.stats.hits += 1;
            // Move to the back = most recently used.
            let entry = set.remove(pos);
            // lint: allow(no-alloc, push follows a remove in the same way list so capacity is retained)
            set.push(entry);
            set.last_mut()
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Returns a mutable reference to a resident block without updating
    /// statistics or LRU state.  Used by the frontend when it re-touches a
    /// block it already accounted for during the lookup loop (§4.2.4 step 1).
    pub fn peek_mut(&mut self, unified_addr: u64) -> Option<&mut PlbEntry<V>> {
        let set_idx = self.set_index(unified_addr);
        self.sets[set_idx]
            .iter_mut()
            .find(|e| e.unified_addr == unified_addr)
    }

    /// Checks residency without touching statistics or LRU state.
    pub fn contains(&self, unified_addr: u64) -> bool {
        let set_idx = self.set_index(unified_addr);
        self.sets[set_idx]
            .iter()
            .any(|e| e.unified_addr == unified_addr)
    }

    /// Inserts a block, returning the entry it displaced (which the frontend
    /// must append back to the ORAM, §4.2.4 step 2), if any.
    ///
    /// Inserting a block that is already resident replaces it without an
    /// eviction.
    pub fn insert(&mut self, entry: PlbEntry<V>) -> Option<PlbEntry<V>> {
        let set_idx = self.set_index(entry.unified_addr);
        let assoc = self.associativity;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set
            .iter()
            // lint: allow(secret-branch, replace-versus-fill is a cache-internal decision; the external refill traffic is fixed by the miss path per section 4.1.2)
            .position(|e| e.unified_addr == entry.unified_addr)
        {
            set.remove(pos);
            // lint: allow(no-alloc, push follows a remove in the same way list so capacity is retained)
            set.push(entry);
            return None;
        }
        let victim = if set.len() == assoc {
            self.stats.evictions += 1;
            Some(set.remove(0))
        } else {
            None
        };
        // lint: allow(no-alloc, way list grows to at most the associativity then reuses its capacity)
        set.push(entry);
        victim
    }

    /// Removes a specific block (used when the frontend must flush a block,
    /// e.g. during a group remap).
    pub fn remove(&mut self, unified_addr: u64) -> Option<PlbEntry<V>> {
        let set_idx = self.set_index(unified_addr);
        let set = &mut self.sets[set_idx];
        set.iter()
            .position(|e| e.unified_addr == unified_addr)
            .map(|pos| set.remove(pos))
    }
    // lint: end

    /// Drains every resident entry (used when flushing the PLB).
    pub fn drain(&mut self) -> Vec<PlbEntry<V>> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            out.append(set);
        }
        out
    }

    /// Iterates over the sets in index order, each as its entries in LRU
    /// order (least recently used first).  The snapshot machinery persists
    /// the PLB through this view; re-inserting the entries set by set in
    /// the same order restores both residency and LRU state exactly,
    /// because [`Plb::insert`] routes by the same index function and
    /// appends at the most-recently-used end.
    pub fn iter_sets(&self) -> impl Iterator<Item = &[PlbEntry<V>]> {
        self.sets.iter().map(Vec::as_slice)
    }

    /// Restores the statistics counters from a snapshot (resuming an
    /// instance continues its hit/miss history rather than resetting it).
    pub fn set_stats(&mut self, stats: PlbStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64) -> PlbEntry<u64> {
        PlbEntry {
            unified_addr: addr,
            leaf: addr * 10,
            payload: addr,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut plb: Plb<u64> = Plb::new(8, 1);
        assert!(plb.lookup(5).is_none());
        plb.insert(entry(5));
        assert_eq!(plb.lookup(5).unwrap().leaf, 50);
        assert_eq!(plb.stats().hits, 1);
        assert_eq!(plb.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts_previous_occupant() {
        let mut plb: Plb<u64> = Plb::new(4, 1);
        // Two addresses that collide in a 4-set direct-mapped PLB.
        let a = 3u64;
        let b = a + 4;
        plb.insert(entry(a));
        let evicted = plb.insert(entry(b));
        assert_eq!(evicted.unwrap().unified_addr, a);
        assert!(plb.lookup(a).is_none());
        assert!(plb.lookup(b).is_some());
        assert_eq!(plb.stats().evictions, 1);
    }

    #[test]
    fn higher_associativity_avoids_the_conflict() {
        let mut plb: Plb<u64> = Plb::new(4, 4);
        let a = 3u64;
        let b = a + 4;
        plb.insert(entry(a));
        assert!(plb.insert(entry(b)).is_none());
        assert!(plb.lookup(a).is_some());
        assert!(plb.lookup(b).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut plb: Plb<u64> = Plb::new(2, 2);
        plb.insert(entry(0));
        plb.insert(entry(1));
        // Touch 0 so 1 becomes LRU.
        assert!(plb.lookup(0).is_some());
        let evicted = plb.insert(entry(2)).unwrap();
        assert_eq!(evicted.unified_addr, 1);
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut plb: Plb<u64> = Plb::new(4, 2);
        plb.insert(entry(9));
        let mut updated = entry(9);
        updated.leaf = 123;
        assert!(plb.insert(updated).is_none());
        assert_eq!(plb.lookup(9).unwrap().leaf, 123);
        assert_eq!(plb.len(), 1);
    }

    #[test]
    fn capacity_bytes_constructor_matches_paper_sizes() {
        // 8 KB PLB of 64-byte blocks = 128 entries; 64 KB = 1024 entries.
        let plb8: Plb<()> = Plb::with_capacity_bytes(8 << 10, 64, 1);
        let plb64: Plb<()> = Plb::with_capacity_bytes(64 << 10, 64, 1);
        assert_eq!(plb8.capacity(), 128);
        assert_eq!(plb64.capacity(), 1024);
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut plb: Plb<u64> = Plb::new(8, 2);
        for i in 0..5 {
            plb.insert(entry(i));
        }
        let drained = plb.drain();
        assert_eq!(drained.len(), 5);
        assert!(plb.is_empty());
    }

    #[test]
    fn remove_specific_entry() {
        let mut plb: Plb<u64> = Plb::new(8, 2);
        plb.insert(entry(1));
        plb.insert(entry(2));
        assert_eq!(plb.remove(1).unwrap().unified_addr, 1);
        assert!(plb.remove(1).is_none());
        assert_eq!(plb.len(), 1);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut plb: Plb<u64> = Plb::new(64, 1);
        // Sequential re-use: after the first pass everything hits.
        for _ in 0..4 {
            for addr in 0..32u64 {
                if plb.lookup(addr).is_none() {
                    plb.insert(entry(addr));
                }
            }
        }
        assert!(plb.stats().hit_rate().unwrap() > 0.7);
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn rejects_mismatched_capacity_and_associativity() {
        let _: Plb<()> = Plb::new(6, 4);
    }
}
