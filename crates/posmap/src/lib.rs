//! Position-map (PosMap) structures for the Freecursive ORAM controller.
//!
//! The PosMap is the page-table-like structure at the heart of Position-based
//! ORAMs: it maps every block to the random leaf it is currently stored
//! under.  Managing it efficiently is the entire subject of the paper; this
//! crate contains the data structures the frontends are built from
//! (`docs/ARCHITECTURE.md` at the workspace root places them in the full
//! access path):
//!
//! * [`addressing::RecursionAddressing`] — the multi-level page-table
//!   arithmetic of Recursive ORAM (§3.2): which PosMap block at which level
//!   covers a given data block, and the unified `i‖a_i` address space of the
//!   single-tree design (§4.2.1).
//! * [`uncompressed::UncompressedPosMapBlock`] — a PosMap block storing `X`
//!   raw leaf labels (the baseline format).
//! * [`compressed::CompressedPosMapBlock`] — the paper's compressed format
//!   (§5.2): an α-bit group counter plus `X` β-bit individual counters, from
//!   which leaves are derived through a PRF.
//! * [`plb::Plb`] — the PosMap Lookaside Buffer (§4), a set-associative cache
//!   of PosMap blocks.
//! * [`onchip::OnChipPosMap`] — the root of the recursion, held in trusted
//!   on-chip storage.
//!
//! # Examples
//!
//! ```
//! use posmap::addressing::RecursionAddressing;
//!
//! // 2^26 data blocks, X = 32 leaves per PosMap block, 4 KB on-chip PosMap
//! // holding 512 64-bit entries.
//! let rec = RecursionAddressing::new(1 << 26, 32, 1 << 9);
//! assert_eq!(rec.num_levels(), 5); // the Data ORAM plus 4 PosMap levels
//! let a0 = 0x12345;
//! let a1 = rec.posmap_block_addr(1, a0);
//! assert_eq!(a1, a0 / 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod compressed;
pub mod onchip;
pub mod plb;
pub mod uncompressed;

pub use addressing::RecursionAddressing;
pub use compressed::CompressedPosMapBlock;
pub use onchip::OnChipPosMap;
pub use plb::{Plb, PlbEntry, PlbStats};
pub use uncompressed::UncompressedPosMapBlock;

// The frontends holding these structures promise `Send` (the `Oram` trait's
// supertrait); pin the promise down here so a non-`Send` field added to any
// PosMap structure fails at compile time in this crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RecursionAddressing>();
    assert_send::<CompressedPosMapBlock>();
    assert_send::<UncompressedPosMapBlock>();
    assert_send::<OnChipPosMap>();
    assert_send::<Plb<Vec<u8>>>();
};
