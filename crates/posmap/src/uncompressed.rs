//! The baseline (uncompressed) PosMap block format: `X` raw leaf labels.
//!
//! This is the format used by Recursive ORAM before the paper's compression
//! technique (§3.2): a PosMap block for addresses `{a, …, a+X-1}` simply
//! stores their current leaves.  Leaves are serialised as 32-bit words, which
//! comfortably holds the ≤ 32 tree levels of every configuration in the
//! paper.

use serde::{Deserialize, Serialize};

/// Bytes used to serialise one leaf entry.
pub const LEAF_ENTRY_BYTES: usize = 4;

/// A PosMap block holding `X` uncompressed leaf labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncompressedPosMapBlock {
    leaves: Vec<u64>,
}

impl UncompressedPosMapBlock {
    /// Creates a block of `x` entries, all initialised to leaf 0.
    pub fn new(x: usize) -> Self {
        Self { leaves: vec![0; x] }
    }

    /// Number of entries (X).
    pub fn x(&self) -> usize {
        self.leaves.len()
    }

    /// Maximum X representable in a block of `block_bytes` bytes.
    pub fn max_x_for_block(block_bytes: usize) -> usize {
        block_bytes / LEAF_ENTRY_BYTES
    }

    /// Returns the leaf stored for entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= x`.
    pub fn leaf(&self, index: usize) -> u64 {
        self.leaves[index]
    }

    /// Sets the leaf for entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= x`.
    pub fn set_leaf(&mut self, index: usize, leaf: u64) {
        self.leaves[index] = leaf;
    }

    /// Serialises the block into exactly `block_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the entries do not fit in `block_bytes`.
    pub fn to_bytes(&self, block_bytes: usize) -> Vec<u8> {
        assert!(
            self.leaves.len() * LEAF_ENTRY_BYTES <= block_bytes,
            "X = {} entries do not fit in a {}-byte block",
            self.leaves.len(),
            block_bytes
        );
        let mut out = vec![0u8; block_bytes];
        for (i, leaf) in self.leaves.iter().enumerate() {
            let leaf = u32::try_from(*leaf).expect("leaf exceeds the 4-byte PosMap entry");
            out[i * LEAF_ENTRY_BYTES..(i + 1) * LEAF_ENTRY_BYTES]
                .copy_from_slice(&leaf.to_le_bytes());
        }
        out
    }

    /// Parses a block serialised by [`Self::to_bytes`] with `x` entries.
    ///
    /// # Panics
    ///
    /// Panics if the byte slice is too short for `x` entries.
    pub fn from_bytes(bytes: &[u8], x: usize) -> Self {
        assert!(bytes.len() >= x * LEAF_ENTRY_BYTES, "block too short");
        let leaves = (0..x)
            .map(|i| {
                u64::from(u32::from_le_bytes(
                    bytes[i * LEAF_ENTRY_BYTES..(i + 1) * LEAF_ENTRY_BYTES]
                        .try_into()
                        .expect("4-byte entry"),
                ))
            })
            .collect();
        Self { leaves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytes() {
        let mut block = UncompressedPosMapBlock::new(8);
        for i in 0..8 {
            block.set_leaf(i, (i as u64) * 1000 + 7);
        }
        let bytes = block.to_bytes(64);
        assert_eq!(bytes.len(), 64);
        let parsed = UncompressedPosMapBlock::from_bytes(&bytes, 8);
        assert_eq!(parsed, block);
    }

    #[test]
    fn paper_x_for_64_byte_blocks() {
        // §5.3: the original representation achieves X = 16 for 64-byte
        // (512-bit) blocks with leaves of 17-32 bits.
        assert_eq!(UncompressedPosMapBlock::max_x_for_block(64), 16);
        assert_eq!(UncompressedPosMapBlock::max_x_for_block(128), 32);
        // The 32-byte PosMap blocks of [26] hold X = 8 leaves.
        assert_eq!(UncompressedPosMapBlock::max_x_for_block(32), 8);
    }

    #[test]
    fn new_block_maps_everything_to_leaf_zero() {
        let block = UncompressedPosMapBlock::new(4);
        assert!((0..4).all(|i| block.leaf(i) == 0));
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn to_bytes_rejects_undersized_block() {
        let block = UncompressedPosMapBlock::new(32);
        let _ = block.to_bytes(64);
    }
}
