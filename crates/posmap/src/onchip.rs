//! The on-chip PosMap: the root of the recursion, held in trusted SRAM.
//!
//! In the baseline design each entry is a leaf label for one block of the
//! deepest PosMap ORAM (akin to the root page table, §3.2).  Under PMMAC each
//! entry is instead a 64-bit access counter from which the leaf is derived
//! through the PRF (§6.2.1); the counters form the root of trust.

use serde::{Deserialize, Serialize};

/// What the on-chip PosMap entries hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnChipEntryKind {
    /// Uncompressed leaf labels (baseline and PLB-only designs).
    Leaf,
    /// Monotonic access counters (PMMAC designs, §6.2.1).
    Counter,
}

/// The trusted on-chip PosMap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnChipPosMap {
    entries: Vec<u64>,
    kind: OnChipEntryKind,
}

impl OnChipPosMap {
    /// Creates an on-chip PosMap of `entries` zero-initialised entries.
    pub fn new(entries: u64, kind: OnChipEntryKind) -> Self {
        Self {
            entries: vec![0u64; entries as usize],
            kind,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the PosMap has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// What the entries represent.
    pub fn kind(&self) -> OnChipEntryKind {
        self.kind
    }

    /// Returns entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    // lint: ct-scope, no-alloc
    pub fn get(&self, index: u64) -> u64 {
        self.entries[index as usize]
    }

    /// Sets entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set(&mut self, index: u64, value: u64) {
        self.entries[index as usize] = value;
    }

    /// Increments entry `index` (counter mode) and returns the *new* value.
    ///
    /// # Panics
    ///
    /// Panics if the entry kind is not [`OnChipEntryKind::Counter`] or the
    /// counter would overflow 64 bits (§6.2.1 sizes counters to never
    /// overflow).
    pub fn increment(&mut self, index: u64) -> u64 {
        assert_eq!(
            self.kind,
            OnChipEntryKind::Counter,
            "increment is only meaningful for counter entries"
        );
        let e = &mut self.entries[index as usize];
        *e = e.checked_add(1).expect("64-bit counter overflow");
        *e
    }
    // lint: end

    /// On-chip storage footprint in bytes, assuming `bits_per_entry` bits per
    /// entry (leaves need L bits; counters 64).  Used by the area model.
    pub fn storage_bytes(&self, bits_per_entry: u32) -> u64 {
        (self.entries.len() as u64 * u64::from(bits_per_entry)).div_ceil(8)
    }

    /// All entries in index order (the snapshot machinery persists the
    /// on-chip PosMap through this view).
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Replaces every entry from a snapshot; `entries` must have exactly
    /// the current length.  Returns `false` (changing nothing) on a length
    /// mismatch.
    #[must_use]
    pub fn load_entries(&mut self, entries: &[u64]) -> bool {
        if entries.len() != self.entries.len() {
            return false;
        }
        self.entries.copy_from_slice(entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut pm = OnChipPosMap::new(16, OnChipEntryKind::Leaf);
        assert_eq!(pm.len(), 16);
        assert_eq!(pm.get(3), 0);
        pm.set(3, 42);
        assert_eq!(pm.get(3), 42);
    }

    #[test]
    fn increment_returns_new_value() {
        let mut pm = OnChipPosMap::new(4, OnChipEntryKind::Counter);
        assert_eq!(pm.increment(0), 1);
        assert_eq!(pm.increment(0), 2);
        assert_eq!(pm.get(0), 2);
    }

    #[test]
    #[should_panic(expected = "counter entries")]
    fn increment_rejected_for_leaf_entries() {
        let mut pm = OnChipPosMap::new(4, OnChipEntryKind::Leaf);
        pm.increment(0);
    }

    #[test]
    fn storage_footprint() {
        // 2048 entries of 25-bit leaves = 6.25 KB; of 64-bit counters = 16 KB.
        let pm = OnChipPosMap::new(2048, OnChipEntryKind::Leaf);
        assert_eq!(pm.storage_bytes(25), 6400);
        assert_eq!(pm.storage_bytes(64), 16384);
    }
}
