//! The compressed PosMap block format (§5.2): a group counter plus `X`
//! individual counters, turned into leaves through a PRF.
//!
//! A compressed PosMap block covering blocks `{a, …, a+X-1}` stores
//!
//! ```text
//! GC || IC_0 || IC_1 || … || IC_{X-1}
//! ```
//!
//! where `GC` is an α-bit *group counter* and each `IC_j` a β-bit *individual
//! counter*.  The current leaf of block `a+j` is `PRF_K(a+j ‖ GC ‖ IC_j) mod
//! 2^L`.  Remapping a block increments its individual counter; when an
//! individual counter rolls over the group counter is incremented and **all**
//! blocks of the group must be remapped through the Backend (§5.2.2) so the
//! input to the PRF never repeats.
//!
//! With α = 64, β = 14 a 64-byte (512-bit) block packs X′ = 32 counters
//! exactly, double the X = 16 of the uncompressed format, and the worst-case
//! group-remap overhead is X′/2^β = 0.2% (§5.3).  The same counters double as
//! the non-repeating write counters PMMAC needs (§6.2.2).

use serde::{Deserialize, Serialize};

/// Default group-counter width in bits (§5.3).
pub const DEFAULT_ALPHA: u32 = 64;
/// Default individual-counter width in bits (§5.3).
pub const DEFAULT_BETA: u32 = 14;

/// Outcome of incrementing an individual counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementOutcome {
    /// The individual counter advanced normally; only this block's leaf
    /// changes.
    Normal,
    /// The individual counter rolled over: the group counter was incremented
    /// and every individual counter reset.  The caller must remap **all**
    /// blocks of the group through the Backend before continuing (§5.2.2).
    GroupRemap,
}

/// A compressed PosMap block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedPosMapBlock {
    group_counter: u64,
    individual: Vec<u64>,
    alpha: u32,
    beta: u32,
}

impl CompressedPosMapBlock {
    /// Creates an all-zero block of `x` entries with the given counter
    /// widths.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is 0 or exceeds 64, or `beta` is 0 or exceeds 32.
    pub fn new(x: usize, alpha: u32, beta: u32) -> Self {
        assert!(alpha > 0 && alpha <= 64, "alpha must be in 1..=64");
        assert!(beta > 0 && beta <= 32, "beta must be in 1..=32");
        Self {
            group_counter: 0,
            individual: vec![0; x],
            alpha,
            beta,
        }
    }

    /// Creates a block with the paper's default α = 64, β = 14.
    pub fn with_defaults(x: usize) -> Self {
        Self::new(x, DEFAULT_ALPHA, DEFAULT_BETA)
    }

    /// Number of entries (X).
    pub fn x(&self) -> usize {
        self.individual.len()
    }

    /// Group-counter width in bits.
    pub fn alpha(&self) -> u32 {
        self.alpha
    }

    /// Individual-counter width in bits.
    pub fn beta(&self) -> u32 {
        self.beta
    }

    /// Current group counter.
    pub fn group_counter(&self) -> u64 {
        self.group_counter
    }

    /// Current individual counter of entry `index`.
    pub fn individual_counter(&self, index: usize) -> u64 {
        self.individual[index]
    }

    /// Maximum X that fits in a block of `block_bytes` bytes for the given
    /// counter widths (§5.3: 64-byte blocks with α = 64, β = 14 give X = 32).
    pub fn max_x_for_block(block_bytes: usize, alpha: u32, beta: u32) -> usize {
        ((block_bytes * 8).saturating_sub(alpha as usize)) / beta as usize
    }

    /// The scalar, never-repeating access counter of entry `index`:
    /// `GC‖IC_j = (GC << β) | IC_j`.  This is the counter fed to the PRF for
    /// leaf generation and to PMMAC for MAC computation (§6.2.2).
    pub fn counter_of(&self, index: usize) -> u64 {
        (self.group_counter << self.beta) | self.individual[index]
    }

    /// Increments the counter of entry `index` (remapping that block).
    ///
    /// Returns [`IncrementOutcome::GroupRemap`] if the individual counter
    /// rolled over, in which case the group counter has been incremented and
    /// every individual counter reset to zero; the caller must then remap
    /// every block of the group.
    ///
    /// # Panics
    ///
    /// Panics if the group counter would exceed its α-bit budget, which with
    /// α = 64 cannot happen within the lifetime of a simulation.
    pub fn increment(&mut self, index: usize) -> IncrementOutcome {
        let max_ic = (1u64 << self.beta) - 1;
        if self.individual[index] < max_ic {
            self.individual[index] += 1;
            IncrementOutcome::Normal
        } else {
            let max_gc = if self.alpha == 64 {
                u64::MAX
            } else {
                (1u64 << self.alpha) - 1
            };
            assert!(
                self.group_counter < max_gc,
                "group counter exhausted its {}-bit budget",
                self.alpha
            );
            self.group_counter += 1;
            for ic in &mut self.individual {
                *ic = 0;
            }
            IncrementOutcome::GroupRemap
        }
    }

    /// Serialises the block into exactly `block_bytes` bytes (bit-packed:
    /// `GC` in the low α bits, then each `IC_j` in β bits).
    ///
    /// # Panics
    ///
    /// Panics if the counters do not fit in `block_bytes`.
    pub fn to_bytes(&self, block_bytes: usize) -> Vec<u8> {
        let needed_bits = self.alpha as usize + self.individual.len() * self.beta as usize;
        assert!(
            needed_bits <= block_bytes * 8,
            "{needed_bits} counter bits do not fit in a {block_bytes}-byte block"
        );
        let mut out = vec![0u8; block_bytes];
        let mut writer = BitWriter::new(&mut out);
        writer.write(self.group_counter, self.alpha);
        for &ic in &self.individual {
            writer.write(ic, self.beta);
        }
        out
    }

    /// Parses a block serialised by [`Self::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if the byte slice is too short.
    pub fn from_bytes(bytes: &[u8], x: usize, alpha: u32, beta: u32) -> Self {
        let needed_bits = alpha as usize + x * beta as usize;
        assert!(bytes.len() * 8 >= needed_bits, "block too short");
        let mut reader = BitReader::new(bytes);
        let group_counter = reader.read(alpha);
        let individual = (0..x).map(|_| reader.read(beta)).collect();
        Self {
            group_counter,
            individual,
            alpha,
            beta,
        }
    }
}

/// Minimal LSB-first bit writer.
struct BitWriter<'a> {
    out: &'a mut [u8],
    bit_pos: usize,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut [u8]) -> Self {
        Self { out, bit_pos: 0 }
    }

    fn write(&mut self, value: u64, bits: u32) {
        for i in 0..bits {
            let bit = (value >> i) & 1;
            if bit != 0 {
                let pos = self.bit_pos + i as usize;
                self.out[pos / 8] |= 1 << (pos % 8);
            }
        }
        self.bit_pos += bits as usize;
    }
}

/// Minimal LSB-first bit reader.
struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_pos: 0 }
    }

    fn read(&mut self, bits: u32) -> u64 {
        let mut value = 0u64;
        for i in 0..bits {
            let pos = self.bit_pos + i as usize;
            let bit = (self.bytes[pos / 8] >> (pos % 8)) & 1;
            value |= u64::from(bit) << i;
        }
        self.bit_pos += bits as usize;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::prf::{AesPrf, Prf};

    #[test]
    fn paper_packing_example() {
        // §5.3: B = 512 bits, α = 64, β = 14 ⇒ X′ = 32 exactly.
        assert_eq!(CompressedPosMapBlock::max_x_for_block(64, 64, 14), 32);
        // And the uncompressed format only reaches 16 for the same block.
        let block = CompressedPosMapBlock::with_defaults(32);
        let bytes = block.to_bytes(64);
        assert_eq!(bytes.len(), 64);
    }

    #[test]
    fn counters_roundtrip_through_bytes() {
        let mut block = CompressedPosMapBlock::new(8, 64, 14);
        for j in 0..8 {
            for _ in 0..=j {
                block.increment(j);
            }
        }
        let bytes = block.to_bytes(64);
        let parsed = CompressedPosMapBlock::from_bytes(&bytes, 8, 64, 14);
        assert_eq!(parsed, block);
    }

    #[test]
    fn increment_is_strictly_monotonic_in_scalar_counter() {
        // The scalar counter GC‖IC must never repeat — that is what makes the
        // PRF leaves fresh and the PMMAC counters replay-proof.
        let mut block = CompressedPosMapBlock::new(4, 16, 3);
        let mut last = block.counter_of(2);
        for _ in 0..100 {
            block.increment(2);
            let now = block.counter_of(2);
            assert!(
                now > last,
                "counter must strictly increase: {last} -> {now}"
            );
            last = now;
        }
    }

    #[test]
    fn group_remap_fires_every_2_to_the_beta_accesses() {
        let beta = 4u32;
        let mut block = CompressedPosMapBlock::new(8, 16, beta);
        let mut remaps = 0;
        let accesses = 3 * (1 << beta);
        for _ in 0..accesses {
            if block.increment(0) == IncrementOutcome::GroupRemap {
                remaps += 1;
            }
        }
        assert_eq!(remaps, 3);
        // After a remap every individual counter is reset.
        assert!(block.group_counter() >= 3);
    }

    #[test]
    fn group_remap_resets_all_individual_counters() {
        let mut block = CompressedPosMapBlock::new(4, 16, 2);
        block.increment(1);
        block.increment(3);
        // Drive entry 0 to overflow: 2^2 = 4 increments.
        for _ in 0..3 {
            assert_eq!(block.increment(0), IncrementOutcome::Normal);
        }
        assert_eq!(block.increment(0), IncrementOutcome::GroupRemap);
        for j in 0..4 {
            assert_eq!(block.individual_counter(j), 0);
        }
        assert_eq!(block.group_counter(), 1);
    }

    #[test]
    fn leaves_derived_from_counters_change_after_increment() {
        let prf = AesPrf::new([1u8; 16]);
        let mut block = CompressedPosMapBlock::with_defaults(32);
        let base_addr = 1000u64;
        let levels = 20;
        let before = prf.leaf_for(base_addr + 5, block.counter_of(5), levels);
        block.increment(5);
        let after = prf.leaf_for(base_addr + 5, block.counter_of(5), levels);
        assert_ne!(before, after);
    }

    #[test]
    fn worst_case_remap_overhead_matches_paper() {
        // §5.3: X'/2^β = 32/2^14 ≈ 0.2%.
        let overhead = 32.0 / f64::from(1u32 << 14);
        assert!((overhead - 0.002).abs() < 0.0005);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn to_bytes_rejects_undersized_block() {
        let block = CompressedPosMapBlock::with_defaults(64);
        let _ = block.to_bytes(64);
    }
}
