//! A generic set-associative write-back cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.capacity_bytes / (self.associativity * self.line_bytes)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Line-aligned address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative write-back, write-allocate cache with true-LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `sets[i]` is ordered least- to most-recently used.
    sets: Vec<Vec<Line>>,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `associativity * line_bytes`).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes > 0 && config.associativity > 0);
        assert!(
            config
                .capacity_bytes
                .is_multiple_of(config.associativity * config.line_bytes)
                && config.num_sets() > 0,
            "capacity must be a whole number of sets"
        );
        Self {
            sets: vec![Vec::new(); config.num_sets()],
            config,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.config.num_sets() as u64) as usize;
        let tag = line / self.config.num_sets() as u64;
        (set, tag)
    }

    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag * self.config.num_sets() as u64 + set as u64) * self.config.line_bytes as u64
    }

    /// Accesses the byte address `addr`.  On a miss the line is allocated; a
    /// dirty victim's address is returned for write-back.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        let (set_idx, tag) = self.split(addr);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut line = set.remove(pos);
            line.dirty |= is_write;
            set.push(line);
            self.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let writeback = if set.len() == assoc {
            let victim = set.remove(0);
            victim.dirty.then(|| self.line_addr(set_idx, victim.tag))
        } else {
            None
        };
        self.sets[set_idx].push(Line {
            tag,
            dirty: is_write,
        });
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Inserts a line without classifying it as a demand access (used when a
    /// lower level fills an upper one).  Returns a dirty victim, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let (set_idx, tag) = self.split(addr);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut line = set.remove(pos);
            line.dirty |= dirty;
            set.push(line);
            return None;
        }
        let writeback = if set.len() == assoc {
            let victim = set.remove(0);
            victim.dirty.then(|| self.line_addr(set_idx, victim.tag))
        } else {
            None
        };
        self.sets[set_idx].push(Line { tag, dirty });
        writeback
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.split(addr);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 512,
            associativity: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_is_derived_correctly() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(c.config().num_lines(), 8);
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit, "same 64-byte line");
        assert!(!c.access(0x140, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn dirty_eviction_produces_writeback_of_correct_address() {
        let mut c = tiny();
        // Set 0 holds lines whose (line index % 4) == 0: addresses 0, 256, 512…
        c.access(0, true);
        c.access(256, false);
        let out = c.access(512, false);
        assert!(!out.hit);
        assert_eq!(out.writeback, Some(0), "dirty line 0 evicted");
        // The clean line at 256 is still resident; 0 is gone.
        assert!(c.contains(256));
        assert!(!c.contains(0));
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn lru_keeps_recently_used_line() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        // Touch 0 again so 256 is the LRU victim.
        c.access(0, false);
        c.access(512, false);
        assert!(c.contains(0));
        assert!(!c.contains(256));
    }

    #[test]
    fn fill_does_not_count_as_demand_access() {
        let mut c = tiny();
        c.fill(0, false);
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.contains(0));
    }

    #[test]
    fn working_set_within_capacity_eventually_all_hits() {
        let mut c = SetAssocCache::new(CacheConfig {
            capacity_bytes: 32 << 10,
            associativity: 4,
            line_bytes: 64,
        });
        let lines = 256u64; // 16 KB working set in a 32 KB cache
        for _ in 0..3 {
            for i in 0..lines {
                c.access(i * 64, false);
            }
        }
        // After warm-up, the last two passes hit every time.
        assert!(c.hits() >= 2 * lines);
        assert_eq!(c.misses(), lines);
    }
}
