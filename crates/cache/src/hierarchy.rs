//! The two-level cache hierarchy of Table 1: a 32 KB 4-way L1 data cache and
//! a 1 MB 16-way unified L2 (the LLC), both with 64-byte lines.

use crate::cache::{CacheConfig, SetAssocCache};
use serde::{Deserialize, Serialize};

/// Where a memory access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2 (last-level) cache.
    L2,
    /// Missed the LLC; main memory (ORAM or DRAM) must be accessed.
    Memory,
}

/// Outcome of sending one load/store through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Where the access hit.
    pub level: HitLevel,
    /// Line-aligned address of a dirty LLC line that must be written back to
    /// main memory, if the fill displaced one.
    pub llc_writeback: Option<u64>,
}

/// Configuration of the hierarchy (latencies in CPU cycles, per Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 geometry.
    pub l1: CacheConfig,
    /// L2 (LLC) geometry.
    pub l2: CacheConfig,
    /// L1 hit latency (data + tag), cycles.
    pub l1_latency: u64,
    /// L2 hit latency (data + tag), cycles.
    pub l2_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            l1: CacheConfig {
                capacity_bytes: 32 << 10,
                associativity: 4,
                line_bytes: 64,
            },
            l2: CacheConfig {
                capacity_bytes: 1 << 20,
                associativity: 16,
                line_bytes: 64,
            },
            l1_latency: 2,
            l2_latency: 11,
        }
    }
}

/// The L1 + L2 hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// LLC line size in bytes (the ORAM block size of the evaluation).
    pub fn line_bytes(&self) -> usize {
        self.config.l2.line_bytes
    }

    /// L1/L2 hit and miss counters: `(l1_hits, l1_misses, l2_hits, l2_misses)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.l1.hits(),
            self.l1.misses(),
            self.l2.hits(),
            self.l2.misses(),
        )
    }

    /// Sends a load/store through the hierarchy, allocating lines on misses.
    pub fn access(&mut self, addr: u64, is_write: bool) -> HierarchyOutcome {
        let l1_out = self.l1.access(addr, is_write);
        if l1_out.hit {
            return HierarchyOutcome {
                level: HitLevel::L1,
                llc_writeback: None,
            };
        }
        // An L1 victim is absorbed by the (inclusive) L2.
        let mut llc_writeback = None;
        if let Some(victim) = l1_out.writeback {
            llc_writeback = self.l2.fill(victim, true);
        }
        let l2_out = self.l2.access(addr, false);
        if let Some(victim) = l2_out.writeback {
            debug_assert!(llc_writeback.is_none());
            llc_writeback = Some(victim);
        }
        HierarchyOutcome {
            level: if l2_out.hit {
                HitLevel::L2
            } else {
                HitLevel::Memory
            },
            llc_writeback,
        }
    }

    /// Hit latency of a given level in CPU cycles (memory latency is supplied
    /// by the main-memory model, not the hierarchy).
    pub fn hit_latency(&self, level: HitLevel) -> u64 {
        match level {
            HitLevel::L1 => self.config.l1_latency,
            HitLevel::L2 => self.config.l1_latency + self.config.l2_latency,
            HitLevel::Memory => self.config.l1_latency + self.config.l2_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_to_memory_then_hits_l1() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        assert_eq!(h.access(0x4000, false).level, HitLevel::Memory);
        assert_eq!(h.access(0x4000, false).level, HitLevel::L1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        // Fill one L1 set (4 ways) with conflicting lines: the L1 has 128
        // sets, so addresses 64*128 apart conflict.
        let stride = 64 * 128;
        for i in 0..5u64 {
            h.access(i * stride, false);
        }
        // The first line fell out of L1 but is still in the much larger L2.
        assert_eq!(h.access(0, false).level, HitLevel::L2);
    }

    #[test]
    fn dirty_llc_eviction_is_reported_for_writeback() {
        let small = HierarchyConfig {
            l2: CacheConfig {
                capacity_bytes: 4 << 10,
                associativity: 1,
                line_bytes: 64,
            },
            l1: CacheConfig {
                capacity_bytes: 256,
                associativity: 1,
                line_bytes: 64,
            },
            ..HierarchyConfig::default()
        };
        let mut h = CacheHierarchy::new(small);
        // Dirty a line, then push it out of both levels with conflicting
        // addresses.
        h.access(0, true);
        let l1_conflict_stride = 64 * 4; // 4 sets in the tiny L1
        let l2_conflict_stride = 64 * 64; // 64 sets in the tiny L2
        let mut saw_writeback = false;
        for i in 1..10u64 {
            let out = h.access(i * l1_conflict_stride.max(l2_conflict_stride), false);
            if out.llc_writeback == Some(0) {
                saw_writeback = true;
            }
        }
        assert!(
            saw_writeback,
            "dirty line 0 must eventually be written back"
        );
    }

    #[test]
    fn latencies_follow_table_1() {
        let h = CacheHierarchy::new(HierarchyConfig::default());
        assert_eq!(h.hit_latency(HitLevel::L1), 2);
        assert_eq!(h.hit_latency(HitLevel::L2), 13);
        assert_eq!(h.line_bytes(), 64);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access(0, false);
        h.access(0, false);
        h.access(64, false);
        let (l1h, l1m, _l2h, l2m) = h.counters();
        assert_eq!(l1h, 1);
        assert_eq!(l1m, 2);
        assert_eq!(l2m, 2);
    }
}
