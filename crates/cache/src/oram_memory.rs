//! Main-memory adapter that drives a functional [`Oram`] implementation —
//! the full secure-processor stack (core → caches → ORAM controller) with
//! real block movement instead of a latency model.
//!
//! Any [`Oram`] fits behind the adapter: a `FreecursiveOram` over the Path
//! ORAM backend for end-to-end functional runs, one over the insecure
//! backend for fast tests, or a `Box<dyn Oram>` straight from
//! `OramBuilder::build`.

use crate::processor::MainMemory;
use freecursive::Oram;

/// Connects the LLC miss/writeback stream to a functional ORAM.
///
/// Every LLC miss becomes an ORAM read of the covering block and every dirty
/// writeback an ORAM write; a fixed latency is reported to the core (the
/// calibrated latency models live in `oram-sim` — this adapter is about
/// *contents*, not timing).  Line addresses are folded onto the ORAM's
/// address space modulo its capacity.
#[derive(Debug)]
pub struct FunctionalOramMemory<O: Oram> {
    oram: O,
    latency: u64,
}

impl<O: Oram> FunctionalOramMemory<O> {
    /// Wraps an ORAM, reporting `latency` cycles per access to the core.
    pub fn new(oram: O, latency: u64) -> Self {
        Self { oram, latency }
    }

    /// The wrapped ORAM (e.g. to read its statistics).
    pub fn oram(&self) -> &O {
        &self.oram
    }

    /// Mutable access to the wrapped ORAM.
    pub fn oram_mut(&mut self) -> &mut O {
        &mut self.oram
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> O {
        self.oram
    }

    fn block_of(&self, line_addr: u64) -> u64 {
        (line_addr / self.oram.block_bytes() as u64) % self.oram.num_blocks()
    }
}

impl<O: Oram> MainMemory for FunctionalOramMemory<O> {
    /// # Panics
    ///
    /// Panics if the ORAM reports an error — in the secure-processor model an
    /// integrity violation or stash overflow halts the machine, and a
    /// functional simulation has nothing sensible to continue with.
    fn access(&mut self, line_addr: u64, is_write: bool) -> u64 {
        let block = self.block_of(line_addr);
        if is_write {
            // The timing model carries no line contents; writebacks store a
            // zero block (the ORAM traffic and state transitions are what
            // this adapter exists to exercise).
            let zeros = vec![0u8; self.oram.block_bytes()];
            self.oram
                .write(block, &zeros)
                .expect("ORAM writeback failed: the secure processor would halt");
        } else {
            self.oram
                .read(block)
                .expect("ORAM fetch failed: the secure processor would halt");
        }
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::{ProcessorConfig, SecureProcessor};
    use freecursive::{OramBuilder, SchemePoint};

    #[test]
    fn llc_misses_become_oram_requests() {
        let oram = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        let mut cpu = SecureProcessor::new(
            ProcessorConfig::default(),
            FunctionalOramMemory::new(oram, 1200),
        );
        for i in 0..3000u64 {
            cpu.step(3, (i * 4099 * 64) % (1 << 16), i % 5 == 0);
        }
        let result = cpu.result();
        assert!(result.llc_misses > 0);
        assert_eq!(
            cpu.memory().oram().stats().frontend_requests,
            result.llc_misses + result.llc_writebacks,
            "every LLC miss and writeback becomes exactly one ORAM request"
        );
    }

    #[test]
    fn a_sharded_service_client_works_behind_the_adapter() {
        // `OramClient` implements `Oram`, so the full secure-processor
        // stack can run over a sharded, worker-thread-backed deployment
        // with no adapter changes.
        let service = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .shards(4)
            .build_service()
            .unwrap();
        let mut cpu = SecureProcessor::new(
            ProcessorConfig::default(),
            FunctionalOramMemory::new(service.client(), 1200),
        );
        for i in 0..3000u64 {
            cpu.step(3, (i * 4099 * 64) % (1 << 16), i % 5 == 0);
        }
        let result = cpu.result();
        assert!(result.llc_misses > 0);
        // The client's `stats()` is a fetched snapshot: refresh it, then
        // the usual bookkeeping identity holds across all shards.
        let stats = cpu.memory_mut().oram_mut().fetch_stats().unwrap();
        assert_eq!(
            stats.frontend_requests,
            result.llc_misses + result.llc_writebacks,
            "every LLC miss and writeback becomes exactly one ORAM request"
        );
    }

    #[test]
    fn trait_objects_work_behind_the_adapter() {
        let oram = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .build()
            .unwrap();
        let mut memory = FunctionalOramMemory::new(oram, 58);
        assert_eq!(memory.access(0, false), 58);
        assert_eq!(memory.access(64, true), 58);
        assert_eq!(memory.oram().stats().frontend_requests, 2);
    }
}
