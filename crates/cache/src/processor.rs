//! The in-order core timing model (Table 1) driving the cache hierarchy and a
//! pluggable main memory.

use crate::hierarchy::{CacheHierarchy, HierarchyConfig, HitLevel};
use serde::{Deserialize, Serialize};

/// The main-memory interface the LLC misses into: either a flat-latency DRAM
/// (the insecure baseline) or one of the ORAM latency models from `oram-sim`.
pub trait MainMemory {
    /// Performs one line-sized access and returns its latency in CPU cycles.
    fn access(&mut self, line_addr: u64, is_write: bool) -> u64;
}

/// A flat-latency main memory: the insecure baseline of the evaluation
/// (58 CPU cycles per DRAM access on average, §7.1.2).
#[derive(Debug, Clone, Copy)]
pub struct FlatLatencyMemory {
    /// Latency of every access in CPU cycles.
    pub latency: u64,
}

impl Default for FlatLatencyMemory {
    fn default() -> Self {
        Self { latency: 58 }
    }
}

impl MainMemory for FlatLatencyMemory {
    fn access(&mut self, _line_addr: u64, _is_write: bool) -> u64 {
        self.latency
    }
}

/// Core and hierarchy configuration (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// Cycles per non-memory instruction (in-order single issue: 1).
    pub cycles_per_instruction: u64,
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self {
            hierarchy: HierarchyConfig::default(),
            cycles_per_instruction: 1,
        }
    }
}

/// Aggregate results of a trace run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunResult {
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Instructions executed (memory + non-memory).
    pub instructions: u64,
    /// Loads/stores issued.
    pub memory_accesses: u64,
    /// LLC misses (demand fetches from main memory).
    pub llc_misses: u64,
    /// Dirty LLC lines written back to main memory.
    pub llc_writebacks: u64,
    /// Cycles spent waiting on main memory.
    pub memory_cycles: u64,
}

impl RunResult {
    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }
}

/// An in-order, single-issue core with the Table 1 cache hierarchy, connected
/// to a [`MainMemory`].
#[derive(Debug)]
pub struct SecureProcessor<M> {
    config: ProcessorConfig,
    hierarchy: CacheHierarchy,
    memory: M,
    result: RunResult,
}

impl<M: MainMemory> SecureProcessor<M> {
    /// Creates a processor bound to a main-memory model.
    pub fn new(config: ProcessorConfig, memory: M) -> Self {
        Self {
            hierarchy: CacheHierarchy::new(config.hierarchy),
            config,
            memory,
            result: RunResult::default(),
        }
    }

    /// Results accumulated so far.
    pub fn result(&self) -> RunResult {
        self.result
    }

    /// Clears the accumulated results while keeping all cache state warm.
    /// Used to exclude warm-up from measured runs.
    pub fn reset_result(&mut self) {
        self.result = RunResult::default();
    }

    /// The main-memory model (e.g. to read ORAM statistics afterwards).
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// Mutable access to the main-memory model.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.memory
    }

    /// The cache hierarchy (for hit/miss counters).
    pub fn hierarchy(&self) -> &CacheHierarchy {
        &self.hierarchy
    }

    /// Executes `gap` non-memory instructions followed by one load/store to
    /// byte address `addr`.
    pub fn step(&mut self, gap: u64, addr: u64, is_write: bool) {
        self.result.instructions += gap + 1;
        self.result.total_cycles += gap * self.config.cycles_per_instruction;
        self.result.memory_accesses += 1;

        let outcome = self.hierarchy.access(addr, is_write);
        let mut latency = self.hierarchy.hit_latency(outcome.level);
        if outcome.level == HitLevel::Memory {
            self.result.llc_misses += 1;
            let line =
                addr / self.hierarchy.line_bytes() as u64 * self.hierarchy.line_bytes() as u64;
            let mem_latency = self.memory.access(line, false);
            latency += mem_latency;
            self.result.memory_cycles += mem_latency;
        }
        if let Some(victim) = outcome.llc_writeback {
            // An LLC eviction turns into a main-memory write (an ORAM access
            // of its own in the secure configuration).  It does not stall the
            // core in a real system with a write buffer, but it does occupy
            // the (single) ORAM controller; we charge it to memory time.
            self.result.llc_writebacks += 1;
            let mem_latency = self.memory.access(victim, true);
            self.result.total_cycles += mem_latency;
            self.result.memory_cycles += mem_latency;
        }
        self.result.total_cycles += latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_baseline_latency() {
        let mut cpu =
            SecureProcessor::new(ProcessorConfig::default(), FlatLatencyMemory::default());
        cpu.step(0, 0, false);
        // Miss: L1+L2 lookup latency (13) + 58 memory cycles.
        assert_eq!(cpu.result().total_cycles, 13 + 58);
        assert_eq!(cpu.result().llc_misses, 1);
        cpu.step(0, 0, false);
        // Second access hits L1 (2 cycles).
        assert_eq!(cpu.result().total_cycles, 13 + 58 + 2);
    }

    #[test]
    fn gap_instructions_cost_one_cycle_each() {
        let mut cpu =
            SecureProcessor::new(ProcessorConfig::default(), FlatLatencyMemory::default());
        cpu.step(100, 0, false);
        assert_eq!(cpu.result().instructions, 101);
        assert_eq!(cpu.result().total_cycles, 100 + 13 + 58);
    }

    #[test]
    fn slower_memory_increases_total_cycles_proportionally_to_misses() {
        struct SlowMemory;
        impl MainMemory for SlowMemory {
            fn access(&mut self, _a: u64, _w: bool) -> u64 {
                1208 // the 2-channel ORAM tree latency of Table 2
            }
        }
        let run = |mem_fast: bool| -> u64 {
            let cfg = ProcessorConfig::default();
            // Random-ish strided pattern covering more than the LLC.
            if mem_fast {
                let mut cpu = SecureProcessor::new(cfg, FlatLatencyMemory::default());
                for i in 0..20_000u64 {
                    cpu.step(5, (i * 4099 * 64) % (64 << 20), false);
                }
                cpu.result().total_cycles
            } else {
                let mut cpu = SecureProcessor::new(cfg, SlowMemory);
                for i in 0..20_000u64 {
                    cpu.step(5, (i * 4099 * 64) % (64 << 20), false);
                }
                cpu.result().total_cycles
            }
        };
        let fast = run(true);
        let slow = run(false);
        let slowdown = slow as f64 / fast as f64;
        // With a miss-heavy pattern the slowdown approaches the latency ratio.
        assert!(slowdown > 5.0, "slowdown {slowdown}");
    }

    #[test]
    fn mpki_and_ipc_are_consistent() {
        let mut cpu =
            SecureProcessor::new(ProcessorConfig::default(), FlatLatencyMemory::default());
        for i in 0..1000u64 {
            cpu.step(9, i * 64, false);
        }
        let r = cpu.result();
        assert_eq!(r.instructions, 10_000);
        assert!(r.mpki() > 0.0);
        assert!(r.ipc() > 0.0 && r.ipc() <= 1.0);
    }

    #[test]
    fn writebacks_are_counted_and_charged() {
        struct CountingMemory {
            writes: u64,
        }
        impl MainMemory for CountingMemory {
            fn access(&mut self, _a: u64, w: bool) -> u64 {
                if w {
                    self.writes += 1;
                }
                100
            }
        }
        let cfg = ProcessorConfig::default();
        let mut cpu = SecureProcessor::new(cfg, CountingMemory { writes: 0 });
        // Write to far more lines than the LLC holds so dirty evictions occur.
        let llc_lines = (1u64 << 20) / 64;
        for i in 0..(llc_lines * 2) {
            cpu.step(0, i * 64, true);
        }
        assert!(cpu.result().llc_writebacks > 0);
        assert_eq!(cpu.result().llc_writebacks, cpu.memory().writes);
    }
}
