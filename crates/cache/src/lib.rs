//! Processor-side timing model: a two-level set-associative cache hierarchy
//! in front of an in-order core, as configured in Table 1 of the paper.
//!
//! The evaluation's performance numbers are "slowdown relative to an insecure
//! system without ORAM": the same core and caches are simulated twice, once
//! with a flat-latency DRAM main memory and once with the ORAM latency model,
//! and the cycle counts compared.  This crate provides the shared
//! core/cache machinery; the ORAM latency models live in `oram-sim`, and
//! `docs/ARCHITECTURE.md` at the workspace root maps the evaluation stack
//! onto the functional crates.
//!
//! # Examples
//!
//! ```
//! use cache_sim::{ProcessorConfig, SecureProcessor, MainMemory};
//!
//! /// An insecure DRAM: 58 processor cycles per access (§7.1.2).
//! struct FlatDram;
//! impl MainMemory for FlatDram {
//!     fn access(&mut self, _line_addr: u64, _is_write: bool) -> u64 { 58 }
//! }
//!
//! let mut cpu = SecureProcessor::new(ProcessorConfig::default(), FlatDram);
//! cpu.step(10, 0x1000, false); // 10 non-memory instructions, then a load
//! assert!(cpu.result().total_cycles > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod oram_memory;
pub mod processor;

pub use cache::{CacheConfig, SetAssocCache};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HitLevel};
pub use oram_memory::FunctionalOramMemory;
pub use processor::{FlatLatencyMemory, MainMemory, ProcessorConfig, RunResult, SecureProcessor};
