//! An analytical area model for the Freecursive ORAM controller in a 32 nm
//! process, reproducing the structure of the paper's post-synthesis results
//! (Table 3, §7.2) and the alternative-design estimates of §7.2.3.
//! (`docs/ARCHITECTURE.md` at the workspace root places the area model in
//! the evaluation stack.)
//!
//! The original numbers come from Synopsys Design Compiler on the authors'
//! Verilog; synthesising real RTL is outside the scope of this algorithmic
//! reproduction, so this crate models each block from first principles —
//! SRAM macros as `fixed + per-KB` area, the AES datapath as one pipelined
//! core per 128 bits/cycle of DRAM bandwidth, the SHA3 unit and control logic
//! as constants — with the per-block coefficients calibrated against Table 3.
//! The *structure* the paper emphasises is preserved:
//!
//! * the Frontend (PosMap + PLB + PMMAC) is DRAM-bandwidth independent, so its
//!   share of total area shrinks as channel count grows;
//! * PMMAC costs ≈12–13 % of the design and the PLB ≈10 %;
//! * dropping recursion (a flat on-chip PosMap) costs >10× the area;
//! * growing the PLB to 64 KB adds ≈29 % area to the 1-channel design.
//!
//! # Examples
//!
//! ```
//! use area_model::AreaModel;
//!
//! let model = AreaModel::default();
//! let b = model.breakdown(2);
//! assert!(b.frontend_fraction() > 0.2 && b.frontend_fraction() < 0.4);
//! assert!(b.total_mm2 > 0.2 && b.total_mm2 < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Area of an SRAM macro: a fixed periphery cost plus a per-KB cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Fixed periphery/decoder area in mm².
    pub fixed_mm2: f64,
    /// Incremental area per KB of capacity in mm².
    pub per_kb_mm2: f64,
}

impl SramMacro {
    /// Area of a macro holding `bytes` bytes.
    pub fn area(&self, bytes: u64) -> f64 {
        self.fixed_mm2 + self.per_kb_mm2 * (bytes as f64 / 1024.0)
    }
}

/// Physical design parameters of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaParams {
    /// On-chip PosMap capacity in bytes (8 KB in the prototype).
    pub onchip_posmap_bytes: u64,
    /// PLB capacity in bytes (8 KB in the prototype, 64 KB in §7.2.3).
    pub plb_bytes: u64,
    /// Whether PMMAC (the SHA3 unit and its datapath) is instantiated.
    pub pmmac: bool,
    /// Stash capacity in blocks.
    pub stash_blocks: u64,
    /// ORAM block size in bytes.
    pub block_bytes: u64,
    /// PosMap SRAM macro coefficients.
    pub posmap_sram: SramMacro,
    /// PLB SRAM macro coefficients (data + tag arrays + comparators).
    pub plb_sram: SramMacro,
    /// Stash SRAM macro coefficients.
    pub stash_sram: SramMacro,
    /// Area of one pipelined AES-128 core plus its share of the read/write
    /// path, in mm².
    pub aes_core_mm2: f64,
    /// Fixed AES-path control area in mm².
    pub aes_fixed_mm2: f64,
    /// Area of the SHA3-224 core and PMMAC control in mm².
    pub pmmac_mm2: f64,
    /// Frontend miscellaneous control logic in mm².
    pub misc_mm2: f64,
    /// Stash datapath growth per doubling of channel count (fraction).
    pub stash_width_scaling: f64,
}

impl Default for AreaParams {
    fn default() -> Self {
        // Coefficients calibrated so that the 1/2/4-channel breakdowns land
        // on Table 3 (±10%).
        Self {
            onchip_posmap_bytes: 8 << 10,
            plb_bytes: 8 << 10,
            pmmac: true,
            stash_blocks: 200,
            block_bytes: 64,
            posmap_sram: SramMacro {
                fixed_mm2: 0.013,
                per_kb_mm2: 0.00127,
            },
            plb_sram: SramMacro {
                fixed_mm2: 0.0216,
                per_kb_mm2: 0.00132,
            },
            stash_sram: SramMacro {
                fixed_mm2: 0.075,
                per_kb_mm2: 0.00115,
            },
            aes_core_mm2: 0.110,
            aes_fixed_mm2: 0.020,
            pmmac_mm2: 0.0390,
            misc_mm2: 0.0045,
            stash_width_scaling: 0.05,
        }
    }
}

/// The per-component area breakdown for one channel count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// DRAM channel count the breakdown is for.
    pub channels: usize,
    /// On-chip PosMap area (mm²).
    pub posmap_mm2: f64,
    /// PLB area (mm²).
    pub plb_mm2: f64,
    /// PMMAC area (mm²).
    pub pmmac_mm2: f64,
    /// Frontend miscellaneous area (mm²).
    pub misc_mm2: f64,
    /// Stash area (mm²).
    pub stash_mm2: f64,
    /// AES read/write path area (mm²).
    pub aes_mm2: f64,
    /// Total cell area (mm²).
    pub total_mm2: f64,
}

impl AreaBreakdown {
    /// Frontend area (PosMap + PLB + PMMAC + misc) in mm².
    pub fn frontend_mm2(&self) -> f64 {
        self.posmap_mm2 + self.plb_mm2 + self.pmmac_mm2 + self.misc_mm2
    }

    /// Backend area (stash + AES) in mm².
    pub fn backend_mm2(&self) -> f64 {
        self.stash_mm2 + self.aes_mm2
    }

    /// Frontend share of total area.
    pub fn frontend_fraction(&self) -> f64 {
        self.frontend_mm2() / self.total_mm2
    }

    /// PMMAC share of total area.
    pub fn pmmac_fraction(&self) -> f64 {
        self.pmmac_mm2 / self.total_mm2
    }

    /// PLB share of total area.
    pub fn plb_fraction(&self) -> f64 {
        self.plb_mm2 / self.total_mm2
    }
}

/// The analytical area model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaModel {
    /// Physical parameters.
    pub params: AreaParams,
}

impl AreaModel {
    /// Creates a model with explicit parameters.
    pub fn new(params: AreaParams) -> Self {
        Self { params }
    }

    /// Number of pipelined AES cores needed to rate-match `channels` DRAM
    /// channels (one 128-bit core covers two 64-bit channels — the design
    /// artifact noted in the paper's footnote 5).
    pub fn aes_cores(&self, channels: usize) -> usize {
        channels.div_ceil(2).max(1)
    }

    /// Computes the area breakdown for a given DRAM channel count.
    pub fn breakdown(&self, channels: usize) -> AreaBreakdown {
        let p = &self.params;
        let posmap_mm2 = p.posmap_sram.area(p.onchip_posmap_bytes);
        let plb_mm2 = p.plb_sram.area(p.plb_bytes);
        let pmmac_mm2 = if p.pmmac { p.pmmac_mm2 } else { 0.0 };
        let misc_mm2 = p.misc_mm2;
        // The stash data array is sized by capacity; its datapath widens with
        // the DRAM bus.
        let width_factor = 1.0 + p.stash_width_scaling * (channels as f64).log2();
        let stash_mm2 = p.stash_sram.area(p.stash_blocks * p.block_bytes) * width_factor;
        let aes_mm2 = p.aes_fixed_mm2 + p.aes_core_mm2 * self.aes_cores(channels) as f64;
        let total_mm2 = posmap_mm2 + plb_mm2 + pmmac_mm2 + misc_mm2 + stash_mm2 + aes_mm2;
        AreaBreakdown {
            channels,
            posmap_mm2,
            plb_mm2,
            pmmac_mm2,
            misc_mm2,
            stash_mm2,
            aes_mm2,
            total_mm2,
        }
    }

    /// §7.2.3 alternative: the area of a design that stores the whole PosMap
    /// on chip (no recursion), for an ORAM of `num_blocks` blocks and a tree
    /// with `leaf_bits`-bit leaf labels.
    pub fn flat_posmap_total(&self, channels: usize, num_blocks: u64, leaf_bits: u32) -> f64 {
        let flat_bytes = num_blocks * u64::from(leaf_bits) / 8;
        let base = self.breakdown(channels);
        base.total_mm2 - base.posmap_mm2 + self.params.posmap_sram.area(flat_bytes)
    }

    /// §7.2.3 alternative: total area with a different PLB capacity.
    pub fn with_plb_bytes(&self, plb_bytes: u64) -> Self {
        Self {
            params: AreaParams {
                plb_bytes,
                ..self.params
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 totals: .316, .326, .438 mm² for 1, 2, 4 channels.
    #[test]
    fn totals_track_table_3() {
        let model = AreaModel::default();
        let expected = [(1usize, 0.316), (2, 0.326), (4, 0.438)];
        for (channels, paper) in expected {
            let got = model.breakdown(channels).total_mm2;
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.10,
                "{channels} channels: got {got:.3}, paper {paper}"
            );
        }
    }

    #[test]
    fn frontend_fraction_shrinks_with_channel_count() {
        let model = AreaModel::default();
        let f1 = model.breakdown(1).frontend_fraction();
        let f2 = model.breakdown(2).frontend_fraction();
        let f4 = model.breakdown(4).frontend_fraction();
        assert!(f1 >= f2 && f2 >= f4, "{f1} {f2} {f4}");
        // Paper: 31.2%, 30.0%, 22.5%.
        assert!((f1 - 0.312).abs() < 0.06);
        assert!((f4 - 0.225).abs() < 0.06);
    }

    #[test]
    fn pmmac_and_plb_shares_match_paper_claims() {
        let model = AreaModel::default();
        for channels in [1usize, 2, 4] {
            let b = model.breakdown(channels);
            assert!(b.pmmac_fraction() <= 0.135, "PMMAC ≤ 13% of area");
            assert!(b.plb_fraction() <= 0.115, "PLB ≤ ~10% of area");
        }
    }

    #[test]
    fn aes_core_count_follows_bandwidth() {
        let model = AreaModel::default();
        assert_eq!(model.aes_cores(1), 1);
        assert_eq!(model.aes_cores(2), 1);
        assert_eq!(model.aes_cores(4), 2);
        assert_eq!(model.aes_cores(8), 4);
        // The 1→2 channel area step is therefore small (footnote 5).
        let a1 = model.breakdown(1).aes_mm2;
        let a2 = model.breakdown(2).aes_mm2;
        let a4 = model.breakdown(4).aes_mm2;
        assert_eq!(a1, a2);
        assert!(a4 > a2);
    }

    #[test]
    fn dropping_recursion_costs_more_than_10x() {
        // §7.2.3: a 2^20-entry on-chip PosMap (4 KB blocks, 20-bit leaves)
        // pushes the 2-channel design to ~5 mm², >10× the recursive design.
        let model = AreaModel::default();
        let recursive = model.breakdown(2).total_mm2;
        let flat = model.flat_posmap_total(2, 1 << 20, 20);
        assert!(
            flat / recursive > 10.0,
            "flat {flat:.2} vs recursive {recursive:.3}"
        );
        // And doubling the capacity roughly doubles the flat cost.
        let flat2 = model.flat_posmap_total(2, 1 << 21, 21);
        assert!(flat2 > 1.8 * flat - recursive);
    }

    #[test]
    fn a_64kb_plb_adds_roughly_29_percent_to_one_channel_design() {
        let model = AreaModel::default();
        let base = model.breakdown(1).total_mm2;
        let big = model.with_plb_bytes(64 << 10).breakdown(1);
        let increase = big.total_mm2 / base - 1.0;
        assert!(
            (increase - 0.29).abs() < 0.08,
            "area increase {increase:.2} (paper: 29%)"
        );
        // And the big PLB is ~26% of the enlarged design.
        assert!((big.plb_fraction() - 0.26).abs() < 0.06);
    }

    #[test]
    fn disabling_pmmac_removes_its_area() {
        let params = AreaParams {
            pmmac: false,
            ..AreaParams::default()
        };
        let without = AreaModel::new(params).breakdown(2);
        let with = AreaModel::default().breakdown(2);
        assert!(without.total_mm2 < with.total_mm2);
        assert_eq!(without.pmmac_mm2, 0.0);
    }

    #[test]
    fn sram_macro_area_is_affine_in_capacity() {
        let m = SramMacro {
            fixed_mm2: 0.01,
            per_kb_mm2: 0.001,
        };
        assert!((m.area(8 << 10) - 0.018).abs() < 1e-12);
        assert!((m.area(64 << 10) - 0.074).abs() < 1e-12);
    }
}
