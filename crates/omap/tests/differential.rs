//! Differential suite: `ObliviousMap` against a `HashMap` oracle.
//!
//! One seeded mixed workload (inserts with variable-length keys and
//! values — including chain-spanning ones — gets, removes, contains
//! probes) drives the oblivious map and a plain `HashMap<Vec<u8>,
//! Vec<u8>>` side by side, comparing every operation's result and then
//! sweeping the whole key universe.  The same workload runs over the
//! memory, file, and tiered stores and over a 4-shard `OramService`,
//! plus a leg that persists mid-run and resumes into a fresh process
//! image (only the snapshot directory crosses the gap).
//!
//! The access-count half pins the security contract down: every
//! operation — hit or miss, short or chained value, overwrite, failed
//! insert — costs exactly `layout.accesses_per_op()` backing-ORAM
//! requests, and input-validation failures cost exactly zero.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use freecursive::{
    ConfigError, FreecursiveError, FrontendStats, MapError, Oram, OramBuilder, Request, Response,
    SchemePoint, StorageKind,
};
use omap::{BuildMap, MapConfig, ObliviousMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY_MAX: usize = 24;
const VAL_MAX: usize = 200;
const CAPACITY: u64 = 128;
const BLOCK: usize = 128;
const KEY_UNIVERSE: u64 = 48;
const OPS: u64 = 600;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn snap_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omap-differential-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn builder(storage: StorageKind) -> OramBuilder {
    OramBuilder::for_scheme(SchemePoint::PcX32)
        .block_bytes(BLOCK)
        .onchip_entries(32)
        .seed(11)
        .storage(storage)
}

fn config() -> MapConfig {
    MapConfig::new(KEY_MAX, VAL_MAX, CAPACITY)
}

/// Key `id` of the universe, with id-dependent length (1..=KEY_MAX) and
/// contents — so the workload exercises short, long, and equal-prefix keys.
fn key_for(id: u64) -> Vec<u8> {
    let len = 1 + (id as usize * 7) % KEY_MAX;
    (0..len)
        .map(|i| (id as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

/// One differential step; returns the key so callers can track coverage.
fn step<O: Oram>(
    map: &mut ObliviousMap<O>,
    oracle: &mut HashMap<Vec<u8>, Vec<u8>>,
    rng: &mut StdRng,
) {
    let key = key_for(rng.gen_range(0..KEY_UNIVERSE));
    match rng.gen_range(0..10u32) {
        // Inserts dominate so the table fills enough to exercise
        // collisions and chain reuse.
        0..=3 => {
            let len = rng.gen_range(0..VAL_MAX + 1);
            let mut value = vec![0u8; len];
            rng.fill(&mut value[..]);
            match map.insert(&key, &value) {
                Ok(previous) => {
                    let expected = oracle.insert(key, value).map(|old| old.len() as u64);
                    assert_eq!(previous, expected, "insert previous-length mismatch");
                }
                Err(FreecursiveError::Map(MapError::CapacityExhausted { .. })) => {
                    // The oracle has no capacity limit; a (rare) rejected
                    // insert must simply leave the map unchanged, which
                    // the final sweep verifies.
                }
                Err(e) => panic!("insert failed: {e}"),
            }
        }
        4..=6 => {
            let got = map.get(&key).expect("get");
            assert_eq!(got.as_deref(), oracle.get(&key).map(Vec::as_slice));
        }
        7..=8 => {
            let got = map.remove(&key).expect("remove");
            assert_eq!(got, oracle.remove(&key));
        }
        _ => {
            let got = map.contains(&key).expect("contains");
            assert_eq!(got, oracle.contains_key(&key));
        }
    }
}

/// Full-universe sweep plus length check.
fn sweep<O: Oram>(map: &mut ObliviousMap<O>, oracle: &HashMap<Vec<u8>, Vec<u8>>) {
    for id in 0..KEY_UNIVERSE {
        let key = key_for(id);
        let got = map.get(&key).expect("sweep get");
        assert_eq!(
            got.as_deref(),
            oracle.get(&key).map(Vec::as_slice),
            "key id {id}"
        );
    }
    assert_eq!(map.len(), oracle.len() as u64);
}

fn run_differential<O: Oram>(mut map: ObliviousMap<O>, seed: u64) -> ObliviousMap<O> {
    let mut oracle = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..OPS {
        step(&mut map, &mut oracle, &mut rng);
    }
    sweep(&mut map, &oracle);
    map
}

#[test]
fn differential_against_hashmap_memory_store() {
    let map = builder(StorageKind::Mem).build_map(&config()).unwrap();
    run_differential(map, 0xA11CE);
}

#[test]
fn differential_against_hashmap_file_store() {
    let map = builder(StorageKind::TempFile).build_map(&config()).unwrap();
    run_differential(map, 0xB0B);
}

#[test]
fn differential_against_hashmap_tiered_store() {
    // A deliberately tiny budget keeps most of the tree on the cold tier.
    let map = builder(StorageKind::TempTiered {
        memory_budget: 16 * 1024,
    })
    .build_map(&config())
    .unwrap();
    run_differential(map, 0xCAFE);
}

#[test]
fn differential_against_hashmap_sharded_service() {
    let (service, map) = builder(StorageKind::Mem)
        .shards(4)
        .build_map_service(&config())
        .unwrap();
    let map = run_differential(map, 0xD00D);
    drop(map);
    service.shutdown().unwrap();
}

#[test]
fn persist_midway_and_resume_continues_the_differential_run() {
    let dir = snap_dir("resume");
    let mut oracle = HashMap::new();
    let mut rng = StdRng::seed_from_u64(0x5EED);

    let mut map = builder(StorageKind::TempFile).build_map(&config()).unwrap();
    for _ in 0..OPS / 2 {
        step(&mut map, &mut oracle, &mut rng);
    }
    map.persist(&dir).unwrap();
    let stats_at_barrier = *map.stats();
    let len_at_barrier = map.len();
    drop(map);

    // Only the snapshot directory survives the "restart".
    let mut resumed = ObliviousMap::resume(&dir).unwrap();
    assert_eq!(*resumed.stats(), stats_at_barrier);
    assert_eq!(resumed.len(), len_at_barrier);
    for _ in 0..OPS / 2 {
        step(&mut resumed, &mut oracle, &mut rng);
    }
    sweep(&mut resumed, &oracle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_wrong_layout() {
    let dir = snap_dir("tamper");
    let map = builder(StorageKind::TempFile).build_map(&config()).unwrap();
    map.persist(&dir).unwrap();
    drop(map);

    // Truncating the map state must fail cleanly, not panic.
    let state = dir.join("omap.state");
    let bytes = std::fs::read(&state).unwrap();
    std::fs::write(&state, &bytes[..bytes.len() / 2]).unwrap();
    assert!(ObliviousMap::resume(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Access-count invariance
// ---------------------------------------------------------------------------

/// Transparent [`Oram`] wrapper that counts requests.
struct CountingOram {
    inner: Box<dyn Oram>,
    requests: u64,
}

impl Oram for CountingOram {
    fn block_bytes(&self) -> usize {
        self.inner.block_bytes()
    }
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        self.requests += 1;
        self.inner.access(request)
    }
    fn access_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, FreecursiveError> {
        self.requests += requests.len() as u64;
        self.inner.access_batch(requests)
    }
    fn access_batch_owned(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        self.requests += requests.len() as u64;
        self.inner.access_batch_owned(requests)
    }
    fn stats(&self) -> &FrontendStats {
        self.inner.stats()
    }
    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
    fn persist(&self, dir: &Path) -> Result<(), FreecursiveError> {
        self.inner.persist(dir)
    }
}

fn counting_map(config: &MapConfig) -> ObliviousMap<CountingOram> {
    let layout = config.layout_for(BLOCK).unwrap();
    let oram = builder(StorageKind::Mem)
        .num_blocks(layout.total_blocks())
        .build()
        .unwrap();
    let counting = CountingOram {
        inner: oram,
        requests: 0,
    };
    ObliviousMap::over(counting, layout, [7u8; 16]).unwrap()
}

/// Asserts `op` costs exactly `expected` backing-ORAM requests.
fn assert_costs<R>(
    map: &mut ObliviousMap<CountingOram>,
    expected: u64,
    op: impl FnOnce(&mut ObliviousMap<CountingOram>) -> R,
) -> R {
    let before = map.oram().requests;
    let result = op(map);
    let after = map.oram().requests;
    assert_eq!(after - before, expected, "operation cost mismatch");
    result
}

#[test]
fn every_operation_costs_exactly_the_padded_schedule() {
    let mut map = counting_map(&config());
    let per_op = map.layout().accesses_per_op();
    assert!(map.layout().chain_blocks > 0, "test wants chained values");

    let short = vec![1u8; 3];
    let long = vec![2u8; VAL_MAX];

    // Fresh inserts, short (inline-only) and long (full chain).
    assert_costs(&mut map, per_op, |m| m.insert(b"alpha", &short).unwrap());
    assert_costs(&mut map, per_op, |m| m.insert(b"beta", &long).unwrap());
    // Overwrites across size classes (chain grow and shrink).
    assert_costs(&mut map, per_op, |m| m.insert(b"alpha", &long).unwrap());
    assert_costs(&mut map, per_op, |m| m.insert(b"beta", &short).unwrap());
    // Lookups: hit with chain, hit inline, miss.
    assert_costs(&mut map, per_op, |m| {
        assert_eq!(m.get(b"alpha").unwrap().as_deref(), Some(&long[..]));
    });
    assert_costs(&mut map, per_op, |m| {
        assert_eq!(m.get(b"beta").unwrap().as_deref(), Some(&short[..]));
    });
    assert_costs(&mut map, per_op, |m| {
        assert_eq!(m.get(b"missing").unwrap(), None);
    });
    // Contains, both outcomes.
    assert_costs(&mut map, per_op, |m| assert!(m.contains(b"alpha").unwrap()));
    assert_costs(&mut map, per_op, |m| assert!(!m.contains(b"nope").unwrap()));
    // Removes: chained hit, miss.
    assert_costs(&mut map, per_op, |m| {
        assert_eq!(m.remove(b"alpha").unwrap().as_deref(), Some(&long[..]));
    });
    assert_costs(&mut map, per_op, |m| {
        assert_eq!(m.remove(b"alpha").unwrap(), None);
    });

    // The map's own counter agrees with the wrapper's ground truth.
    assert_eq!(map.stats().oram_requests, map.oram().requests);
    assert_eq!(map.stats().oram_requests, map.stats().ops * per_op);
}

#[test]
fn failed_inserts_still_pay_the_full_schedule() {
    // A minimum-size overflow pool: the first chained insert drains it.
    let layout_probe = config().layout_for(BLOCK).unwrap();
    let tight = config().overflow_blocks(layout_probe.chain_blocks as u64);
    let mut map = counting_map(&tight);
    let per_op = map.layout().accesses_per_op();

    let long = vec![9u8; VAL_MAX];
    assert_costs(&mut map, per_op, |m| m.insert(b"first", &long).unwrap());
    let err = assert_costs(&mut map, per_op, |m| m.insert(b"second", &long));
    assert!(matches!(
        err,
        Err(FreecursiveError::Map(MapError::CapacityExhausted { .. }))
    ));
    assert_eq!(map.stats().capacity_failures, 1);
    // The failed insert changed nothing.
    assert_eq!(map.len(), 1);
    assert_eq!(map.get(b"second").unwrap(), None);
    assert_eq!(map.get(b"first").unwrap().as_deref(), Some(&long[..]));
}

#[test]
fn input_validation_failures_cost_zero_accesses() {
    let mut map = counting_map(&config());
    let oversized_key = vec![0u8; KEY_MAX + 1];
    let oversized_value = vec![0u8; VAL_MAX + 1];

    assert_costs(&mut map, 0, |m| {
        assert!(matches!(
            m.get(&oversized_key),
            Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
        ));
        assert!(matches!(
            m.insert(&oversized_key, b"v"),
            Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
        ));
        assert!(matches!(
            m.insert(b"k", &oversized_value),
            Err(FreecursiveError::Map(MapError::ValueTooLarge { .. }))
        ));
        assert!(matches!(
            m.remove(&oversized_key),
            Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
        ));
        assert!(matches!(
            m.contains(&oversized_key),
            Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
        ));
    });
    assert_eq!(map.stats().ops, 0);
}

// ---------------------------------------------------------------------------
// Up-front build validation
// ---------------------------------------------------------------------------

#[test]
fn build_map_rejects_bad_configurations_before_any_work() {
    let b = builder(StorageKind::Mem);
    assert!(matches!(
        b.build_map(&MapConfig::new(0, 8, 16)),
        Err(FreecursiveError::Config(ConfigError::Degenerate))
    ));
    assert!(matches!(
        b.build_map(&MapConfig::new(8, 8, 0)),
        Err(FreecursiveError::Config(ConfigError::Degenerate))
    ));
    assert!(matches!(
        b.build_map(&MapConfig::new(BLOCK, 8, 16)),
        Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
    ));
    assert!(matches!(
        b.build_map(&MapConfig::new(BLOCK - 16, 1 << 20, 16)),
        Err(FreecursiveError::Map(MapError::ValueTooLarge { .. }))
    ));
    assert!(matches!(
        b.build_map(&MapConfig::new(KEY_MAX, VAL_MAX, CAPACITY).overflow_blocks(1)),
        Err(FreecursiveError::Config(ConfigError::MapGeometry { .. }))
    ));
}

#[test]
fn over_rejects_a_mismatched_backing_oram() {
    let layout = config().layout_for(BLOCK).unwrap();
    // Wrong block size.
    let wrong_block = builder(StorageKind::Mem)
        .block_bytes(64)
        .num_blocks(layout.total_blocks())
        .build()
        .unwrap();
    assert!(matches!(
        ObliviousMap::over(wrong_block, layout.clone(), [0u8; 16]),
        Err(FreecursiveError::Config(ConfigError::MapGeometry { .. }))
    ));
    // Too few blocks.
    let too_small = builder(StorageKind::Mem)
        .num_blocks(layout.total_blocks() - 1)
        .build()
        .unwrap();
    assert!(matches!(
        ObliviousMap::over(too_small, layout, [0u8; 16]),
        Err(FreecursiveError::Config(ConfigError::MapGeometry { .. }))
    ));
}
