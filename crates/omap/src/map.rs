//! The oblivious key-value map itself: two-choice hashed buckets over a
//! block ORAM with a fixed, padded access schedule per operation.
//!
//! ## Access schedule
//!
//! Every operation — `insert`, `get`, `remove`, `contains`, hit or miss,
//! short value or chained — issues exactly
//! [`MapLayout::accesses_per_op`] ORAM requests in the same two phases:
//!
//! 1. **Probe**: read all `2 × blocks_per_bucket` blocks of both hash
//!    candidates in one batch.
//! 2. **Commit**: one batch that writes both bucket images back (changed
//!    or not) and performs exactly `chain_blocks` overflow-region
//!    accesses — the operation's real chain reads/writes first, then
//!    round-robin dummy reads padding out the remainder.
//!
//! The untrusted side therefore observes only "another map operation
//! happened": the backing ORAM hides *which* blocks each request touched,
//! and the fixed schedule hides everything the request *count* would
//! otherwise reveal (op type, hit/miss, value size, chain reuse).  Input
//! validation failures (`KeyTooLarge`/`ValueTooLarge`) issue zero
//! accesses — they depend only on the caller's own argument lengths,
//! which are public to the caller by definition.
//!
//! One inherited caveat: the backing frontend must itself not distinguish
//! reads from writes on the wire.  Path ORAM backends do not (every
//! access reads a path and writes it back); the deliberately-leaky
//! `InsecureOram` baseline leaks addresses no matter what this layer does.
//!
//! ## Trusted client state
//!
//! The overflow free list, entry count, dummy cursor, and statistics live
//! in trusted memory, like the PLB and stash of the Freecursive frontend
//! below.  They are captured by [`ObliviousMap::persist`] into
//! `omap.state` next to the ORAM's own snapshot and rebuilt by
//! [`ObliviousMap::resume`].

use std::path::Path;

use freecursive::{ConfigError, FreecursiveError, MapError, Oram, OramBuilder, Request, Response};
use oram_crypto::Sha3_224;
use path_oram::snapshot::{put_bytes, put_u64, read_state_file, write_state_file, SnapReader};

use crate::layout::{MapLayout, SLOT_OCCUPIED};
use crate::stats::MapStats;

/// Snapshot kind tag of the `omap.state` file (the backing ORAM's own
/// `oram.state` uses tags 1–4; the tree metadata header uses 0x10).
const KIND_OMAP: u8 = 0x20;

/// File name of the map-layer snapshot inside a persist directory.
const STATE_FILE: &str = "omap.state";

/// Marker for "no slot matched" inside the constant-shape bucket scan.
const NO_WAY: usize = usize::MAX;

/// What one completed bucket scan learned, in trusted memory only.
#[derive(Clone, Copy)]
struct ScanResult {
    /// Matching way, or [`NO_WAY`].
    found: usize,
    /// Number of vacant ways.
    empties: usize,
}

/// An oblivious `Vec<u8> → Vec<u8>` map layered on any [`Oram`]
/// implementation.  Construct through
/// [`BuildMap::build_map`](crate::BuildMap::build_map) (which sizes the
/// backing ORAM for you) or [`ObliviousMap::over`] (bring your own
/// instance); see the [crate docs](crate) for the security contract.
pub struct ObliviousMap<O: Oram = Box<dyn Oram>> {
    oram: O,
    layout: MapLayout,
    hash_seed: [u8; 16],
    /// Unallocated overflow block indices; allocation pops from the back.
    free: Vec<u32>,
    len: u64,
    /// Round-robin position for dummy overflow reads.
    dummy_cursor: u64,
    stats: MapStats,
    /// Reusable bucket images (`blocks_per_bucket × block_bytes` each).
    image_a: Vec<u8>,
    image_b: Vec<u8>,
}

/// Manual impl: `Box<dyn Oram>` is not `Debug`, and the bucket hash seed
/// must never end up in logs, so only public geometry and counters show.
impl<O: Oram> std::fmt::Debug for ObliviousMap<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObliviousMap")
            .field("layout", &self.layout)
            .field("len", &self.len)
            .field("free_overflow_blocks", &self.free.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<O: Oram> ObliviousMap<O> {
    /// Wraps an existing ORAM instance as an empty oblivious map.
    ///
    /// The ORAM's blocks must all be zero (freshly built): a zero block
    /// is an empty bucket.  `hash_seed` keys the bucket-choice hash; use
    /// the same seed when resuming state written by an external process.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MapGeometry`] when `oram` is smaller than
    /// [`MapLayout::total_blocks`] or its block size differs from the
    /// layout's, plus any layout validation error.
    pub fn over(oram: O, layout: MapLayout, hash_seed: [u8; 16]) -> Result<Self, FreecursiveError> {
        layout.validate()?;
        if oram.block_bytes() != layout.block_bytes {
            return Err(ConfigError::MapGeometry {
                detail: "backing ORAM block size differs from the map layout",
            }
            .into());
        }
        if oram.num_blocks() < layout.total_blocks() {
            return Err(ConfigError::MapGeometry {
                detail: "backing ORAM has fewer blocks than the map layout needs",
            }
            .into());
        }
        let image_len = layout.blocks_per_bucket * layout.block_bytes;
        // Popping from the back hands out low indices first.
        let free = (0..layout.overflow_blocks as u32).rev().collect();
        Ok(ObliviousMap {
            oram,
            layout,
            hash_seed,
            free,
            len: 0,
            dummy_cursor: 0,
            stats: MapStats::default(),
            image_a: vec![0u8; image_len],
            image_b: vec![0u8; image_len],
        })
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The geometry this map operates under.
    pub fn layout(&self) -> &MapLayout {
        &self.layout
    }

    /// Map-level operation counters.
    pub fn stats(&self) -> &MapStats {
        &self.stats
    }

    /// Zeroes the map-level counters (the backing ORAM's are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Shared access to the backing ORAM (e.g. for its frontend stats).
    pub fn oram(&self) -> &O {
        &self.oram
    }

    /// Consumes the map, returning the backing ORAM.
    pub fn into_oram(self) -> O {
        self.oram
    }

    /// Inserts or replaces `key → value`, returning the previous value's
    /// *length* if the key was present (`None` for a fresh insert).  The
    /// previous bytes themselves are not returned: fetching them would
    /// cost a second set of chain accesses, and callers that need them
    /// can `get` first at full schedule cost.
    ///
    /// # Errors
    ///
    /// [`MapError::KeyTooLarge`] / [`MapError::ValueTooLarge`] before any
    /// ORAM access; [`MapError::CapacityExhausted`] *after* the full
    /// padded schedule when both candidate buckets are full or the
    /// overflow pool is dry; backend errors as for [`Oram::access`].
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<Option<u64>, FreecursiveError> {
        self.check_key(key)?;
        if value.len() > self.layout.value_bytes {
            return Err(MapError::ValueTooLarge {
                len: value.len(),
                max: self.layout.value_bytes,
            }
            .into());
        }
        let (bucket_a, bucket_b) = self.candidates(key);
        self.load_buckets(bucket_a, bucket_b)?;
        let scan_a = self.scan_bucket(true, key);
        let scan_b = self.scan_bucket(false, key);

        // Pick the slot: an existing match wins (overwrite); otherwise
        // the emptier candidate bucket takes the new entry.
        let target = if scan_a.found != NO_WAY {
            Some((true, scan_a.found))
        } else if scan_b.found != NO_WAY {
            Some((false, scan_b.found))
        } else if scan_a.empties >= scan_b.empties && scan_a.empties > 0 {
            Some((true, self.first_empty(true)))
        } else if scan_b.empties > 0 {
            Some((false, self.first_empty(false)))
        } else {
            None
        };
        let Some((in_a, way)) = target else {
            // Both buckets full: finish the padded schedule so the failed
            // insert is indistinguishable from a successful one, then
            // report the (trusted-memory) failure.
            self.commit(bucket_a, bucket_b, Vec::new())?;
            self.note_op();
            self.stats.inserts += 1;
            self.stats.capacity_failures += 1;
            return Err(MapError::CapacityExhausted {
                detail: "both candidate buckets full",
            }
            .into());
        };

        // Plan the overflow chain before touching the images: reuse the
        // overwritten entry's blocks first, then draw fresh ones, and
        // only commit the free-list mutation after the ORAM batch lands.
        let image = if in_a { &self.image_a } else { &self.image_b };
        let overwriting = self.layout.slot_tag(image, way) == SLOT_OCCUPIED;
        let mut old_chain = Vec::new();
        let mut old_len = 0usize;
        if overwriting {
            old_len = self.layout.slot_val_len(image, way);
            for index in 0..self.layout.chain_needed(old_len) {
                old_chain.push(self.layout.slot_chain(image, way, index));
            }
        }
        let needed = self.layout.chain_needed(value.len());
        let reused = needed.min(old_chain.len());
        let fresh = needed - reused;
        if fresh > self.free.len() {
            self.commit(bucket_a, bucket_b, Vec::new())?;
            self.note_op();
            self.stats.inserts += 1;
            self.stats.capacity_failures += 1;
            return Err(MapError::CapacityExhausted {
                detail: "overflow pool exhausted",
            }
            .into());
        }
        let mut chain = old_chain[..reused].to_vec();
        chain.extend_from_slice(&self.free[self.free.len() - fresh..]);

        // Serialise the entry and its overflow payloads.
        let inline_len = value.len().min(self.layout.inline_bytes);
        let image = if in_a {
            &mut self.image_a
        } else {
            &mut self.image_b
        };
        self.layout
            .write_slot(image, way, key, value.len(), &chain, &value[..inline_len]);
        let mut chain_ops = Vec::with_capacity(needed);
        for (index, &block) in chain.iter().enumerate() {
            let start = self.layout.inline_bytes + index * self.layout.block_bytes;
            let end = value.len().min(start + self.layout.block_bytes);
            let mut data = vec![0u8; self.layout.block_bytes];
            data[..end - start].copy_from_slice(&value[start..end]);
            chain_ops.push(Request::Write {
                addr: self.layout.overflow_addr(block),
                data,
            });
        }

        self.commit(bucket_a, bucket_b, chain_ops)?;
        // The batch landed: make the trusted-state mutations permanent.
        let free_len = self.free.len();
        self.free.truncate(free_len - fresh);
        let previous = if overwriting {
            self.free.extend_from_slice(&old_chain[reused..]);
            Some(old_len as u64)
        } else {
            self.len += 1;
            None
        };
        self.note_op();
        self.stats.inserts += 1;
        if overwriting {
            self.stats.replacements += 1;
        }
        Ok(previous)
    }

    /// Looks up `key`, returning the stored value if present.
    ///
    /// # Errors
    ///
    /// [`MapError::KeyTooLarge`] before any access; backend errors as for
    /// [`Oram::access`].
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, FreecursiveError> {
        self.check_key(key)?;
        let result = self.lookup(key, false)?;
        self.note_op();
        self.stats.gets += 1;
        self.note_hit(result.is_some());
        Ok(result)
    }

    /// Removes `key`, returning the stored value if it was present.
    ///
    /// # Errors
    ///
    /// As for [`ObliviousMap::get`].
    pub fn remove(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, FreecursiveError> {
        self.check_key(key)?;
        let result = self.lookup(key, true)?;
        self.note_op();
        self.stats.removes += 1;
        self.note_hit(result.is_some());
        Ok(result)
    }

    /// Whether `key` is present.  Issues the same padded schedule as
    /// every other operation (the chain accesses are all dummies).
    ///
    /// # Errors
    ///
    /// As for [`ObliviousMap::get`].
    pub fn contains(&mut self, key: &[u8]) -> Result<bool, FreecursiveError> {
        self.check_key(key)?;
        let (bucket_a, bucket_b) = self.candidates(key);
        self.load_buckets(bucket_a, bucket_b)?;
        let found = self.scan_bucket(true, key).found != NO_WAY
            || self.scan_bucket(false, key).found != NO_WAY;
        self.commit(bucket_a, bucket_b, Vec::new())?;
        self.note_op();
        self.stats.contains_ops += 1;
        self.note_hit(found);
        Ok(found)
    }

    /// Snapshots the map into `dir`: the backing ORAM's own snapshot plus
    /// an `omap.state` file carrying the layout, hash seed, free list,
    /// entry count, and counters.  [`ObliviousMap::resume`] restores the
    /// pair; the usual barrier semantics of [`Oram::persist`] apply.
    ///
    /// # Errors
    ///
    /// As for [`Oram::persist`], plus I/O failures writing `omap.state`.
    pub fn persist(&self, dir: &Path) -> Result<(), FreecursiveError> {
        self.oram.persist(dir)?;
        let l = &self.layout;
        let mut payload = Vec::new();
        for v in [
            l.key_bytes as u64,
            l.value_bytes as u64,
            l.capacity,
            l.block_bytes as u64,
            l.num_buckets,
            l.slots_per_block as u64,
            l.blocks_per_bucket as u64,
            l.slot_stride as u64,
            l.inline_bytes as u64,
            l.chain_blocks as u64,
            l.overflow_blocks,
        ] {
            put_u64(&mut payload, v);
        }
        put_bytes(&mut payload, &self.hash_seed);
        put_u64(&mut payload, self.len);
        put_u64(&mut payload, self.dummy_cursor);
        let mut free_bytes = Vec::with_capacity(self.free.len() * 4);
        for &block in &self.free {
            free_bytes.extend_from_slice(&block.to_le_bytes());
        }
        put_bytes(&mut payload, &free_bytes);
        // Destructure so a new counter cannot be forgotten here.
        let MapStats {
            ops,
            inserts,
            gets,
            removes,
            contains_ops,
            hits,
            misses,
            replacements,
            capacity_failures,
            oram_requests,
        } = self.stats;
        for v in [
            ops,
            inserts,
            gets,
            removes,
            contains_ops,
            hits,
            misses,
            replacements,
            capacity_failures,
            oram_requests,
        ] {
            put_u64(&mut payload, v);
        }
        write_state_file(&dir.join(STATE_FILE), KIND_OMAP, &payload)?;
        Ok(())
    }

    /// Input validation shared by every operation.  Runs before any ORAM
    /// access: the outcome depends only on the caller's own argument
    /// length, never on map contents.
    fn check_key(&self, key: &[u8]) -> Result<(), FreecursiveError> {
        if key.len() > self.layout.key_bytes {
            return Err(MapError::KeyTooLarge {
                len: key.len(),
                max: self.layout.key_bytes,
            }
            .into());
        }
        Ok(())
    }

    /// The two candidate buckets of `key` under this map's seed.
    fn candidates(&self, key: &[u8]) -> (u64, u64) {
        let mut hasher = Sha3_224::new();
        hasher.update(&self.hash_seed);
        hasher.update(key);
        let digest = hasher.finalize();
        let first = u64::from_le_bytes(digest[0..8].try_into().expect("8 bytes"));
        let second = u64::from_le_bytes(digest[8..16].try_into().expect("8 bytes"));
        let bucket_a = first % self.layout.num_buckets;
        let mut bucket_b = second % self.layout.num_buckets;
        if bucket_b == bucket_a {
            bucket_b = (bucket_b + 1) % self.layout.num_buckets;
        }
        (bucket_a, bucket_b)
    }

    /// Phase 1: read both candidate buckets into the image buffers.
    fn load_buckets(&mut self, bucket_a: u64, bucket_b: u64) -> Result<(), FreecursiveError> {
        let g = self.layout.blocks_per_bucket;
        let mut requests = Vec::with_capacity(2 * g);
        for index in 0..g {
            requests.push(Request::Read {
                addr: self.layout.bucket_block_addr(bucket_a, index),
            });
        }
        for index in 0..g {
            requests.push(Request::Read {
                addr: self.layout.bucket_block_addr(bucket_b, index),
            });
        }
        let responses = self.oram.access_batch_owned(requests)?;
        let block = self.layout.block_bytes;
        for (index, response) in responses.iter().enumerate() {
            let data = response.data.as_deref().unwrap_or(&[]);
            let image = if index < g {
                &mut self.image_a
            } else {
                &mut self.image_b
            };
            let at = (index % g) * block;
            image[at..at + data.len()].copy_from_slice(data);
        }
        Ok(())
    }

    /// Phase 2: write both images back and perform exactly
    /// `chain_blocks` overflow accesses — `chain_ops` first, dummy
    /// round-robin reads for the rest.  Returns the batch responses
    /// (index `2 × blocks_per_bucket + i` is `chain_ops[i]`'s).
    fn commit(
        &mut self,
        bucket_a: u64,
        bucket_b: u64,
        chain_ops: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        debug_assert!(chain_ops.len() <= self.layout.chain_blocks);
        let g = self.layout.blocks_per_bucket;
        let block = self.layout.block_bytes;
        let mut requests = Vec::with_capacity(2 * g + self.layout.chain_blocks);
        for index in 0..g {
            requests.push(Request::Write {
                addr: self.layout.bucket_block_addr(bucket_a, index),
                data: self.image_a[index * block..(index + 1) * block].to_vec(),
            });
        }
        for index in 0..g {
            requests.push(Request::Write {
                addr: self.layout.bucket_block_addr(bucket_b, index),
                data: self.image_b[index * block..(index + 1) * block].to_vec(),
            });
        }
        let dummies = self.layout.chain_blocks - chain_ops.len();
        requests.extend(chain_ops);
        for _ in 0..dummies {
            requests.push(Request::Read {
                addr: self.layout.overflow_addr(self.dummy_cursor as u32),
            });
            self.dummy_cursor = (self.dummy_cursor + 1) % self.layout.overflow_blocks.max(1);
        }
        self.oram.access_batch_owned(requests)
    }

    // lint: ct-scope, no-alloc
    /// Scans every way of one loaded bucket for `probe_key` with a
    /// constant visit pattern: no early exit, full-width key compares
    /// against the zero-padded key span, and arithmetic selection of the
    /// first match — the scan's memory trace does not depend on where (or
    /// whether) the key sits.
    fn scan_bucket(&self, first: bool, probe_key: &[u8]) -> ScanResult {
        let image = if first { &self.image_a } else { &self.image_b };
        let l = &self.layout;
        let mut found = NO_WAY;
        let mut empties = 0usize;
        for way in 0..l.ways() {
            let occupied = (l.slot_tag(image, way) == SLOT_OCCUPIED) as usize;
            let len_eq = (l.slot_key_len(image, way) == probe_key.len()) as usize;
            let span = l.slot_key_span(image, way);
            let mut diff = 0u8;
            for (offset, &stored) in span.iter().enumerate() {
                let probed = probe_key.get(offset).copied().unwrap_or(0);
                diff |= stored ^ probed;
            }
            let bytes_eq = (diff == 0) as usize;
            let hit = occupied & len_eq & bytes_eq;
            let take = hit & ((found == NO_WAY) as usize);
            found = found * (1 - take) + way * take;
            empties += 1 - occupied;
        }
        ScanResult { found, empties }
    }
    // lint: end

    /// First vacant way of a loaded bucket; callers check `empties > 0`.
    fn first_empty(&self, first: bool) -> usize {
        let image = if first { &self.image_a } else { &self.image_b };
        (0..self.layout.ways())
            .find(|&way| self.layout.slot_tag(image, way) != SLOT_OCCUPIED)
            .expect("caller verified the bucket has an empty way")
    }

    /// Shared hit path of `get` and `remove`: probe, read the real chain
    /// (padded with dummies), optionally clear the slot, reassemble the
    /// value.  Stats are the caller's job.
    fn lookup(&mut self, key: &[u8], remove: bool) -> Result<Option<Vec<u8>>, FreecursiveError> {
        let (bucket_a, bucket_b) = self.candidates(key);
        self.load_buckets(bucket_a, bucket_b)?;
        let scan_a = self.scan_bucket(true, key);
        let scan_b = self.scan_bucket(false, key);
        let target = if scan_a.found != NO_WAY {
            Some((true, scan_a.found))
        } else if scan_b.found != NO_WAY {
            Some((false, scan_b.found))
        } else {
            None
        };
        let Some((in_a, way)) = target else {
            self.commit(bucket_a, bucket_b, Vec::new())?;
            return Ok(None);
        };

        let image = if in_a { &self.image_a } else { &self.image_b };
        let val_len = self.layout.slot_val_len(image, way);
        let needed = self.layout.chain_needed(val_len);
        let mut chain = Vec::with_capacity(needed);
        for index in 0..needed {
            chain.push(self.layout.slot_chain(image, way, index));
        }
        let inline_len = val_len.min(self.layout.inline_bytes);
        let mut value = Vec::with_capacity(val_len);
        value.extend_from_slice(&self.layout.slot_inline(image, way)[..inline_len]);

        if remove {
            let image = if in_a {
                &mut self.image_a
            } else {
                &mut self.image_b
            };
            self.layout.clear_slot(image, way);
        }
        let chain_ops = chain
            .iter()
            .map(|&block| Request::Read {
                addr: self.layout.overflow_addr(block),
            })
            .collect();
        let responses = self.commit(bucket_a, bucket_b, chain_ops)?;

        let first_chain = 2 * self.layout.blocks_per_bucket;
        for (index, response) in responses[first_chain..first_chain + needed]
            .iter()
            .enumerate()
        {
            let start = inline_len + index * self.layout.block_bytes;
            let take = val_len.min(start + self.layout.block_bytes) - start;
            let data = response.data.as_deref().unwrap_or(&[]);
            value.extend_from_slice(&data[..take]);
        }
        if remove {
            self.free.extend_from_slice(&chain);
            self.len -= 1;
        }
        Ok(Some(value))
    }

    /// Per-operation bookkeeping shared by every completed schedule.
    fn note_op(&mut self) {
        self.stats.ops += 1;
        self.stats.oram_requests += self.layout.accesses_per_op();
    }

    fn note_hit(&mut self, hit: bool) {
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
    }
}

impl ObliviousMap<Box<dyn Oram>> {
    /// Resumes a map persisted by [`ObliviousMap::persist`]: reads
    /// `omap.state`, resumes the backing ORAM through
    /// [`OramBuilder::resume`], and cross-checks the two.
    ///
    /// # Errors
    ///
    /// Snapshot decode/digest failures as
    /// [`FreecursiveError::Backend`]; a backing ORAM that no longer
    /// matches the recorded layout as [`ConfigError::MapGeometry`].
    pub fn resume(dir: impl AsRef<Path>) -> Result<Self, FreecursiveError> {
        let dir = dir.as_ref();
        let (kind, payload) = read_state_file(&dir.join(STATE_FILE))?;
        if kind != KIND_OMAP {
            return Err(path_oram::OramError::Snapshot {
                detail: format!("omap.state has kind {kind}, expected {KIND_OMAP}"),
            }
            .into());
        }
        let mut reader = SnapReader::new(&payload);
        let err = |detail: String| path_oram::OramError::Snapshot { detail };
        let usize_field = |v: u64, name: &str| -> Result<usize, FreecursiveError> {
            usize::try_from(v)
                .map_err(|_| err(format!("omap.state field {name} overflows usize")).into())
        };
        let key_bytes = usize_field(reader.u64()?, "key_bytes")?;
        let value_bytes = usize_field(reader.u64()?, "value_bytes")?;
        let capacity = reader.u64()?;
        let block_bytes = usize_field(reader.u64()?, "block_bytes")?;
        let num_buckets = reader.u64()?;
        let slots_per_block = usize_field(reader.u64()?, "slots_per_block")?;
        let blocks_per_bucket = usize_field(reader.u64()?, "blocks_per_bucket")?;
        let slot_stride = usize_field(reader.u64()?, "slot_stride")?;
        let inline_bytes = usize_field(reader.u64()?, "inline_bytes")?;
        let chain_blocks = usize_field(reader.u64()?, "chain_blocks")?;
        let overflow_blocks = reader.u64()?;
        let layout = MapLayout {
            key_bytes,
            value_bytes,
            capacity,
            block_bytes,
            num_buckets,
            slots_per_block,
            blocks_per_bucket,
            slot_stride,
            inline_bytes,
            chain_blocks,
            overflow_blocks,
        };
        layout.validate()?;
        let seed_bytes = reader.bytes()?;
        let hash_seed: [u8; 16] = seed_bytes
            .try_into()
            .map_err(|_| err("omap.state hash seed is not 16 bytes".into()))?;
        let len = reader.u64()?;
        let dummy_cursor = reader.u64()?;
        let free_bytes = reader.bytes()?;
        if free_bytes.len() % 4 != 0 {
            return Err(err("omap.state free list is not a whole number of u32s".into()).into());
        }
        let mut free = Vec::with_capacity(free_bytes.len() / 4);
        for chunk in free_bytes.chunks_exact(4) {
            let block = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if u64::from(block) >= overflow_blocks {
                return Err(err(
                    "omap.state free list references a block outside the overflow pool".into(),
                )
                .into());
            }
            free.push(block);
        }
        let mut stats = MapStats::default();
        for field in [
            &mut stats.ops,
            &mut stats.inserts,
            &mut stats.gets,
            &mut stats.removes,
            &mut stats.contains_ops,
            &mut stats.hits,
            &mut stats.misses,
            &mut stats.replacements,
            &mut stats.capacity_failures,
            &mut stats.oram_requests,
        ] {
            *field = reader.u64()?;
        }
        reader.finish()?;

        let oram = OramBuilder::resume(dir)?;
        if oram.block_bytes() != layout.block_bytes {
            return Err(ConfigError::MapGeometry {
                detail: "resumed ORAM block size differs from the recorded map layout",
            }
            .into());
        }
        if oram.num_blocks() < layout.total_blocks() {
            return Err(ConfigError::MapGeometry {
                detail: "resumed ORAM has fewer blocks than the recorded map layout needs",
            }
            .into());
        }
        let image_len = layout.blocks_per_bucket * layout.block_bytes;
        Ok(ObliviousMap {
            oram,
            layout,
            hash_seed,
            free,
            len,
            dummy_cursor,
            stats,
            image_a: vec![0u8; image_len],
            image_b: vec![0u8; image_len],
        })
    }
}
