//! Geometry of the oblivious map: how keys, values, buckets, and overflow
//! chains are laid out over the backing ORAM's fixed-size blocks.
//!
//! The address space of the backing ORAM is split into two regions:
//!
//! ```text
//! | bucket region: num_buckets × blocks_per_bucket | overflow region |
//! ```
//!
//! Each *bucket* is a small set-associative group of entry slots spread over
//! `blocks_per_bucket` consecutive blocks (`slots_per_block` slots each).
//! Every key hashes to exactly two candidate buckets (two-choice hashing)
//! and lives in one slot of one of them.  A slot stores the key, the value
//! length, an inline value prefix, and a fixed-size *chain table* of
//! overflow block indices for the value bytes that don't fit inline; the
//! overflow region is a shared pool those indices point into.
//!
//! Everything here is a pure function of the public configuration — block
//! size, maximum key/value sizes, capacity — so the layout itself reveals
//! nothing about the keys stored.  The derivation in [`MapLayout::derive`]
//! picks the chain length / inline split that minimises the (fixed) number
//! of ORAM accesses per operation.
//!
//! ## Slot wire format
//!
//! At byte offset `slot_offset(way)` inside a bucket image:
//!
//! ```text
//! | tag u8 | key_len u16 | val_len u32 | chain [u32; C] | key [u8; K] | inline [u8; I] |
//! ```
//!
//! `tag` is [`SLOT_EMPTY`] or [`SLOT_OCCUPIED`]; unused chain entries hold
//! [`CHAIN_NONE`]; the key and inline regions are zero-padded.  All integers
//! are little-endian.

use freecursive::{ConfigError, FreecursiveError, MapError};

/// Tag byte of a vacant slot.
pub const SLOT_EMPTY: u8 = 0;
/// Tag byte of an occupied slot.
pub const SLOT_OCCUPIED: u8 = 1;
/// Chain-table entry marking "no overflow block".
pub const CHAIN_NONE: u32 = u32::MAX;

/// Fixed per-slot metadata: tag (1) + key_len (2) + val_len (4).
const SLOT_FIXED_META: usize = 7;

/// The associativity the derivation aims for: buckets get at least this
/// many slots (spanning multiple blocks if a block holds fewer), because
/// two-choice placement *without* eviction needs multi-way buckets to reach
/// useful load factors — with 1-way buckets the first both-candidates-taken
/// collision appears at birthday-bound loads.
const TARGET_WAYS: usize = 4;

/// Bucket-count headroom over `capacity`: `slots ≥ capacity * 4 / 3`
/// (i.e. the map is sized for a ~75% slot load factor at full capacity).
const LOAD_HEADROOM_NUM: u64 = 4;
const LOAD_HEADROOM_DEN: u64 = 3;

/// The fully-derived geometry of one oblivious map.  Constructed only by
/// [`MapLayout::derive`]; every field is public for inspection but the
/// struct is validated as a whole on snapshot resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapLayout {
    /// Maximum key length in bytes (K).
    pub key_bytes: usize,
    /// Maximum value length in bytes (V).
    pub value_bytes: usize,
    /// Requested entry capacity the bucket region was sized for.
    pub capacity: u64,
    /// Block size of the backing ORAM.
    pub block_bytes: usize,
    /// Number of buckets in the table region.
    pub num_buckets: u64,
    /// Entry slots per block (S ≥ 1).
    pub slots_per_block: usize,
    /// Blocks per bucket (G ≥ 1); a bucket's ways span G consecutive blocks.
    pub blocks_per_bucket: usize,
    /// Byte stride between slots within a block (`block_bytes / S`).
    pub slot_stride: usize,
    /// Inline value prefix bytes per slot (I).
    pub inline_bytes: usize,
    /// Overflow chain table length per slot (C) — also the number of
    /// overflow accesses every operation performs (real or dummy).
    pub chain_blocks: usize,
    /// Blocks in the shared overflow pool.
    pub overflow_blocks: u64,
}

impl MapLayout {
    /// Derives the layout for the given knobs, or explains why no layout
    /// exists.  `overflow_override` replaces the default worst-case
    /// overflow pool (`capacity × chain_blocks`).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Degenerate`] for zero sizes;
    /// [`MapError::KeyTooLarge`] / [`MapError::ValueTooLarge`] when no
    /// slot format fits the block; [`ConfigError::MapGeometry`] when the
    /// overflow pool is smaller than one worst-case chain or a derived
    /// count overflows its index type.
    pub fn derive(
        key_bytes: usize,
        value_bytes: usize,
        capacity: u64,
        block_bytes: usize,
        overflow_override: Option<u64>,
    ) -> Result<MapLayout, FreecursiveError> {
        if key_bytes == 0 || value_bytes == 0 || capacity == 0 || block_bytes == 0 {
            return Err(ConfigError::Degenerate.into());
        }

        // Search the chain-length axis for the cheapest feasible slot
        // format.  For C chain blocks the inline prefix must cover at least
        // `V - C·B` bytes, so the minimal slot is fixed; packing more slots
        // per block shrinks the bucket's block span G (ways are spread over
        // `G = ceil(TARGET_WAYS / S)` blocks).  Cost per op = 4·G + C
        // accesses (read+write both candidate buckets, C chain accesses).
        let chain_max = value_bytes.div_ceil(block_bytes);
        let mut best: Option<(usize, usize, usize, usize)> = None; // (cost, c, s, g)
        for c in 0..=chain_max {
            let covered = c.saturating_mul(block_bytes);
            let inline_min = value_bytes.saturating_sub(covered);
            let slot_min = SLOT_FIXED_META + 4 * c + key_bytes + inline_min;
            if slot_min > block_bytes {
                continue;
            }
            let s = block_bytes / slot_min;
            let g = if s >= TARGET_WAYS {
                1
            } else {
                TARGET_WAYS.div_ceil(s)
            };
            let cost = 4 * g + c;
            let better = match best {
                None => true,
                Some((best_cost, best_c, ..)) => {
                    cost < best_cost || (cost == best_cost && c < best_c)
                }
            };
            if better {
                best = Some((cost, c, s, g));
            }
        }
        let Some((_, chain_blocks, slots_per_block, blocks_per_bucket)) = best else {
            // Infeasible: pin the blame on the key or the value.  A slot
            // needs at least the fixed meta + key + one chain entry; if
            // that alone exceeds the block, no value could ever fit.
            let key_budget = block_bytes.saturating_sub(SLOT_FIXED_META + 4);
            if key_bytes > key_budget {
                return Err(MapError::KeyTooLarge {
                    len: key_bytes,
                    max: key_budget,
                }
                .into());
            }
            // Otherwise the chain table for a value this large does not
            // fit next to the key: the largest supportable value uses
            // every spare slot byte as chain entries.
            let chain_budget = (block_bytes - SLOT_FIXED_META - key_bytes) / 4;
            let slack = block_bytes - SLOT_FIXED_META - key_bytes - 4 * chain_budget;
            return Err(MapError::ValueTooLarge {
                len: value_bytes,
                max: chain_budget * block_bytes + slack,
            }
            .into());
        };

        // Re-expand the inline prefix to use the slot's whole stride: the
        // minimal slot may leave slack once S slots are packed into the
        // block, and free inline bytes shorten real chains for mid-size
        // values at zero cost.
        let slot_stride = block_bytes / slots_per_block;
        let inline_bytes = slot_stride - SLOT_FIXED_META - 4 * chain_blocks - key_bytes;

        let ways = slots_per_block * blocks_per_bucket;
        let num_buckets = capacity
            .saturating_mul(LOAD_HEADROOM_NUM)
            .div_ceil(ways as u64 * LOAD_HEADROOM_DEN)
            .max(2);

        let default_overflow = capacity.saturating_mul(chain_blocks as u64);
        let overflow_blocks = match overflow_override {
            Some(_) if chain_blocks == 0 => 0,
            Some(blocks) if blocks < chain_blocks as u64 => {
                return Err(ConfigError::MapGeometry {
                    detail: "overflow pool smaller than one worst-case value chain",
                }
                .into());
            }
            Some(blocks) => blocks,
            None => default_overflow,
        };
        if overflow_blocks >= u64::from(CHAIN_NONE) {
            return Err(ConfigError::MapGeometry {
                detail: "overflow pool does not fit 32-bit chain indices",
            }
            .into());
        }

        let layout = MapLayout {
            key_bytes,
            value_bytes,
            capacity,
            block_bytes,
            num_buckets,
            slots_per_block,
            blocks_per_bucket,
            slot_stride,
            inline_bytes,
            chain_blocks,
            overflow_blocks,
        };
        layout.validate()?;
        Ok(layout)
    }

    /// Checks the structural invariants the access path relies on — run on
    /// every snapshot resume so a corrupted or hand-edited geometry fails
    /// loudly instead of indexing out of bounds.
    ///
    /// # Errors
    ///
    /// [`ConfigError::MapGeometry`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), FreecursiveError> {
        let fail = |detail: &'static str| -> Result<(), FreecursiveError> {
            Err(ConfigError::MapGeometry { detail }.into())
        };
        if self.key_bytes == 0
            || self.value_bytes == 0
            || self.capacity == 0
            || self.block_bytes == 0
        {
            return Err(ConfigError::Degenerate.into());
        }
        if self.slots_per_block == 0 || self.blocks_per_bucket == 0 {
            return fail("bucket geometry has a zero dimension");
        }
        if self.slot_stride * self.slots_per_block > self.block_bytes {
            return fail("slots overrun the block");
        }
        if self.slot_bytes() > self.slot_stride {
            return fail("slot format overruns its stride");
        }
        if self.inline_bytes + self.chain_blocks * self.block_bytes < self.value_bytes {
            return fail("inline prefix plus chain cannot hold a maximum value");
        }
        if self.num_buckets < 2 {
            return fail("two-choice hashing needs at least two buckets");
        }
        if self.chain_blocks > 0 && self.overflow_blocks < self.chain_blocks as u64 {
            return fail("overflow pool smaller than one worst-case value chain");
        }
        if self.chain_blocks == 0 && self.overflow_blocks != 0 {
            return fail("overflow pool present but no slot can reference it");
        }
        if self.overflow_blocks >= u64::from(CHAIN_NONE) {
            return fail("overflow pool does not fit 32-bit chain indices");
        }
        Ok(())
    }

    /// Occupied bytes of one slot (≤ [`MapLayout::slot_stride`]).
    pub fn slot_bytes(&self) -> usize {
        SLOT_FIXED_META + 4 * self.chain_blocks + self.key_bytes + self.inline_bytes
    }

    /// Slots per bucket (the associativity of the two-choice table).
    pub fn ways(&self) -> usize {
        self.slots_per_block * self.blocks_per_bucket
    }

    /// Total blocks the map needs from the backing ORAM.
    pub fn total_blocks(&self) -> u64 {
        self.num_buckets * self.blocks_per_bucket as u64 + self.overflow_blocks
    }

    /// First block address of the overflow region.
    pub fn overflow_base(&self) -> u64 {
        self.num_buckets * self.blocks_per_bucket as u64
    }

    /// ORAM block address of block `index` within `bucket`.
    pub fn bucket_block_addr(&self, bucket: u64, index: usize) -> u64 {
        bucket * self.blocks_per_bucket as u64 + index as u64
    }

    /// ORAM block address of overflow slot `index`.
    pub fn overflow_addr(&self, index: u32) -> u64 {
        self.overflow_base() + u64::from(index)
    }

    /// The fixed number of ORAM requests every map operation issues: read
    /// and write both candidate buckets (`2 × 2 × blocks_per_bucket`) plus
    /// [`MapLayout::chain_blocks`] overflow accesses (real or dummy).
    pub fn accesses_per_op(&self) -> u64 {
        4 * self.blocks_per_bucket as u64 + self.chain_blocks as u64
    }

    /// Overflow blocks a value of `val_len` bytes needs beyond the inline
    /// prefix (always ≤ [`MapLayout::chain_blocks`] for valid lengths).
    pub fn chain_needed(&self, val_len: usize) -> usize {
        val_len
            .saturating_sub(self.inline_bytes)
            .div_ceil(self.block_bytes)
    }

    /// Byte offset of slot `way` inside a bucket image of
    /// `blocks_per_bucket × block_bytes` bytes.
    pub fn slot_offset(&self, way: usize) -> usize {
        debug_assert!(way < self.ways());
        (way / self.slots_per_block) * self.block_bytes
            + (way % self.slots_per_block) * self.slot_stride
    }

    /// Slot tag byte ([`SLOT_EMPTY`] / [`SLOT_OCCUPIED`]).
    pub fn slot_tag(&self, image: &[u8], way: usize) -> u8 {
        image[self.slot_offset(way)]
    }

    /// Stored key length of slot `way`.
    pub fn slot_key_len(&self, image: &[u8], way: usize) -> usize {
        let o = self.slot_offset(way) + 1;
        u16::from_le_bytes([image[o], image[o + 1]]) as usize
    }

    /// Stored value length of slot `way`.
    pub fn slot_val_len(&self, image: &[u8], way: usize) -> usize {
        let o = self.slot_offset(way) + 3;
        u32::from_le_bytes([image[o], image[o + 1], image[o + 2], image[o + 3]]) as usize
    }

    /// Chain-table entry `index` of slot `way` ([`CHAIN_NONE`] when unused).
    pub fn slot_chain(&self, image: &[u8], way: usize, index: usize) -> u32 {
        debug_assert!(index < self.chain_blocks);
        let o = self.slot_offset(way) + SLOT_FIXED_META + 4 * index;
        u32::from_le_bytes([image[o], image[o + 1], image[o + 2], image[o + 3]])
    }

    /// The key bytes of slot `way` (only the stored `key_len` prefix).
    pub fn slot_key<'a>(&self, image: &'a [u8], way: usize) -> &'a [u8] {
        let o = self.slot_offset(way) + SLOT_FIXED_META + 4 * self.chain_blocks;
        &image[o..o + self.slot_key_len(image, way)]
    }

    /// The full `key_bytes`-wide key span of slot `way`, zero padding
    /// included — the fixed-width region constant-shape scans compare.
    pub fn slot_key_span<'a>(&self, image: &'a [u8], way: usize) -> &'a [u8] {
        let o = self.slot_offset(way) + SLOT_FIXED_META + 4 * self.chain_blocks;
        &image[o..o + self.key_bytes]
    }

    /// The inline value prefix of slot `way` (full `inline_bytes` span).
    pub fn slot_inline<'a>(&self, image: &'a [u8], way: usize) -> &'a [u8] {
        let o = self.slot_offset(way) + SLOT_FIXED_META + 4 * self.chain_blocks + self.key_bytes;
        &image[o..o + self.inline_bytes]
    }

    // lint: ct-scope, no-alloc
    /// Serialises an occupied slot in place: key, value length, inline
    /// prefix, and the chain table (`chain` entries then [`CHAIN_NONE`]
    /// padding).  Every byte of the slot span is written — including zero
    /// padding of the key and inline regions — so residue from a previous,
    /// longer entry can never survive an overwrite.
    pub fn write_slot(
        &self,
        image: &mut [u8],
        way: usize,
        probe_key: &[u8],
        val_len: usize,
        chain: &[u32],
        inline: &[u8],
    ) {
        debug_assert!(probe_key.len() <= self.key_bytes);
        debug_assert!(chain.len() <= self.chain_blocks);
        debug_assert!(inline.len() <= self.inline_bytes);
        let o = self.slot_offset(way);
        image[o] = SLOT_OCCUPIED;
        image[o + 1..o + 3].copy_from_slice(&(probe_key.len() as u16).to_le_bytes());
        image[o + 3..o + 7].copy_from_slice(&(val_len as u32).to_le_bytes());
        for index in 0..self.chain_blocks {
            let entry = chain.get(index).copied().unwrap_or(CHAIN_NONE);
            let at = o + SLOT_FIXED_META + 4 * index;
            image[at..at + 4].copy_from_slice(&entry.to_le_bytes());
        }
        let key_at = o + SLOT_FIXED_META + 4 * self.chain_blocks;
        image[key_at..key_at + probe_key.len()].copy_from_slice(probe_key);
        image[key_at + probe_key.len()..key_at + self.key_bytes].fill(0);
        let inline_at = key_at + self.key_bytes;
        image[inline_at..inline_at + inline.len()].copy_from_slice(inline);
        image[inline_at + inline.len()..inline_at + self.inline_bytes].fill(0);
    }
    // lint: end

    /// Zeroes the whole slot span, returning it to [`SLOT_EMPTY`].
    pub fn clear_slot(&self, image: &mut [u8], way: usize) {
        let o = self.slot_offset(way);
        image[o..o + self.slot_bytes()].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(k: usize, v: usize, cap: u64, b: usize) -> MapLayout {
        MapLayout::derive(k, v, cap, b, None).expect("layout derives")
    }

    #[test]
    fn tiny_values_need_no_chain() {
        // 7 + 16 + 4 = 27-byte slots: 4 per 128-byte block, 1-block
        // buckets — a chain entry would cost an access without shrinking
        // the bucket, so the derivation stays chain-free.
        let l = layout(16, 4, 100, 128);
        assert_eq!(l.chain_blocks, 0);
        assert_eq!(l.overflow_blocks, 0);
        assert!(l.ways() >= 4);
        assert!(l.inline_bytes >= 4);
        assert_eq!(l.accesses_per_op(), 4 * l.blocks_per_bucket as u64);
        l.validate().unwrap();
    }

    #[test]
    fn chains_can_beat_inline_storage() {
        // For a 24-byte value a chain entry (4 bytes) is cheaper slot
        // space than the inline bytes it displaces: slots shrink from 47
        // to 27 bytes, buckets from 2 blocks to 1, and the op cost from
        // 8 accesses to 5 — the derivation picks the chained layout.
        let l = layout(16, 24, 100, 128);
        assert_eq!(l.chain_blocks, 1);
        assert_eq!(l.blocks_per_bucket, 1);
        assert_eq!(l.accesses_per_op(), 5);
        l.validate().unwrap();
    }

    #[test]
    fn oversized_values_get_chains_that_cover_them() {
        let l = layout(24, 256, 1 << 10, 128);
        assert!(l.chain_blocks > 0);
        assert!(l.inline_bytes + l.chain_blocks * l.block_bytes >= 256);
        assert_eq!(l.overflow_blocks, (1 << 10) * l.chain_blocks as u64);
        assert_eq!(l.chain_needed(256), l.chain_blocks);
        assert_eq!(l.chain_needed(l.inline_bytes), 0);
        l.validate().unwrap();
    }

    #[test]
    fn derivation_sweep_upholds_invariants() {
        for k in [1usize, 8, 24, 40] {
            for v in [1usize, 32, 100, 300, 1000] {
                for b in [64usize, 128, 256, 1024] {
                    match MapLayout::derive(k, v, 500, b, None) {
                        Ok(l) => {
                            l.validate().unwrap();
                            assert!(l.slot_bytes() <= l.slot_stride, "{l:?}");
                            assert!(l.ways() >= 1);
                            assert!(
                                l.num_buckets * l.ways() as u64 >= 500 * 4 / 3,
                                "headroom {l:?}"
                            );
                        }
                        Err(FreecursiveError::Map(
                            MapError::KeyTooLarge { .. } | MapError::ValueTooLarge { .. },
                        )) => {}
                        Err(e) => panic!("unexpected derive error {e} for k={k} v={v} b={b}"),
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_layouts_blame_the_right_knob() {
        assert!(matches!(
            MapLayout::derive(60, 8, 10, 64, None),
            Err(FreecursiveError::Map(MapError::KeyTooLarge { .. }))
        ));
        // Key fits but the chain table for this value cannot.
        assert!(matches!(
            MapLayout::derive(40, 1 << 20, 10, 64, None),
            Err(FreecursiveError::Map(MapError::ValueTooLarge { .. }))
        ));
        assert!(matches!(
            MapLayout::derive(0, 8, 10, 64, None),
            Err(FreecursiveError::Config(ConfigError::Degenerate))
        ));
        assert!(matches!(
            MapLayout::derive(8, 0, 10, 64, None),
            Err(FreecursiveError::Config(ConfigError::Degenerate))
        ));
        assert!(matches!(
            MapLayout::derive(8, 8, 0, 64, None),
            Err(FreecursiveError::Config(ConfigError::Degenerate))
        ));
    }

    #[test]
    fn overflow_override_is_validated() {
        let base = layout(24, 256, 64, 128);
        assert!(base.chain_blocks >= 1);
        // Smaller-than-one-chain pools are rejected up front.
        assert!(matches!(
            MapLayout::derive(24, 256, 64, 128, Some(base.chain_blocks as u64 - 1)),
            Err(FreecursiveError::Config(ConfigError::MapGeometry { .. }))
        ));
        // A tighter-than-default pool is honoured.
        let tight = MapLayout::derive(24, 256, 64, 128, Some(base.chain_blocks as u64)).unwrap();
        assert_eq!(tight.overflow_blocks, base.chain_blocks as u64);
        // Chainless layouts ignore the override entirely.
        let inline = MapLayout::derive(8, 8, 64, 128, Some(1 << 20)).unwrap();
        assert_eq!(inline.overflow_blocks, 0);
    }

    #[test]
    fn slot_codec_round_trips() {
        let l = layout(24, 256, 64, 128);
        let mut image = vec![0u8; l.blocks_per_bucket * l.block_bytes];
        let chain = [7u32, 9];
        let key = b"hello-world";
        let inline = vec![0xAB; l.inline_bytes.min(3)];
        for way in 0..l.ways() {
            assert_eq!(l.slot_tag(&image, way), SLOT_EMPTY);
            l.write_slot(
                &mut image,
                way,
                key,
                300,
                &chain[..l.chain_blocks.min(2)],
                &inline,
            );
            assert_eq!(l.slot_tag(&image, way), SLOT_OCCUPIED);
            assert_eq!(l.slot_key(&image, way), key);
            assert_eq!(l.slot_val_len(&image, way), 300);
            assert_eq!(&l.slot_inline(&image, way)[..inline.len()], &inline[..]);
            for (i, c) in chain[..l.chain_blocks.min(2)].iter().enumerate() {
                assert_eq!(l.slot_chain(&image, way, i), *c);
            }
            for i in l.chain_blocks.min(2)..l.chain_blocks {
                assert_eq!(l.slot_chain(&image, way, i), CHAIN_NONE);
            }
            l.clear_slot(&mut image, way);
            assert_eq!(l.slot_tag(&image, way), SLOT_EMPTY);
        }
        // A shorter overwrite leaves no residue of the longer entry.
        let long_inline = vec![0xFF; l.inline_bytes];
        l.write_slot(
            &mut image,
            0,
            b"a-much-longer-key-here!!",
            10,
            &[],
            &long_inline,
        );
        l.write_slot(&mut image, 0, b"k", 1, &[], &[0x01]);
        assert_eq!(l.slot_key(&image, 0), b"k");
        let inline_span = l.slot_inline(&image, 0);
        assert_eq!(inline_span[0], 0x01);
        assert!(inline_span[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn addressing_partitions_the_space() {
        let l = layout(24, 256, 100, 128);
        assert_eq!(
            l.overflow_base(),
            l.num_buckets * l.blocks_per_bucket as u64
        );
        assert_eq!(l.total_blocks(), l.overflow_base() + l.overflow_blocks);
        // Bucket block addresses tile [0, overflow_base) without overlap.
        let last = l.bucket_block_addr(l.num_buckets - 1, l.blocks_per_bucket - 1);
        assert_eq!(last + 1, l.overflow_base());
        assert_eq!(l.overflow_addr(0), l.overflow_base());
    }
}
