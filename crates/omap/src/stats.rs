//! Operation counters for the oblivious map.
//!
//! These count *logical* map operations and their outcomes in trusted
//! client memory; the untrusted side only ever observes the fixed
//! per-operation ORAM request schedule, so none of these counters is
//! derivable from the access pattern.

/// Counters accumulated by an [`crate::ObliviousMap`] since construction
/// (or the last [`MapStats::reset`]).  All counters are monotonic `u64`s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MapStats {
    /// Total operations that completed their padded access schedule
    /// (including operations that then failed with `CapacityExhausted`).
    pub ops: u64,
    /// `insert` calls that completed their schedule.
    pub inserts: u64,
    /// `get` calls.
    pub gets: u64,
    /// `remove` calls.
    pub removes: u64,
    /// `contains` calls.
    pub contains_ops: u64,
    /// Lookups (`get`/`contains`/`remove`) that found the key.
    pub hits: u64,
    /// Lookups that did not find the key.
    pub misses: u64,
    /// Inserts that overwrote an existing entry.
    pub replacements: u64,
    /// Inserts rejected with `CapacityExhausted` (bucket pair or overflow
    /// pool full) after completing their padded schedule.
    pub capacity_failures: u64,
    /// ORAM requests issued on behalf of map operations.  Always exactly
    /// `ops × accesses_per_op()` — the access-count invariance tests pin
    /// this equality down.
    pub oram_requests: u64,
}

impl MapStats {
    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = MapStats::default();
    }
}
