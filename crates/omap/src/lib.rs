//! # Oblivious key-value store
//!
//! An `ObliviousMap` maps variable-length byte keys to variable-length
//! byte values on top of any [`freecursive::Oram`] implementation — the
//! Freecursive frontend, the recursive baseline, sharded composites, the
//! threaded service, over any storage tier.  The map hides everything the
//! ORAM itself hides, plus the things a naive map layered on an ORAM
//! would leak through its *request schedule*:
//!
//! - **Which operation ran.** Every `insert`, `get`, `remove`, and
//!   `contains` issues exactly [`MapLayout::accesses_per_op`] ORAM
//!   requests in the same read-then-write shape.
//! - **Whether it hit.** Misses pad with dummy accesses to the same count.
//! - **How big the value is.** Values longer than a slot's inline prefix
//!   span a fixed-length chain of overflow blocks; shorter chains are
//!   padded with dummy reads, so a 1-byte and a maximum-length value are
//!   indistinguishable on the wire.
//!
//! Keys hash to two candidate buckets (two-choice hashing over
//! multi-way buckets); both candidates are probed and written back on
//! every operation, so the bucket choice itself never leaks.  See
//! [`layout`] for the geometry and [`map`] for the schedule and the
//! security caveats (notably: the backing frontend must not distinguish
//! reads from writes on the wire — true of the Path ORAM backends).
//!
//! Construction goes through the workspace's one configuration path:
//!
//! ```
//! use freecursive::{OramBuilder, SchemePoint};
//! use omap::{BuildMap, MapConfig};
//!
//! # fn main() -> Result<(), freecursive::FreecursiveError> {
//! let mut map = OramBuilder::for_scheme(SchemePoint::PicX32)
//!     .block_bytes(128)
//!     .build_map(&MapConfig::new(24, 256, 1 << 8))?;
//!
//! assert_eq!(map.insert(b"key", b"value")?, None);
//! assert_eq!(map.get(b"key")?.as_deref(), Some(&b"value"[..]));
//! assert!(map.contains(b"key")?);
//! assert_eq!(map.remove(b"key")?.as_deref(), Some(&b"value"[..]));
//! assert!(map.is_empty());
//!
//! // The schedule is fixed: 4 ops × accesses_per_op requests, exactly.
//! assert_eq!(
//!     map.stats().oram_requests,
//!     4 * map.layout().accesses_per_op(),
//! );
//! # Ok(())
//! # }
//! ```
//!
//! Maps persist and resume with the same barrier semantics as the ORAMs
//! beneath them: [`ObliviousMap::persist`] snapshots the backing ORAM and
//! the map's trusted state side by side, [`ObliviousMap::resume`] rebuilds
//! the pair and cross-checks them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod layout;
pub mod map;
pub mod stats;

pub use builder::{BuildMap, MapConfig};
pub use layout::MapLayout;
pub use map::ObliviousMap;
pub use stats::MapStats;

// The map is generic over `O: Oram` and `Oram: Send`, so maps are Send
// whenever their backing instance is; pin the common instantiations down.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ObliviousMap<Box<dyn freecursive::Oram>>>();
    assert_send::<ObliviousMap<freecursive::OramClient>>();
};
