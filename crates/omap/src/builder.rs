//! Construction of oblivious maps through the workspace's single
//! configuration path, [`OramBuilder`].
//!
//! [`MapConfig`] carries the map-level knobs (key/value sizes, capacity,
//! optional overflow pool override); the [`BuildMap`] extension trait adds
//! `build_map` / `build_map_service` to `OramBuilder` so a map composes
//! with every scheme point, storage kind, durability mode, and shard
//! count the builder already knows.  All parameter validation happens
//! up front, inside the build call — a configuration that cannot work
//! fails with a [`freecursive::ConfigError`] or
//! [`freecursive::MapError`] before the first map operation, never at it.

use freecursive::{FreecursiveError, Oram, OramBuilder, OramClient, OramService};
use oram_crypto::Sha3_224;

use crate::layout::MapLayout;
use crate::map::ObliviousMap;

/// Map-level knobs, independent of the backing ORAM's configuration.
///
/// ```
/// use freecursive::{OramBuilder, SchemePoint};
/// use omap::{BuildMap, MapConfig};
///
/// # fn main() -> Result<(), freecursive::FreecursiveError> {
/// let mut map = OramBuilder::for_scheme(SchemePoint::PicX32)
///     .block_bytes(128)
///     .build_map(&MapConfig::new(24, 256, 1 << 8))?;
/// map.insert(b"alpha", b"first value")?;
/// assert_eq!(map.get(b"alpha")?.as_deref(), Some(&b"first value"[..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapConfig {
    /// Maximum key length in bytes.
    pub key_bytes: usize,
    /// Maximum value length in bytes.
    pub value_bytes: usize,
    /// Entry capacity the table is sized for.
    pub capacity: u64,
    /// Overrides the default worst-case overflow pool
    /// (`capacity × chain_blocks` blocks).  Smaller pools trade memory
    /// for earlier `CapacityExhausted` errors on chain-heavy workloads.
    pub overflow_blocks: Option<u64>,
}

impl MapConfig {
    /// A config with the default (worst-case) overflow pool.
    pub fn new(key_bytes: usize, value_bytes: usize, capacity: u64) -> Self {
        MapConfig {
            key_bytes,
            value_bytes,
            capacity,
            overflow_blocks: None,
        }
    }

    /// Sets the overflow pool size override.
    #[must_use]
    pub fn overflow_blocks(mut self, blocks: u64) -> Self {
        self.overflow_blocks = Some(blocks);
        self
    }

    /// Derives the full layout these knobs produce over `block_bytes`
    /// blocks — the validation `build_map` runs, callable standalone for
    /// capacity planning.
    ///
    /// # Errors
    ///
    /// As for [`MapLayout::derive`].
    pub fn layout_for(&self, block_bytes: usize) -> Result<MapLayout, FreecursiveError> {
        MapLayout::derive(
            self.key_bytes,
            self.value_bytes,
            self.capacity,
            block_bytes,
            self.overflow_blocks,
        )
    }
}

/// Hash seed for bucket choice, derived from the builder's ORAM seed so a
/// resumed or re-built deployment maps keys to the same buckets.
fn derive_hash_seed(oram_seed: u64) -> [u8; 16] {
    let mut hasher = Sha3_224::new();
    hasher.update(b"freecursive-omap-bucket-seed");
    hasher.update(&oram_seed.to_le_bytes());
    let digest = hasher.finalize();
    digest[..16].try_into().expect("16 of 28 digest bytes")
}

/// Extension trait adding oblivious-map construction to [`OramBuilder`].
pub trait BuildMap {
    /// Builds an [`ObliviousMap`] over a freshly built ORAM: derives the
    /// layout from `config` and this builder's block size, overrides the
    /// builder's `num_blocks` with the layout's total, and routes through
    /// [`OramBuilder::build`] — so scheme point, storage kind,
    /// durability, and `shards(n)` all apply unchanged.
    ///
    /// # Errors
    ///
    /// Layout derivation errors (see [`MapLayout::derive`]) before any
    /// construction work; otherwise as for [`OramBuilder::build`].
    fn build_map(&self, config: &MapConfig) -> Result<ObliviousMap, FreecursiveError>;

    /// Like [`BuildMap::build_map`] but over an [`OramService`]: the
    /// shards run on worker threads and the returned map drives them
    /// through a client handle.  Shut the service down (after dropping
    /// or consuming the map) to recover the shards.
    ///
    /// # Errors
    ///
    /// As for [`BuildMap::build_map`] and [`OramBuilder::build_service`].
    fn build_map_service(
        &self,
        config: &MapConfig,
    ) -> Result<(OramService, ObliviousMap<OramClient>), FreecursiveError>;
}

impl BuildMap for OramBuilder {
    fn build_map(&self, config: &MapConfig) -> Result<ObliviousMap, FreecursiveError> {
        let layout = config.layout_for(self.block_bytes_in_effect())?;
        let oram: Box<dyn Oram> = self.clone().num_blocks(layout.total_blocks()).build()?;
        ObliviousMap::over(oram, layout, derive_hash_seed(self.seed_in_effect()))
    }

    fn build_map_service(
        &self,
        config: &MapConfig,
    ) -> Result<(OramService, ObliviousMap<OramClient>), FreecursiveError> {
        let layout = config.layout_for(self.block_bytes_in_effect())?;
        let service = self
            .clone()
            .num_blocks(layout.total_blocks())
            .build_service()?;
        let map = ObliviousMap::over(
            service.client(),
            layout,
            derive_hash_seed(self.seed_in_effect()),
        )?;
        Ok((service, map))
    }
}
