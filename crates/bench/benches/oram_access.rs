//! Criterion benchmarks of the functional ORAM controllers: full access
//! latency (simulator wall-clock) for the baseline Recursive ORAM and every
//! Freecursive design point, plus the raw Path ORAM backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use freecursive::{Oram, OramBuilder, SchemePoint};
use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};

const N: u64 = 1 << 12;
const BLOCK: usize = 64;

fn bench_backend_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/path_access");
    for mode in [EncryptionMode::None, EncryptionMode::GlobalSeed] {
        let params = OramParams::new(N, BLOCK, 4);
        let mut backend = PathOramBackend::new(params, mode, [1u8; 16], 0).unwrap();
        let leaves = backend.params().num_leaves();
        group.throughput(Throughput::Bytes(backend.params().access_bytes()));
        // The bench plays the frontend's role, so it must track the position
        // map: fetch each block at the leaf it was last remapped to.
        let mut posmap: Vec<u64> = (0..N).map(|a| (a * 7) % leaves).collect();
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    let addr = i % N;
                    let leaf = posmap[addr as usize];
                    let new_leaf = (i * 13) % leaves;
                    posmap[addr as usize] = new_leaf;
                    backend
                        .access(AccessOp::Write, addr, leaf, new_leaf, Some(&[0u8; BLOCK]))
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_frontend_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend/sequential_read");
    group.sample_size(20);

    // The baseline and every Freecursive design point, all through the
    // builder's object-safe entry point.
    for scheme in SchemePoint::freecursive_points() {
        let mut oram = OramBuilder::for_scheme(scheme)
            .num_blocks(N)
            .block_bytes(BLOCK)
            .onchip_entries(64)
            .build()
            .unwrap();
        let mut addr = 0u64;
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                addr = (addr + 1) % N;
                oram.read(addr).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_random_vs_sequential_plb(c: &mut Criterion) {
    // The PLB's benefit shows up as fewer backend accesses per read; compare
    // simulator throughput for the two extremes.
    let mut group = c.benchmark_group("frontend/pc_x32_access_pattern");
    group.sample_size(20);
    for (name, stride) in [("sequential", 1u64), ("strided_x64", 64)] {
        let mut oram = OramBuilder::for_scheme(SchemePoint::PcX32)
            .num_blocks(N)
            .block_bytes(BLOCK)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        let mut addr = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                addr = (addr + stride) % N;
                oram.read(addr).unwrap()
            });
        });
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_backend_access, bench_frontend_designs, bench_random_vs_sequential_plb
}
criterion_main!(benches);
