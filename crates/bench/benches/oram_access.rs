//! Criterion benchmarks of the functional ORAM controllers: full access
//! latency (simulator wall-clock) for the baseline Recursive ORAM and every
//! Freecursive design point, plus the raw Path ORAM backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use freecursive::{
    FreecursiveConfig, FreecursiveOram, Oram, RecursiveOram, RecursiveOramConfig,
};
use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};

const N: u64 = 1 << 12;
const BLOCK: usize = 64;

fn bench_backend_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend/path_access");
    for mode in [EncryptionMode::None, EncryptionMode::GlobalSeed] {
        let params = OramParams::new(N, BLOCK, 4);
        let mut backend = PathOramBackend::new(params, mode, [1u8; 16], 0).unwrap();
        let leaves = backend.params().num_leaves();
        group.throughput(Throughput::Bytes(backend.params().access_bytes()));
        // The bench plays the frontend's role, so it must track the position
        // map: fetch each block at the leaf it was last remapped to.
        let mut posmap: Vec<u64> = (0..N).map(|a| (a * 7) % leaves).collect();
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    let addr = i % N;
                    let leaf = posmap[addr as usize];
                    let new_leaf = (i * 13) % leaves;
                    posmap[addr as usize] = new_leaf;
                    backend
                        .access(AccessOp::Write, addr, leaf, new_leaf, Some(&[0u8; BLOCK]))
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_frontend_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend/sequential_read");
    group.sample_size(20);

    // Baseline Recursive ORAM (R_X8).
    {
        let mut oram =
            RecursiveOram::new(RecursiveOramConfig::r_x8(N, BLOCK).with_onchip_entries(64))
                .unwrap();
        let mut addr = 0u64;
        group.bench_function("R_X8", |b| {
            b.iter(|| {
                addr = (addr + 1) % N;
                oram.read(addr).unwrap()
            });
        });
    }

    // Freecursive design points.
    let points: Vec<(&str, FreecursiveConfig)> = vec![
        ("P_X16", FreecursiveConfig::p_x16(N, BLOCK)),
        ("PC_X32", FreecursiveConfig::pc_x32(N, BLOCK)),
        ("PI_X8", FreecursiveConfig::pi_x8(N, BLOCK)),
        ("PIC_X32", FreecursiveConfig::pic_x32(N, BLOCK)),
    ];
    for (name, cfg) in points {
        let mut oram = FreecursiveOram::new(cfg.with_onchip_entries(64)).unwrap();
        let mut addr = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                addr = (addr + 1) % N;
                oram.read(addr).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_random_vs_sequential_plb(c: &mut Criterion) {
    // The PLB's benefit shows up as fewer backend accesses per read; compare
    // simulator throughput for the two extremes.
    let mut group = c.benchmark_group("frontend/pc_x32_access_pattern");
    group.sample_size(20);
    for (name, stride) in [("sequential", 1u64), ("strided_x64", 64)] {
        let mut oram =
            FreecursiveOram::new(FreecursiveConfig::pc_x32(N, BLOCK).with_onchip_entries(64))
                .unwrap();
        let mut addr = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                addr = (addr + stride) % N;
                oram.read(addr).unwrap()
            });
        });
    }
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_backend_access, bench_frontend_designs, bench_random_vs_sequential_plb
}
criterion_main!(benches);
