//! Criterion micro-benchmarks of the cryptographic primitives the ORAM
//! controller is built on (AES-128 for the PRF and bucket encryption,
//! SHA3-224 for PMMAC).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use oram_crypto::ctr::{CtrKeystream, KeystreamSpan};
use oram_crypto::mac::MacKey;
use oram_crypto::prf::{AesPrf, Prf};
use oram_crypto::sha3::Sha3_224;
use oram_crypto::{Aes128, PARALLEL_BLOCKS};

fn bench_aes_block(c: &mut Criterion) {
    let aes = Aes128::new([7u8; 16]);
    let engine = aes.engine().label();
    let mut group = c.benchmark_group(format!("crypto/aes128[{engine}]"));
    group.throughput(Throughput::Bytes(16));
    group.bench_function("encrypt_block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| {
            block = aes.encrypt_block(block);
            block
        });
    });
    // One full engine batch: 8 blocks per call.
    group.throughput(Throughput::Bytes((PARALLEL_BLOCKS * 16) as u64));
    group.bench_function("encrypt_blocks_x8", |b| {
        let mut blocks = [0u8; PARALLEL_BLOCKS * 16];
        b.iter(|| {
            aes.encrypt_blocks(&mut blocks);
            blocks[0]
        });
    });
    group.finish();
}

fn bench_ctr_bucket(c: &mut Criterion) {
    // One 320-byte bucket (Z = 4, 64-byte blocks) — the unit of bucket
    // encryption in the backend.
    let ks = CtrKeystream::new([3u8; 16]);
    let engine = ks.engine().label();
    let mut group = c.benchmark_group(format!("crypto/ctr[{engine}]"));
    group.throughput(Throughput::Bytes(320));
    group.bench_function("seal_bucket_320B", |b| {
        b.iter_batched(
            || vec![0xA5u8; 320],
            |mut bucket| {
                ks.apply(42, &mut bucket);
                bucket
            },
            BatchSize::SmallInput,
        );
    });
    // A whole path sealed in one batched pass: 19 buckets of 312 sealed
    // bytes each — the 1M-block / 64-byte design point's hot shape.
    let levels = 19usize;
    let sealed = 312usize;
    let spans: Vec<KeystreamSpan> = (0..levels)
        .map(|i| KeystreamSpan {
            seed: 1000 + i as u128,
            start: i * 320 + 8,
            len: sealed,
        })
        .collect();
    group.throughput(Throughput::Bytes((levels * sealed) as u64));
    group.bench_function("seal_path_19x312B_batched", |b| {
        b.iter_batched(
            || vec![0xA5u8; levels * 320],
            |mut path| {
                ks.apply_batch(&spans, &mut path);
                path
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_prf_leaf(c: &mut Criterion) {
    let prf = AesPrf::new([1u8; 16]);
    c.bench_function("crypto/prf_leaf_for", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            prf.leaf_for(12345, counter, 25)
        });
    });
}

fn bench_sha3_and_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha3");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("sha3_224_64B", |b| {
        let data = [0x5Au8; 64];
        b.iter(|| Sha3_224::digest(&data));
    });
    let key = MacKey::new([9u8; 16]);
    group.bench_function("pmmac_mac_64B_block", |b| {
        let data = [0x5Au8; 64];
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            key.compute(counter, 77, &data)
        });
    });
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_aes_block, bench_ctr_bucket, bench_prf_leaf, bench_sha3_and_mac
}
criterion_main!(benches);
