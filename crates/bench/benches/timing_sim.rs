//! Criterion benchmarks of the scalable timing simulator: DRAM path latency
//! calibration, timing-frontend accesses, and a full (small) benchmark run.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::{DramConfig, DramSim};
use oram_sim::runner::{run_benchmark, SimulationConfig};
use oram_sim::scheme::SchemePoint;
use oram_sim::timing::{TimingOram, TimingOramConfig};
use trace_gen::SpecBenchmark;

fn bench_dram_path(c: &mut Criterion) {
    let cfg = DramConfig::default();
    c.bench_function("sim/dram_16kb_path", |b| {
        b.iter(|| {
            let mut dram = DramSim::new(cfg.clone());
            dram.access(0, 16_000, false, 0)
        });
    });
}

fn bench_timing_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/timing_frontend");
    for scheme in [SchemePoint::RX8, SchemePoint::PcX32, SchemePoint::PicX32] {
        let mut oram = TimingOram::new(TimingOramConfig {
            data_capacity_bytes: 1 << 30,
            latency_samples: 4,
            ..TimingOramConfig::paper_default(scheme)
        });
        let mut addr = 0u64;
        group.bench_function(scheme.label(), |b| {
            b.iter(|| {
                addr = addr.wrapping_add(0x9e3779b9) % (1 << 24);
                oram.access(addr)
            });
        });
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/full_benchmark_run");
    group.sample_size(10);
    let cfg = SimulationConfig {
        memory_accesses: 10_000,
        latency_samples: 4,
        ..SimulationConfig::quick_test()
    };
    group.bench_function("sjeng_pc_x32_10k_accesses", |b| {
        b.iter(|| run_benchmark(SpecBenchmark::Sjeng, SchemePoint::PcX32, &cfg));
    });
    group.finish();
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_dram_path, bench_timing_frontend, bench_full_run
}
criterion_main!(benches);
