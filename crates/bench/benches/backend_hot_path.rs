//! Hot-path micro-benchmark: the optimised `PathOramBackend` against the
//! frozen pre-arena baseline (`bench::baseline::LegacyPathOramBackend`),
//! driven by the same seeded random read/write workload.
//!
//! Run with `cargo bench -p bench --bench backend_hot_path`.  Pass
//! `-- --smoke` (the CI mode) to shrink the geometry and iteration counts so
//! the whole run finishes in seconds while still exercising every code path.

use bench::baseline::LegacyPathOramBackend;
use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One benchmark configuration: a tree geometry plus an encryption mode.
struct Config {
    label: &'static str,
    num_blocks: u64,
    block_bytes: usize,
    mode: EncryptionMode,
    warmup: u64,
    measure: u64,
}

/// Drives `accesses` mixed read/write operations through a backend, playing
/// the frontend's role (tracking the position map).  Returns elapsed time.
fn run_workload<B: OramBackend>(
    backend: &mut B,
    accesses: u64,
    posmap: &mut [u64],
    rng: &mut StdRng,
    out: &mut Vec<u8>,
    write_data: &[u8],
) -> Duration {
    let n = posmap.len() as u64;
    let leaves = backend.params().num_leaves();
    let start = Instant::now();
    for i in 0..accesses {
        let addr = rng.gen_range(0..n);
        let new_leaf = rng.gen_range(0..leaves);
        let old_leaf = posmap[addr as usize];
        posmap[addr as usize] = new_leaf;
        let op = if i % 2 == 0 {
            AccessOp::Read
        } else {
            AccessOp::Write
        };
        let data = (op == AccessOp::Write).then_some(write_data);
        backend
            .access_into(op, addr, old_leaf, new_leaf, data, out)
            .expect("benchmark access");
    }
    start.elapsed()
}

fn bench_config(config: &Config) {
    let params = OramParams::new(config.num_blocks, config.block_bytes, 4);
    let write_data = vec![0xB5u8; config.block_bytes];

    let mut results: Vec<(&str, Duration)> = Vec::new();
    // Same seeds for both backends: identical request streams.
    for which in ["baseline", "optimized"] {
        let mut rng = StdRng::seed_from_u64(0xBEAC4);
        let mut posmap: Vec<u64> = {
            let leaves = params.num_leaves();
            (0..config.num_blocks)
                .map(|_| rng.gen_range(0..leaves))
                .collect()
        };
        let mut out = Vec::new();
        let elapsed = if which == "baseline" {
            let mut backend = LegacyPathOramBackend::new(params, config.mode, [1u8; 16]);
            run_workload(
                &mut backend,
                config.warmup,
                &mut posmap,
                &mut rng,
                &mut out,
                &write_data,
            );
            run_workload(
                &mut backend,
                config.measure,
                &mut posmap,
                &mut rng,
                &mut out,
                &write_data,
            )
        } else {
            let mut backend = PathOramBackend::new(params, config.mode, [1u8; 16], 0).unwrap();
            run_workload(
                &mut backend,
                config.warmup,
                &mut posmap,
                &mut rng,
                &mut out,
                &write_data,
            );
            run_workload(
                &mut backend,
                config.measure,
                &mut posmap,
                &mut rng,
                &mut out,
                &write_data,
            )
        };
        let per_access = elapsed / config.measure as u32;
        let per_sec = config.measure as f64 / elapsed.as_secs_f64();
        println!(
            "bench: backend_hot_path/{}/{which:<9} {per_access:>10.2?}/access  {per_sec:>12.0} acc/s",
            config.label
        );
        results.push((which, elapsed));
    }
    let baseline = results[0].1.as_secs_f64();
    let optimized = results[1].1.as_secs_f64();
    println!(
        "bench: backend_hot_path/{}/speedup    {:.2}x",
        config.label,
        baseline / optimized
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `cargo bench` passes `--bench`; a test runner passes `--test`.  Both
    // are harness flags, not ours — ignore everything except --smoke.
    let (warmup, measure) = if smoke { (500, 2_000) } else { (5_000, 20_000) };
    let n_large = if smoke { 1 << 14 } else { 1 << 20 };
    let configs = [
        Config {
            label: "64B/plaintext",
            num_blocks: n_large,
            block_bytes: 64,
            mode: EncryptionMode::None,
            warmup,
            measure,
        },
        Config {
            label: "64B/aes_global_seed",
            num_blocks: n_large,
            block_bytes: 64,
            mode: EncryptionMode::GlobalSeed,
            warmup,
            measure: measure / 4,
        },
        Config {
            label: "4KB/plaintext",
            num_blocks: if smoke { 1 << 8 } else { 1 << 12 },
            block_bytes: 4096,
            mode: EncryptionMode::None,
            warmup: warmup / 10,
            measure: measure / 10,
        },
    ];
    for config in &configs {
        bench_config(config);
    }
}
