//! Criterion benchmarks of the PosMap data structures: PLB lookups,
//! compressed PosMap block operations, and recursion addressing.

use criterion::{criterion_group, criterion_main, Criterion};
use oram_crypto::prf::{AesPrf, Prf};
use posmap::addressing::RecursionAddressing;
use posmap::{CompressedPosMapBlock, Plb, PlbEntry, UncompressedPosMapBlock};

fn bench_plb(c: &mut Criterion) {
    let mut group = c.benchmark_group("posmap/plb");
    // A 64 KB direct-mapped PLB of 64-byte blocks (the paper's default).
    let mut plb: Plb<[u8; 64]> = Plb::new(1024, 1);
    for i in 0..1024u64 {
        plb.insert(PlbEntry {
            unified_addr: i,
            leaf: i,
            payload: [0u8; 64],
        });
    }
    let mut i = 0u64;
    group.bench_function("lookup_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 1024;
            plb.lookup(i).is_some()
        });
    });
    group.bench_function("lookup_miss_and_refill", |b| {
        b.iter(|| {
            i += 1;
            let addr = 10_000 + i;
            if plb.lookup(addr).is_none() {
                plb.insert(PlbEntry {
                    unified_addr: addr,
                    leaf: addr,
                    payload: [0u8; 64],
                });
            }
        });
    });
    group.finish();
}

fn bench_posmap_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("posmap/blocks");
    let prf = AesPrf::new([2u8; 16]);

    let mut compressed = CompressedPosMapBlock::with_defaults(32);
    let mut j = 0usize;
    group.bench_function("compressed_increment_and_leaf", |b| {
        b.iter(|| {
            j = (j + 1) % 32;
            compressed.increment(j);
            prf.leaf_for(1000 + j as u64, compressed.counter_of(j), 25)
        });
    });

    group.bench_function("compressed_serialise_64B", |b| {
        b.iter(|| compressed.to_bytes(64));
    });

    let mut uncompressed = UncompressedPosMapBlock::new(16);
    group.bench_function("uncompressed_update_and_serialise", |b| {
        let mut leaf = 0u64;
        b.iter(|| {
            leaf += 1;
            uncompressed.set_leaf((leaf % 16) as usize, leaf % (1 << 25));
            uncompressed.to_bytes(64)
        });
    });
    group.finish();
}

fn bench_addressing(c: &mut Criterion) {
    let rec = RecursionAddressing::new(1 << 26, 32, 1 << 10);
    let mut a = 0u64;
    c.bench_function("posmap/recursion_walk_addresses", |b| {
        b.iter(|| {
            a = (a + 12345) % (1 << 26);
            let mut acc = 0u64;
            for level in 0..rec.num_levels() {
                acc ^= rec.unified_addr(level, a);
            }
            acc
        });
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_plb, bench_posmap_blocks, bench_addressing
}
criterion_main!(benches);
