//! Produces `BENCH_shards.json`: throughput of the sharded `OramService`
//! at 1/2/4/8 shards on the 1M-block / 64-byte encrypted design point
//! (PIC_X32 frontend, AES global-seed buckets), driven by one pipelined
//! client per run.
//!
//! Scaling context is recorded, not assumed: the JSON carries
//! `available_parallelism` — thread-per-shard scaling is bounded by the
//! cores the machine actually has, so a 4-shard run on a 1-core container
//! measures sharding *overhead* (plus the shallower per-shard trees), not
//! parallel speedup.  Gate comparisons are only meaningful against a
//! baseline recorded on the same runner class, exactly as for
//! `BENCH_backend.json`.
//!
//! Usage: `cargo run --release -p bench --bin shard_scaling`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — the CI profile: the full 1M-block global capacity with
//!   short windows, shard counts 1 and 4 only.
//! * `--gate <baseline.json>` — compare the fresh 4-shard accesses/sec
//!   against the same number in `baseline.json`; exit non-zero on a
//!   regression of more than [`GATE_TOLERANCE`].
//! * `--out <path>` — redirect the JSON (default `BENCH_shards.json`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use freecursive::{Oram, OramBuilder, OramClient, Request, SchemePoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch size per submission and how many batches one client keeps in
/// flight: enough to keep every worker busy without hiding per-batch
/// latency entirely.
const BATCH: usize = 256;
const DEPTH: usize = 4;

/// Allowed fractional regression of 4-shard accesses/sec before the
/// `--gate` check fails (20%, absorbing run-to-run noise on shared
/// runners).
const GATE_TOLERANCE: f64 = 0.20;

struct Measurement {
    accesses: u64,
    accesses_per_sec: f64,
    bytes_per_access: f64,
    buckets_encrypted_per_access: f64,
    max_stash_occupancy: usize,
}

impl Measurement {
    fn json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"accesses\": {},\n{indent}  \"accesses_per_sec\": {:.1},\n\
             {indent}  \"ns_per_access\": {:.1},\n{indent}  \"bytes_moved_per_access\": {:.1},\n\
             {indent}  \"buckets_encrypted_per_access\": {:.2},\n\
             {indent}  \"max_stash_occupancy\": {}\n{indent}}}",
            self.accesses,
            self.accesses_per_sec,
            1e9 / self.accesses_per_sec,
            self.bytes_per_access,
            self.buckets_encrypted_per_access,
            self.max_stash_occupancy,
        );
        s
    }
}

/// One seeded mixed batch over the global address space.
fn make_batch(rng: &mut StdRng, n: u64, block_bytes: usize) -> Vec<Request> {
    (0..BATCH)
        .map(|i| {
            let addr = rng.gen_range(0..n);
            if i % 2 == 0 {
                Request::Read { addr }
            } else {
                Request::Write {
                    addr,
                    data: vec![0xB5u8; block_bytes],
                }
            }
        })
        .collect()
}

/// Runs the pipelined mixed workload through `client` for `windows`
/// measurement windows of at least `min_accesses` accesses and `min_secs`
/// seconds (bounded by `max_accesses`).  Rate is the best window; the
/// byte/crypto counters are normalised over the whole measured run.
fn measure_service(
    client: &mut OramClient,
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
    windows: u32,
) -> Measurement {
    let n = client.num_blocks();
    let block_bytes = client.block_bytes();
    let mut rng = StdRng::seed_from_u64(0x5AA2D);

    let run = |client: &mut OramClient, rng: &mut StdRng, target: u64| -> u64 {
        // Keep DEPTH batches in flight: the submit/wait pipeline is what a
        // throughput-oriented deployment does, and it keeps every shard
        // worker fed.
        let mut pending = VecDeque::with_capacity(DEPTH);
        let mut issued = 0u64;
        let mut done = 0u64;
        while done < target {
            while pending.len() < DEPTH && issued < target {
                let batch = make_batch(rng, n, block_bytes);
                issued += batch.len() as u64;
                pending.push_back(client.submit(batch).expect("submit"));
            }
            let batch = pending.pop_front().expect("pipeline is non-empty");
            done += batch.wait().expect("benchmark batch").len() as u64;
        }
        done
    };

    run(client, &mut rng, warmup);
    client.reset_stats();

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            done += run(client, &mut rng, (BATCH * DEPTH) as u64);
            let secs = start.elapsed().as_secs_f64();
            if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    let stats = client.fetch_stats().expect("service stats");
    Measurement {
        accesses: total,
        accesses_per_sec: best_rate,
        bytes_per_access: stats.total_bytes_moved() as f64 / total as f64,
        buckets_encrypted_per_access: stats.backend.buckets_encrypted as f64 / total as f64,
        max_stash_occupancy: stats.backend.max_stash_occupancy,
    }
}

/// Extracts `"accesses_per_sec"` of the `"shards": 4` entry from a
/// `BENCH_shards.json` produced by this binary.
fn parse_4shard_rate(json: &str) -> Option<f64> {
    let entry = json.find("\"shards\": 4")?;
    let key = "\"accesses_per_sec\": ";
    let rate = entry + json[entry..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_shards.json", |s| s.as_str());

    let num_blocks: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let block_bytes = 64usize;
    let shard_counts: &[u64] = if smoke || quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8]
    };
    // The smoke warmup matches the full profile's: at 1M blocks the PLB /
    // PosMap working set takes ~16k accesses to reach steady state, and a
    // colder run under-reports against the checked-in full baseline.
    // Scheduler noise hits a thread-per-shard service harder than the
    // single-threaded backend bench, so smoke takes the best of more,
    // shorter windows.
    let (warmup, min_accesses, min_secs, max_accesses, windows) = if smoke {
        (16_384, 16_384, 1.0, 300_000, 5)
    } else if quick {
        (2_048, 4_096, 0.2, 50_000, 2)
    } else {
        (16_384, 32_768, 1.5, 2_000_000, 3)
    };

    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
    eprintln!("available parallelism: {cores} core(s)");
    if cores < 4 {
        eprintln!(
            "note: fewer cores than the largest shard count — rates measure sharding \
             overhead and shallower per-shard trees, not parallel speedup"
        );
    }

    let mut entries = String::new();
    let mut one_shard_rate = 0f64;
    let mut four_shard_rate = 0f64;
    for (i, &shards) in shard_counts.iter().enumerate() {
        eprintln!("measuring {shards}-shard service ...");
        let service = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(num_blocks)
            .block_bytes(block_bytes)
            .shards(shards)
            .build_service()
            .expect("service builds");
        let mut client = service.client();
        let m = measure_service(
            &mut client,
            warmup,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
        );
        drop(client);
        service.shutdown().expect("clean shutdown");
        if shards == 1 {
            one_shard_rate = m.accesses_per_sec;
        }
        if shards == 4 {
            four_shard_rate = m.accesses_per_sec;
        }
        let speedup = if one_shard_rate > 0.0 {
            m.accesses_per_sec / one_shard_rate
        } else {
            1.0
        };
        eprintln!(
            "  {shards} shard(s): {:>10.0} acc/s   ({speedup:.2}x vs 1 shard)",
            m.accesses_per_sec
        );
        if i > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\n      \"shards\": {shards},\n      \"speedup_vs_1shard\": {speedup:.2},\n      \
             \"result\": {}\n    }}",
            m.json("      "),
        );
    }

    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"shard_scaling\",\n  \"profile\": \"{profile}\",\n  \
         \"available_parallelism\": {cores},\n  \"design_point\": {{\n    \
         \"scheme\": \"PIC_X32\",\n    \"encryption\": \"aes_global_seed\",\n    \
         \"num_blocks_global\": {num_blocks},\n    \"block_bytes\": {block_bytes},\n    \
         \"batch\": {BATCH},\n    \"pipeline_depth\": {DEPTH}\n  }},\n  \
         \"shard_scaling\": [\n{entries}\n  ]\n}}\n"
    );
    std::fs::write(out_path, &json).expect("write BENCH_shards.json");
    eprintln!("wrote {out_path}");

    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let baseline_rate = parse_4shard_rate(&baseline)
            .unwrap_or_else(|| panic!("gate baseline {path} has no 4-shard rate"));
        let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "perf gate: 4-shard {four_shard_rate:.0} acc/s vs baseline {baseline_rate:.0} acc/s \
             (floor {floor:.0})"
        );
        if four_shard_rate < floor {
            eprintln!(
                "perf gate FAILED: 4-shard throughput regressed more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
