//! Regenerates Table 3: the post-synthesis area breakdown and 7.2.3 alternatives.
fn main() {
    println!("{}", oram_sim::experiments::table3::run().render());
}
