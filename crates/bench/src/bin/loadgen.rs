//! Produces `BENCH_service.json`: latency and throughput of the TCP
//! service front end (`oram-net`) under concurrent client load.
//!
//! Three phases against one server:
//!
//! 1. **Single-connection peak** — one pipelined connection, closed loop
//!    with a fixed in-flight window; best-of-windows requests/sec.  This
//!    is the `--gate`d number: it is the least scheduler-sensitive on a
//!    small CI runner.
//! 2. **Open-loop latency** — requests arrive on a fixed schedule at
//!    ~60% of the measured peak, whether or not earlier ones finished
//!    (open loop, so queueing delay is *included*); p50/p95/p99 from the
//!    scheduled arrival to the response.
//! 3. **Multi-connection throughput** — several concurrent pipelined
//!    connections.  Recorded but never gated: on a 1-core runner this
//!    measures timeslicing, not service capacity.
//!
//! By default the server runs in-process on an ephemeral port (PIC_X32,
//! the complete Freecursive design point, 2 shards); `--addr` points the
//! load at an external `oram_server` instead.
//!
//! Usage: `cargo run --release -p bench --bin loadgen`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — the CI profile: full geometry, short windows.
//! * `--gate <baseline.json>` — compare the fresh single-connection
//!   requests/sec against `baseline.json`; exit non-zero on a regression
//!   of more than [`GATE_TOLERANCE`].
//! * `--out <path>` — redirect the JSON (default `BENCH_service.json`).
//! * `--addr <host:port>` — drive an external server (skips the
//!   in-process spawn; `server_panics` is then reported as unknown).
//! * `--tenant <name>` — tenant for `--addr` runs (default `default`).

use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use freecursive::{OramBuilder, SchemePoint};
use oram_net::wire::{encode_request, read_frame, write_frame, KIND_R_ERROR};
use oram_net::{NetClient, NetServer, ServerConfig, WireRequest};

/// In-flight request window for the closed-loop phases.
const WINDOW: usize = 128;

/// Connections in the multi-connection phase.
const MULTI_CONNS: usize = 4;

/// Fraction of the measured single-connection peak offered during the
/// open-loop latency phase.  Well under saturation, so the percentiles
/// describe service latency rather than unbounded queue growth.
const OPEN_LOOP_FRACTION: f64 = 0.6;

/// Allowed fractional regression of single-connection requests/sec before
/// the `--gate` check fails.  Looser than the in-process benches: the
/// number crosses the loopback stack and two extra threads, which on a
/// busy 1-core runner adds noise the 20% gates would trip on.
const GATE_TOLERANCE: f64 = 0.25;

struct Profile {
    name: &'static str,
    num_blocks: u64,
    /// Closed-loop: warmup requests before any window.
    warmup: u64,
    /// Closed-loop: measurement windows (best-of).
    windows: u32,
    /// Closed-loop: per-window floor on requests and seconds.
    min_requests: u64,
    min_secs: f64,
    /// Closed-loop: per-window request ceiling.
    max_requests: u64,
    /// Open-loop: request count ceiling and duration ceiling.
    open_loop_max: u64,
    open_loop_secs: f64,
    /// Multi-connection: requests per connection.
    per_conn: u64,
}

fn profile(quick: bool, smoke: bool) -> Profile {
    if quick {
        Profile {
            name: "quick",
            num_blocks: 1 << 16,
            warmup: 1_024,
            windows: 2,
            min_requests: 2_048,
            min_secs: 0.2,
            max_requests: 20_000,
            open_loop_max: 10_000,
            open_loop_secs: 1.0,
            per_conn: 2_048,
        }
    } else if smoke {
        // Full geometry, short windows: comparable shape to the full
        // profile on a CI time budget.
        Profile {
            name: "smoke",
            num_blocks: 1 << 20,
            warmup: 4_096,
            windows: 4,
            min_requests: 4_096,
            min_secs: 0.5,
            max_requests: 100_000,
            open_loop_max: 50_000,
            open_loop_secs: 2.0,
            per_conn: 4_096,
        }
    } else {
        Profile {
            name: "full",
            num_blocks: 1 << 20,
            warmup: 8_192,
            windows: 3,
            min_requests: 16_384,
            min_secs: 1.5,
            max_requests: 500_000,
            open_loop_max: 200_000,
            open_loop_secs: 5.0,
            per_conn: 16_384,
        }
    }
}

/// The i-th request of every workload: even → read, odd → write, striding
/// a large co-prime so consecutive requests hit different shards and tree
/// paths.
fn nth_request(i: u64, num_blocks: u64, block_bytes: usize) -> WireRequest {
    let addr = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % num_blocks;
    if i.is_multiple_of(2) {
        WireRequest::Read { addr }
    } else {
        WireRequest::Write {
            addr,
            data: vec![0xB5u8; block_bytes],
        }
    }
}

/// Closed-loop pipelined run: keeps [`WINDOW`] requests in flight until
/// `target` responses arrive.  Returns the number completed.
fn run_closed_loop(
    client: &mut NetClient,
    target: u64,
    num_blocks: u64,
    block_bytes: usize,
) -> u64 {
    let mut issued = 0u64;
    let mut done = 0u64;
    while issued < target && issued < WINDOW as u64 {
        client
            .send_request(&nth_request(issued, num_blocks, block_bytes))
            .expect("send");
        issued += 1;
    }
    while done < target {
        let (_id, response) = client.recv_response().expect("recv");
        assert!(
            !matches!(response, oram_net::WireResponse::Error(_)),
            "benchmark request failed: {response:?}"
        );
        done += 1;
        if issued < target {
            client
                .send_request(&nth_request(issued, num_blocks, block_bytes))
                .expect("send");
            issued += 1;
        }
    }
    done
}

/// Phase 1: best-of-windows single-connection throughput.
fn measure_single_conn(client: &mut NetClient, p: &Profile, num_blocks: u64) -> (u64, f64) {
    let block_bytes = usize::try_from(client.session().block_bytes).expect("small blocks");
    run_closed_loop(client, p.warmup, num_blocks, block_bytes);
    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..p.windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            done += run_closed_loop(client, WINDOW as u64 * 4, num_blocks, block_bytes);
            let secs = start.elapsed().as_secs_f64();
            if done >= p.max_requests || (done >= p.min_requests && secs >= p.min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    (total, best_rate)
}

/// Phase 2: open-loop latency percentiles at a fixed offered rate.
///
/// A sender thread dispatches request `i` at `start + i * interval`
/// regardless of completions; the receiver times each response against
/// that *scheduled* arrival, so backpressure shows up as latency instead
/// of silently slowing the offered load (the closed-loop fallacy).
fn measure_open_loop(
    addr: SocketAddr,
    tenant: &str,
    rate: f64,
    p: &Profile,
    num_blocks: u64,
) -> (u64, f64, Vec<Duration>) {
    let interval = Duration::from_secs_f64(1.0 / rate);
    let total = (rate * p.open_loop_secs) as u64;
    let total = total.clamp(100, p.open_loop_max);

    // Raw stream: the sender and receiver halves run on separate threads,
    // which NetClient's single-owner API deliberately doesn't expose.
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    let mut reader = BufReader::new(stream);

    // Handshake (request id 0 is the hello; workload ids start at 1).
    let (kind, body) = encode_request(&WireRequest::Hello {
        tenant: tenant.to_string(),
    });
    write_frame(&mut writer, kind, 0, &body).expect("hello");
    writer.flush().expect("flush");
    let (header, body) = read_frame(&mut reader).expect("hello reply").expect("open");
    assert_ne!(header.kind, KIND_R_ERROR, "hello refused");
    let block_bytes = match oram_net::wire::decode_response(header.kind, &body).expect("decode") {
        oram_net::WireResponse::HelloOk { block_bytes, .. } => {
            usize::try_from(block_bytes).expect("small blocks")
        }
        other => panic!("unexpected hello reply {other:?}"),
    };

    let start = Instant::now() + Duration::from_millis(10);
    let sender = std::thread::spawn(move || {
        for i in 0..total {
            let scheduled = start + interval.mul_f64(i as f64);
            while Instant::now() < scheduled {
                std::thread::sleep(Duration::from_micros(50));
            }
            let (kind, body) = encode_request(&nth_request(i, num_blocks, block_bytes));
            write_frame(&mut writer, kind, i + 1, &body).expect("send");
            writer.flush().expect("flush");
        }
    });

    let mut latencies = Vec::with_capacity(usize::try_from(total).expect("fits"));
    for _ in 0..total {
        let (header, _body) = read_frame(&mut reader).expect("recv").expect("open");
        assert_ne!(header.kind, KIND_R_ERROR, "open-loop request failed");
        let i = header.request_id - 1;
        let scheduled = start + interval.mul_f64(i as f64);
        latencies.push(Instant::now().saturating_duration_since(scheduled));
    }
    sender.join().expect("sender thread");
    (total, rate, latencies)
}

/// Phase 3: concurrent pipelined connections, aggregate throughput.
fn measure_multi_conn(addr: SocketAddr, tenant: &str, p: &Profile, num_blocks: u64) -> (u64, f64) {
    let start = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..MULTI_CONNS {
        let tenant = tenant.to_string();
        let per_conn = p.per_conn;
        threads.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, &tenant).expect("connect");
            let block_bytes = usize::try_from(client.session().block_bytes).expect("small blocks");
            run_closed_loop(&mut client, per_conn, num_blocks, block_bytes)
        }));
    }
    let total: u64 = threads
        .into_iter()
        .map(|t| t.join().expect("connection thread"))
        .sum();
    (total, total as f64 / start.elapsed().as_secs_f64())
}

fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

/// Extracts `"single_conn"`'s `"requests_per_sec"` from a
/// `BENCH_service.json` produced by this binary.
fn parse_single_conn_rate(json: &str) -> Option<f64> {
    let entry = json.find("\"single_conn\"")?;
    let key = "\"requests_per_sec\": ";
    let rate = entry + json[entry..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = flag_value(&args, "--gate");
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_service.json");
    let external = flag_value(&args, "--addr");
    let tenant = flag_value(&args, "--tenant").unwrap_or("default");
    let p = profile(quick, smoke);

    let cores = std::thread::available_parallelism().map_or(0, |pll| pll.get());
    eprintln!("available parallelism: {cores} core(s)");
    if cores < 4 {
        eprintln!(
            "note: the multi-connection phase on fewer cores than connections measures \
             timeslicing, not capacity — it is recorded but never gated"
        );
    }

    // Spawn (or attach to) the server.
    let shards = 2u64;
    let block_bytes = 64usize;
    let server = if external.is_none() {
        eprintln!(
            "spawning in-process server: PIC_X32, {} blocks x {block_bytes} B, {shards} shards",
            p.num_blocks
        );
        let service = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(p.num_blocks)
            .block_bytes(block_bytes)
            .shards(shards)
            .build_service()
            .expect("service builds");
        Some(
            NetServer::spawn(
                service,
                ServerConfig::single_tenant(p.num_blocks, 8_192),
                "127.0.0.1:0",
            )
            .expect("server spawns"),
        )
    } else {
        None
    };
    let addr: SocketAddr = match (&server, external) {
        (Some(s), _) => s.local_addr(),
        (None, Some(spec)) => spec.parse().expect("--addr host:port"),
        (None, None) => unreachable!(),
    };

    let mut client = NetClient::connect(addr, tenant).expect("connect");
    let session = client.session();
    // Tenant-relative addressing: stay inside the advertised range.
    let num_blocks = session.num_blocks;

    // Phase 1: single-connection peak (the gated number).
    eprintln!("phase 1: single-connection closed-loop peak ...");
    let (single_requests, single_rate) = measure_single_conn(&mut client, &p, num_blocks);
    eprintln!("  {single_rate:>10.0} req/s  ({single_requests} requests)");
    drop(client);

    // Phase 2: open-loop latency below saturation.
    let offered = single_rate * OPEN_LOOP_FRACTION;
    eprintln!("phase 2: open-loop latency at {offered:.0} req/s ...");
    let (open_requests, offered_rate, mut latencies) =
        measure_open_loop(addr, tenant, offered, &p, num_blocks);
    latencies.sort_unstable();
    let p50 = percentile_us(&latencies, 0.50);
    let p95 = percentile_us(&latencies, 0.95);
    let p99 = percentile_us(&latencies, 0.99);
    eprintln!("  p50 {p50:.0} us   p95 {p95:.0} us   p99 {p99:.0} us   ({open_requests} requests)");

    // Phase 3: concurrent connections (recorded, never gated).
    eprintln!("phase 3: {MULTI_CONNS} concurrent connections ...");
    let (multi_requests, multi_rate) = measure_multi_conn(addr, tenant, &p, num_blocks);
    eprintln!("  {multi_rate:>10.0} req/s aggregate  ({multi_requests} requests)");

    let panics = server.as_ref().map(NetServer::panic_count);
    let panics_json = panics.map_or("null".to_string(), |n| n.to_string());
    if let Some(n) = panics {
        assert_eq!(n, 0, "server panicked under benchmark load");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"benchmark\": \"service_loadgen\",\n  \"profile\": \"{}\",\n  \
         \"available_parallelism\": {cores},\n  \"server\": {{\n    \
         \"scheme\": \"PIC_X32\",\n    \"in_process\": {},\n    \
         \"num_blocks\": {num_blocks},\n    \"block_bytes\": {block_bytes},\n    \
         \"shards\": {shards},\n    \"pipeline_window\": {WINDOW}\n  }},\n  \
         \"single_conn\": {{\n    \"requests\": {single_requests},\n    \
         \"requests_per_sec\": {single_rate:.1},\n    \
         \"us_per_request\": {:.1}\n  }},\n  \
         \"open_loop\": {{\n    \"offered_rate_per_sec\": {offered_rate:.1},\n    \
         \"offered_fraction_of_peak\": {OPEN_LOOP_FRACTION},\n    \
         \"requests\": {open_requests},\n    \"p50_us\": {p50:.1},\n    \
         \"p95_us\": {p95:.1},\n    \"p99_us\": {p99:.1}\n  }},\n  \
         \"multi_conn\": {{\n    \"connections\": {MULTI_CONNS},\n    \
         \"requests\": {multi_requests},\n    \
         \"requests_per_sec\": {multi_rate:.1},\n    \"gated\": false\n  }},\n  \
         \"server_panics\": {panics_json}\n}}\n",
        p.name,
        server.is_some(),
        1e6 / single_rate,
    );
    std::fs::write(out_path, &json).expect("write BENCH_service.json");
    eprintln!("wrote {out_path}");

    if let Some(server) = server {
        server.shutdown().expect("clean shutdown");
    }

    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let baseline_rate = parse_single_conn_rate(&baseline)
            .unwrap_or_else(|| panic!("gate baseline {path} has no single_conn rate"));
        let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "perf gate: single-conn {single_rate:.0} req/s vs baseline {baseline_rate:.0} req/s \
             (floor {floor:.0})"
        );
        if single_rate < floor {
            eprintln!(
                "perf gate FAILED: single-connection throughput regressed more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
