//! Stand-alone ORAM network server: builds an `OramService` and serves it
//! over TCP with the `oram-net` wire protocol until killed.
//!
//! Usage: `cargo run --release -p bench --bin oram_server -- [flags]`
//!
//! Flags (all optional):
//!
//! * `--bind <addr>` — listen address (default `127.0.0.1:4600`; use port
//!   0 for an ephemeral port, printed on startup).
//! * `--scheme <name>` — `insecure`, `p_x16`, `pc_x32`, or `pic_x32`
//!   (default `pic_x32`, the complete Freecursive design point).
//! * `--blocks <n>` — global capacity in blocks (default `1048576`).
//! * `--block-bytes <n>` — block size (default `64`).
//! * `--shards <n>` — shard worker count (default `2`).
//! * `--tenants <spec>` — comma-separated `name:blocks` list carving the
//!   global space in order (default one `default` tenant covering all
//!   blocks).  The blocks must sum to at most `--blocks`.
//! * `--max-inflight <n>` — per-tenant in-flight item quota (default
//!   `1024`).
//!
//! The server prints `listening on <addr>` once ready — `loadgen --addr`
//! (or any wire-protocol client) can attach from there.

use freecursive::{OramBuilder, SchemePoint};
use oram_net::{NetServer, ServerConfig, TenantSpec};

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_scheme(name: &str) -> SchemePoint {
    match name {
        "insecure" => SchemePoint::Insecure,
        "p_x16" => SchemePoint::PX16,
        "pc_x32" => SchemePoint::PcX32,
        "pic_x32" => SchemePoint::PicX32,
        other => panic!("unknown --scheme {other:?}: expected insecure, p_x16, pc_x32 or pic_x32"),
    }
}

fn parse_tenants(spec: &str) -> Vec<TenantSpec> {
    spec.split(',')
        .map(|part| {
            let (name, blocks) = part
                .split_once(':')
                .unwrap_or_else(|| panic!("tenant {part:?} is not name:blocks"));
            TenantSpec {
                name: name.to_string(),
                blocks: blocks
                    .parse()
                    .unwrap_or_else(|e| panic!("tenant {part:?} block count: {e}")),
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bind = flag_value(&args, "--bind").unwrap_or("127.0.0.1:4600");
    let scheme = parse_scheme(flag_value(&args, "--scheme").unwrap_or("pic_x32"));
    let num_blocks: u64 =
        flag_value(&args, "--blocks").map_or(1 << 20, |s| s.parse().expect("--blocks"));
    let block_bytes: usize =
        flag_value(&args, "--block-bytes").map_or(64, |s| s.parse().expect("--block-bytes"));
    let shards: u64 = flag_value(&args, "--shards").map_or(2, |s| s.parse().expect("--shards"));
    let max_inflight: u64 =
        flag_value(&args, "--max-inflight").map_or(1024, |s| s.parse().expect("--max-inflight"));
    let tenants = flag_value(&args, "--tenants").map_or_else(
        || {
            vec![TenantSpec {
                name: "default".to_string(),
                blocks: num_blocks,
            }]
        },
        parse_tenants,
    );

    eprintln!(
        "building {scheme:?} service: {num_blocks} blocks x {block_bytes} B, {shards} shard(s)"
    );
    let service = OramBuilder::for_scheme(scheme)
        .num_blocks(num_blocks)
        .block_bytes(block_bytes)
        .shards(shards)
        .build_service()
        .expect("service builds");
    let server = NetServer::spawn(
        service,
        ServerConfig {
            tenants,
            max_inflight,
        },
        bind,
    )
    .expect("server spawns");

    // Stdout so scripts can scrape the (possibly ephemeral) port.
    println!("listening on {}", server.local_addr());

    // Serve until the process is killed; the kernel reaps the sockets and
    // the in-memory ORAM needs no orderly teardown.
    loop {
        std::thread::park();
    }
}
