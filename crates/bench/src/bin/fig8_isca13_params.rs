//! Regenerates Figure 8: the comparison under the parameters of Ren et al. \[26\].
fn main() {
    println!(
        "{}",
        oram_sim::experiments::fig8::run(bench::scale_from_args()).render()
    );
}
