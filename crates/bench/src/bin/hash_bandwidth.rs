//! Regenerates the 6.3 hash-bandwidth comparison (PMMAC vs Merkle tree).
fn main() {
    let accesses = if std::env::args().any(|a| a == "--quick") {
        200
    } else {
        2000
    };
    println!(
        "{}",
        oram_sim::experiments::hash_bandwidth::run(accesses).render()
    );
}
