//! Produces `BENCH_durability.json`: Path ORAM backend throughput over the
//! file-backed store under the three write-ahead-log disciplines —
//! `Durability::None` (no log), `Batch(64)` (fsync the log every 64 path
//! writebacks) and `Strict` (fsync every writeback).
//!
//! The headline number is the **batch-relative rate**: `Batch(64)`
//! throughput as a fraction of the no-log file rate from the same run.
//! Batching is the discipline a deployment that wants crash consistency
//! without an fsync per access would run, so this ratio prices the WAL
//! machinery (record serialisation, checksum, the doubled write) plus the
//! amortised flushes.  Durable redo logging of full path images is
//! disk-bandwidth-bound — every access writes its ~path-sized record
//! twice, and the fsyncs make that bandwidth synchronous, while the no-log
//! baseline runs at page-cache speed — so the *absolute* ratio is
//! machine-specific (disk-speed vs RAM-speed).  The gate therefore follows
//! the other perf-smoke bins: it compares the fresh ratio against the
//! checked-in baseline's ratio and fails on a regression beyond
//! [`GATE_TOLERANCE`].  Comparing a ratio (rather than a raw rate) already
//! cancels most host-speed variation; the wide tolerance absorbs the rest
//! (two noisy rates divide into a noisier quotient).  The strict rate is
//! informational: it measures the disk's fsync latency more than anything
//! this repo controls.
//!
//! Usage: `cargo run --release -p bench --bin durability_overhead`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — CI profile: short windows.
//! * `--gate <baseline.json>` — compare the fresh batch-relative rate
//!   against the baseline's `batch_relative_rate`; fail (exit non-zero) on
//!   a regression beyond [`GATE_TOLERANCE`].
//! * `--out <path>` — redirect the JSON (default `BENCH_durability.json`).

use path_oram::{AccessOp, Durability, EncryptionMode, OramBackend, OramParams, PathOramBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Largest tolerated regression of the batch-relative rate (Batch(64)
/// throughput ÷ no-log file throughput) against the checked-in baseline
/// before the `--gate` check fails.  Wider than the 20% used by the
/// absolute-rate gates because a quotient of two independently noisy rates
/// is noisier than either.
const GATE_TOLERANCE: f64 = 0.40;

/// The batch discipline under test.
const BATCH_INTERVAL: u32 = 64;

struct Measurement {
    accesses: u64,
    accesses_per_sec: f64,
    bytes_per_access: f64,
}

impl Measurement {
    fn json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"accesses\": {},\n{indent}  \"accesses_per_sec\": {:.1},\n\
             {indent}  \"ns_per_access\": {:.1},\n{indent}  \"bytes_moved_per_access\": {:.1}\n{indent}}}",
            self.accesses,
            self.accesses_per_sec,
            1e9 / self.accesses_per_sec,
            self.bytes_per_access,
        );
        s
    }
}

/// The standard mixed read/write workload over one backend; best-of-windows
/// rate, counters normalised over the whole run.  Identical to the
/// `storage_tiers` harness so the two reports are comparable.
fn measure(
    backend: &mut PathOramBackend,
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
    windows: u32,
) -> Measurement {
    let n = backend.params().num_blocks;
    let leaves = backend.params().num_leaves();
    let block_bytes = backend.params().block_bytes;
    let mut rng = StdRng::seed_from_u64(0xD07AB1E);
    let mut posmap: Vec<u64> = (0..n).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::new();
    let write_data = vec![0x5Du8; block_bytes];

    let mut one = |backend: &mut PathOramBackend, i: u64, rng: &mut StdRng, posmap: &mut [u64]| {
        let addr = rng.gen_range(0..n);
        let new_leaf = rng.gen_range(0..leaves);
        let slot = usize::try_from(addr).expect("bench address fits usize");
        let old_leaf = posmap[slot];
        posmap[slot] = new_leaf;
        let op = if i.is_multiple_of(2) {
            AccessOp::Read
        } else {
            AccessOp::Write
        };
        let data = (op == AccessOp::Write).then_some(&write_data[..]);
        backend
            .access_into(op, addr, old_leaf, new_leaf, data, &mut out)
            .expect("benchmark access");
    };

    for i in 0..warmup {
        one(backend, i, &mut rng, &mut posmap);
    }
    backend.reset_stats();

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            for i in 0..64 {
                one(backend, done + i, &mut rng, &mut posmap);
            }
            done += 64;
            let secs = start.elapsed().as_secs_f64();
            if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    let stats = backend.stats();
    Measurement {
        accesses: total,
        accesses_per_sec: best_rate,
        bytes_per_access: (stats.bytes_read + stats.bytes_written) as f64 / total as f64,
    }
}

/// Pulls `batch_relative_rate` out of a checked-in baseline report.
fn parse_batch_relative_rate(json: &str) -> Option<f64> {
    let key = "\"batch_relative_rate\": ";
    let at = json.find(key)? + key.len();
    let end = json[at..].find([',', '\n', '}'])?;
    json[at..at + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_durability.json", |s| s.as_str());

    // Smaller than the storage_tiers design point: every mode here is
    // file-backed, and Strict pays an fsync per access — a 2^20 tree would
    // spend its whole budget waiting on the disk without changing the
    // batch/none ratio the gate reads.
    let num_blocks: u64 = if quick { 1 << 14 } else { 1 << 16 };
    let block_bytes = 64usize;
    let params = OramParams::new(num_blocks, block_bytes, 4);
    let (warmup, min_accesses, min_secs, max_accesses, windows) = if smoke {
        (1_000, 2_000, 0.5, 100_000, 3)
    } else if quick {
        (500, 1_000, 0.2, 30_000, 2)
    } else {
        (4_000, 8_000, 1.0, 400_000, 3)
    };
    // Strict is fsync-bound: give it smaller windows so the report finishes
    // in CI time, without touching the two rates the gate compares.
    let strict_min = min_accesses / 4;
    let strict_max = max_accesses / 8;

    let modes = [
        ("none", Durability::None),
        ("batch", Durability::Batch(BATCH_INTERVAL)),
        ("strict", Durability::Strict),
    ];
    let mut none_rate = 0f64;
    let mut batch_rate = 0f64;
    let mut modes_json = String::new();
    for (i, (label, durability)) in modes.into_iter().enumerate() {
        eprintln!("measuring durability mode: {label} ...");
        let mut backend = PathOramBackend::new_with_storage(
            params,
            EncryptionMode::GlobalSeed,
            [2u8; 16],
            0,
            &path_oram::StorageKind::TempFile,
            durability,
            0,
        )
        .expect("backend construction");
        let (lo, hi) = if label == "strict" {
            (strict_min, strict_max)
        } else {
            (min_accesses, max_accesses)
        };
        let m = measure(&mut backend, warmup, lo, min_secs, hi, windows);
        eprintln!("  {label:>6}: {:>10.0} acc/s", m.accesses_per_sec);
        match label {
            "none" => none_rate = m.accesses_per_sec,
            "batch" => batch_rate = m.accesses_per_sec,
            _ => {}
        }
        if i > 0 {
            modes_json.push_str(",\n");
        }
        let _ = write!(
            modes_json,
            "    {{\n      \"durability\": \"{label}\",\n      \"result\": {}\n    }}",
            m.json("      "),
        );
    }

    let relative = batch_rate / none_rate;
    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"durability_overhead\",\n  \"profile\": \"{profile}\",\n  \
         \"mode\": \"aes_global_seed\",\n  \"design_point\": {{\n    \"num_blocks\": {num_blocks},\n    \
         \"block_bytes\": {block_bytes},\n    \"z\": 4,\n    \"levels\": {},\n    \
         \"bucket_bytes\": {},\n    \"batch_interval\": {BATCH_INTERVAL}\n  }},\n  \
         \"modes\": [\n{modes_json}\n  ],\n  \
         \"batch_relative_rate\": {relative:.4},\n  \"gate_tolerance\": {GATE_TOLERANCE}\n}}\n",
        params.levels(),
        params.bucket_bytes(),
    );
    std::fs::write(out_path, &json).expect("write BENCH_durability.json");
    eprintln!("wrote {out_path}");

    // Perf-smoke gate: fail if the batch-relative rate regressed more than
    // GATE_TOLERANCE against the recorded baseline.  The ratio cancels
    // host speed; the baseline pins the WAL machinery's cost share.
    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let baseline_relative = parse_batch_relative_rate(&baseline)
            .unwrap_or_else(|| panic!("gate baseline {path} has no batch_relative_rate"));
        let floor = baseline_relative * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "durability gate: batch/none {relative:.4} vs baseline {baseline_relative:.4} \
             (floor {floor:.4})"
        );
        if relative < floor {
            eprintln!(
                "durability gate FAILED: Batch({BATCH_INTERVAL}) relative throughput regressed \
                 more than {:.0}% against the baseline",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("durability gate passed");
    }
}
