//! Regenerates Figure 5: the PLB design-space sweep (8-128 KB).
fn main() {
    println!(
        "{}",
        oram_sim::experiments::fig5::run(bench::scale_from_args()).render()
    );
}
