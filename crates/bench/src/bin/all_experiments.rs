//! Runs every experiment driver in sequence and prints all tables/figures.
fn main() {
    let scale = bench::scale_from_args();
    println!("{}", oram_sim::experiments::fig3::run().render());
    println!("{}", oram_sim::experiments::table2::run(50).render());
    println!("{}", oram_sim::experiments::fig5::run(scale).render());
    println!("{}", oram_sim::experiments::fig6::run(scale).render());
    println!("{}", oram_sim::experiments::fig7::run(scale).render());
    println!("{}", oram_sim::experiments::fig8::run(scale).render());
    println!("{}", oram_sim::experiments::fig9::run(scale).render());
    println!("{}", oram_sim::experiments::table3::run().render());
    println!(
        "{}",
        oram_sim::experiments::hash_bandwidth::run(1000).render()
    );
}
