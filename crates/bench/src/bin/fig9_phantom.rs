//! Regenerates Figure 9: PC_X32 speedup over a Phantom-style 4 KB-block ORAM.
fn main() {
    println!(
        "{}",
        oram_sim::experiments::fig9::run(bench::scale_from_args()).render()
    );
}
