//! Runs the ablation studies called out in DESIGN.md: PLB associativity,
//! DRAM tree layout, and unified-tree-vs-separate-trees bandwidth.
fn main() {
    let scale = bench::scale_from_args();
    let samples = if std::env::args().any(|a| a == "--quick") {
        10
    } else {
        60
    };
    println!(
        "{}",
        oram_sim::experiments::ablations::plb_associativity(scale).render()
    );
    println!(
        "{}",
        oram_sim::experiments::ablations::layout_ablation(samples).render()
    );
    println!(
        "{}",
        oram_sim::experiments::ablations::unified_tree_ablation(scale).render()
    );
}
