//! Regenerates Figure 7: data moved per ORAM access at 4/16/64 GB capacities.
fn main() {
    println!(
        "{}",
        oram_sim::experiments::fig7::run(bench::scale_from_args()).render()
    );
}
