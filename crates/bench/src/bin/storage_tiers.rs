//! Produces `BENCH_storage.json`: Path ORAM backend throughput over the
//! three tree stores behind the `TreeStore` seam — the in-memory arena
//! (`MemStore`), the file-backed sparse tree (`FileStore`), and the tiered
//! treetop store (`TieredStore`, top K levels resident in RAM, the rest
//! spilled to the file tier) — at the 1M-block / 64-byte encrypted design
//! point.  Each tier is measured twice: sequential accesses, and the same
//! workload submitted in batch windows of [`BATCH_WINDOW`], which engages
//! the backend's dedup scheduler (shared upper-level buckets read and
//! sealed once per batch) over non-arena stores.
//!
//! The CI `--gate` mode checks three things:
//!
//! 1. every tier row present in the baseline against the fresh run of the
//!    same tier (a regression beyond [`GATE_TOLERANCE`] fails),
//! 2. the machine-portable ratio gate: the fresh tiered rate must be at
//!    least [`TIERED_FILE_SPEEDUP_FLOOR`]× the fresh file rate — the
//!    treetop exists to make the spill tier affordable, and this ratio is
//!    insensitive to the host's absolute disk/CPU speed,
//! 3. nothing else — absolute file-tier numbers still depend on the page
//!    cache and the disk, which is why the per-tier check is relative to a
//!    baseline measured on comparable hardware.
//!
//! Usage: `cargo run --release -p bench --bin storage_tiers`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — CI profile: full design point, short windows.
//! * `--gate <baseline.json>` — run the three checks above against
//!   `baseline.json`; exit non-zero on failure.
//! * `--out <path>` — redirect the JSON (default `BENCH_storage.json`).

use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Allowed fractional regression of any tier's sequential accesses/sec
/// before the `--gate` check fails (20%, matching the other perf-smoke
/// gates).
const GATE_TOLERANCE: f64 = 0.20;

/// The tiered store must beat the pure file store by at least this factor
/// on the sequential rows; checked under `--gate` with [`GATE_TOLERANCE`]
/// slack (floor 1.6× in CI), because both rates carry page-cache and
/// frequency-scaling noise even on one machine.  The checked-in baseline
/// is held to the full 2×.
const TIERED_FILE_SPEEDUP_FLOOR: f64 = 2.0;

/// Treetop budget for the tiered row: 192 MiB holds all 19 levels at the
/// full design point (160 MiB of buckets), so steady-state accesses never
/// leave the arena and the file tier's cost is checkpoint-only.  Each
/// spilled level costs two syscalls per access — at this design point the
/// CPU/crypto work is ~8 µs and a full file path ~8 µs more, so even a
/// leaf-only spill (96 MiB, K=18) lands near 1.7× the file rate; covering
/// the whole tree is what clears the 2× floor.
const TIERED_MEMORY_BUDGET: u64 = 192 << 20;

/// Window width for the batched measurement; matches the frontend's
/// `access_batch` bracketing.
const BATCH_WINDOW: u64 = 16;

struct Measurement {
    accesses: u64,
    accesses_per_sec: f64,
    bytes_per_access: f64,
    max_stash_occupancy: usize,
}

impl Measurement {
    fn json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"accesses\": {},\n{indent}  \"accesses_per_sec\": {:.1},\n\
             {indent}  \"ns_per_access\": {:.1},\n{indent}  \"bytes_moved_per_access\": {:.1},\n\
             {indent}  \"max_stash_occupancy\": {}\n{indent}}}",
            self.accesses,
            self.accesses_per_sec,
            1e9 / self.accesses_per_sec,
            self.bytes_per_access,
            self.max_stash_occupancy,
        );
        s
    }
}

/// The standard mixed read/write workload over one backend; best-of-windows
/// rate, counters normalised over the whole run.  `batch_window > 0` wraps
/// every `batch_window` accesses in a `begin_batch`/`end_batch` bracket, so
/// the dedup scheduler's coalesced reads and one-seal-per-batch writebacks
/// are on the measured path.
#[allow(clippy::too_many_arguments)]
fn measure(
    backend: &mut PathOramBackend,
    rng: &mut StdRng,
    posmap: &mut [u64],
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
    windows: u32,
    batch_window: u64,
) -> Measurement {
    let n = backend.params().num_blocks;
    let leaves = backend.params().num_leaves();
    let block_bytes = backend.params().block_bytes;
    let mut out = Vec::new();
    let write_data = vec![0x5Du8; block_bytes];

    let mut one = |backend: &mut PathOramBackend, i: u64, rng: &mut StdRng, posmap: &mut [u64]| {
        let addr = rng.gen_range(0..n);
        let new_leaf = rng.gen_range(0..leaves);
        let slot = usize::try_from(addr).expect("bench address fits usize");
        let old_leaf = posmap[slot];
        posmap[slot] = new_leaf;
        let op = if i.is_multiple_of(2) {
            AccessOp::Read
        } else {
            AccessOp::Write
        };
        let data = (op == AccessOp::Write).then_some(&write_data[..]);
        backend
            .access_into(op, addr, old_leaf, new_leaf, data, &mut out)
            .expect("benchmark access");
    };

    for i in 0..warmup {
        one(backend, i, rng, posmap);
    }
    backend.reset_stats();

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            if batch_window > 0 {
                let mut j = 0u64;
                while j < 256 {
                    backend.begin_batch();
                    for i in 0..batch_window {
                        one(backend, done + j + i, rng, posmap);
                    }
                    backend.end_batch().expect("benchmark batch flush");
                    j += batch_window;
                }
            } else {
                for i in 0..256 {
                    one(backend, done + i, rng, posmap);
                }
            }
            done += 256;
            let secs = start.elapsed().as_secs_f64();
            if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    let stats = backend.stats();
    Measurement {
        accesses: total,
        accesses_per_sec: best_rate,
        bytes_per_access: (stats.bytes_read + stats.bytes_written) as f64 / total as f64,
        max_stash_occupancy: stats.max_stash_occupancy,
    }
}

/// Extracts the sequential `"accesses_per_sec"` of the `"store": "<label>"`
/// tier from a `BENCH_storage.json` produced by this binary.  The
/// sequential `"result"` block precedes `"batched_result"` in each tier
/// object, so the first rate after the label is the sequential one.
fn parse_tier_rate(json: &str, label: &str) -> Option<f64> {
    let tier = json.find(&format!("\"store\": \"{label}\""))?;
    let key = "\"accesses_per_sec\": ";
    let rate = tier + json[tier..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_storage.json", |s| s.as_str());

    let num_blocks: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let block_bytes = 64usize;
    let params = OramParams::new(num_blocks, block_bytes, 4);
    let (warmup, min_accesses, min_secs, max_accesses, windows) = if smoke {
        (2_000, 4_000, 0.8, 200_000, 3)
    } else if quick {
        (1_000, 2_000, 0.2, 50_000, 2)
    } else {
        (8_000, 15_000, 1.5, 1_000_000, 3)
    };

    let tiers = [
        ("mem", StorageKind::Mem),
        ("file", StorageKind::TempFile),
        (
            "tiered",
            StorageKind::TempTiered {
                memory_budget: TIERED_MEMORY_BUDGET,
            },
        ),
    ];
    let mut rates: Vec<(&str, f64)> = Vec::new();
    let mut tiers_json = String::new();
    for (i, (label, kind)) in tiers.into_iter().enumerate() {
        eprintln!("measuring storage tier: {label} ...");
        let mut backend = PathOramBackend::new_with_storage(
            params,
            EncryptionMode::GlobalSeed,
            [2u8; 16],
            0,
            &kind,
            path_oram::Durability::None,
            0,
        )
        .expect("backend construction");
        // One position map per tier, shared by both measurements: the
        // batched run continues from where the sequential run left the
        // blocks, exactly like a frontend switching submission modes.
        let mut rng = StdRng::seed_from_u64(0x5708A6E);
        let mut posmap: Vec<u64> = (0..num_blocks)
            .map(|_| rng.gen_range(0..params.num_leaves()))
            .collect();
        let sequential = measure(
            &mut backend,
            &mut rng,
            &mut posmap,
            warmup,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
            0,
        );
        let batched = measure(
            &mut backend,
            &mut rng,
            &mut posmap,
            warmup / 4,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
            BATCH_WINDOW,
        );
        eprintln!(
            "  {label:>6}: {:>10.0} acc/s sequential, {:>10.0} acc/s batched",
            sequential.accesses_per_sec, batched.accesses_per_sec
        );
        rates.push((label, sequential.accesses_per_sec));
        if i > 0 {
            tiers_json.push_str(",\n");
        }
        let _ = write!(
            tiers_json,
            "    {{\n      \"store\": \"{label}\",\n      \"result\": {},\n      \
             \"batched_result\": {}\n    }}",
            sequential.json("      "),
            batched.json("      "),
        );
    }

    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"storage_tiers\",\n  \"profile\": \"{profile}\",\n  \
         \"mode\": \"aes_global_seed\",\n  \"batch_window\": {BATCH_WINDOW},\n  \
         \"tiered_memory_budget\": {TIERED_MEMORY_BUDGET},\n  \"design_point\": {{\n    \
         \"num_blocks\": {num_blocks},\n    \
         \"block_bytes\": {block_bytes},\n    \"z\": 4,\n    \"levels\": {},\n    \
         \"bucket_bytes\": {}\n  }},\n  \"tiers\": [\n{tiers_json}\n  ]\n}}\n",
        params.levels(),
        params.bucket_bytes(),
    );
    std::fs::write(out_path, &json).expect("write BENCH_storage.json");
    eprintln!("wrote {out_path}");

    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let mut failed = false;
        for (label, rate) in &rates {
            let Some(baseline_rate) = parse_tier_rate(&baseline, label) else {
                eprintln!("perf gate: baseline {path} has no \"{label}\" row; skipping");
                continue;
            };
            let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
            eprintln!(
                "perf gate: {label}-store {rate:.0} acc/s vs baseline {baseline_rate:.0} acc/s \
                 (floor {floor:.0})"
            );
            if *rate < floor {
                eprintln!(
                    "perf gate FAILED: {label}-store throughput regressed more than {:.0}%",
                    GATE_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        let file_rate = rates.iter().find(|(l, _)| *l == "file").map(|(_, r)| *r);
        let tiered_rate = rates.iter().find(|(l, _)| *l == "tiered").map(|(_, r)| *r);
        if let (Some(file_rate), Some(tiered_rate)) = (file_rate, tiered_rate) {
            let ratio = tiered_rate / file_rate;
            let ratio_floor = TIERED_FILE_SPEEDUP_FLOOR * (1.0 - GATE_TOLERANCE);
            eprintln!(
                "perf gate: tiered/file speedup {ratio:.2}x \
                 (target {TIERED_FILE_SPEEDUP_FLOOR:.1}x, floor {ratio_floor:.2}x)"
            );
            if ratio < ratio_floor {
                eprintln!(
                    "perf gate FAILED: tiered store fell below {ratio_floor:.2}x the file store"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
