//! Produces `BENCH_storage.json`: Path ORAM backend throughput over the two
//! tree stores behind the `TreeStore` seam — the in-memory arena
//! (`MemStore`) and the file-backed sparse tree (`FileStore`) — at the
//! 1M-block / 64-byte encrypted design point.
//!
//! The headline purpose is the CI gate on the **mem** rate: the trait seam
//! sits directly on the hot path, so a regression there means the seam (or
//! the eviction restructure around it) got more expensive.  The file rate
//! is informational — it depends on the page cache and the disk, and its
//! point is capacity beyond RAM plus persistence, not matching DRAM.
//!
//! Usage: `cargo run --release -p bench --bin storage_tiers`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — CI profile: full design point, short windows.
//! * `--gate <baseline.json>` — compare the fresh mem-store accesses/sec
//!   against `baseline.json`; exit non-zero on a regression of more than
//!   [`GATE_TOLERANCE`].
//! * `--out <path>` — redirect the JSON (default `BENCH_storage.json`).

use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend, StorageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Allowed fractional regression of the mem-store accesses/sec before the
/// `--gate` check fails (20%, matching the other perf-smoke gates).
const GATE_TOLERANCE: f64 = 0.20;

struct Measurement {
    accesses: u64,
    accesses_per_sec: f64,
    bytes_per_access: f64,
    max_stash_occupancy: usize,
}

impl Measurement {
    fn json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"accesses\": {},\n{indent}  \"accesses_per_sec\": {:.1},\n\
             {indent}  \"ns_per_access\": {:.1},\n{indent}  \"bytes_moved_per_access\": {:.1},\n\
             {indent}  \"max_stash_occupancy\": {}\n{indent}}}",
            self.accesses,
            self.accesses_per_sec,
            1e9 / self.accesses_per_sec,
            self.bytes_per_access,
            self.max_stash_occupancy,
        );
        s
    }
}

/// The standard mixed read/write workload over one backend; best-of-windows
/// rate, counters normalised over the whole run.
fn measure(
    backend: &mut PathOramBackend,
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
    windows: u32,
) -> Measurement {
    let n = backend.params().num_blocks;
    let leaves = backend.params().num_leaves();
    let block_bytes = backend.params().block_bytes;
    let mut rng = StdRng::seed_from_u64(0x5708A6E);
    let mut posmap: Vec<u64> = (0..n).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::new();
    let write_data = vec![0x5Du8; block_bytes];

    let mut one = |backend: &mut PathOramBackend, i: u64, rng: &mut StdRng, posmap: &mut [u64]| {
        let addr = rng.gen_range(0..n);
        let new_leaf = rng.gen_range(0..leaves);
        let slot = usize::try_from(addr).expect("bench address fits usize");
        let old_leaf = posmap[slot];
        posmap[slot] = new_leaf;
        let op = if i.is_multiple_of(2) {
            AccessOp::Read
        } else {
            AccessOp::Write
        };
        let data = (op == AccessOp::Write).then_some(&write_data[..]);
        backend
            .access_into(op, addr, old_leaf, new_leaf, data, &mut out)
            .expect("benchmark access");
    };

    for i in 0..warmup {
        one(backend, i, &mut rng, &mut posmap);
    }
    backend.reset_stats();

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            for i in 0..256 {
                one(backend, done + i, &mut rng, &mut posmap);
            }
            done += 256;
            let secs = start.elapsed().as_secs_f64();
            if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    let stats = backend.stats();
    Measurement {
        accesses: total,
        accesses_per_sec: best_rate,
        bytes_per_access: (stats.bytes_read + stats.bytes_written) as f64 / total as f64,
        max_stash_occupancy: stats.max_stash_occupancy,
    }
}

/// Extracts the `"accesses_per_sec"` of the `"store": "mem"` tier from a
/// `BENCH_storage.json` produced by this binary.
fn parse_mem_rate(json: &str) -> Option<f64> {
    let tier = json.find("\"store\": \"mem\"")?;
    let key = "\"accesses_per_sec\": ";
    let rate = tier + json[tier..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_storage.json", |s| s.as_str());

    let num_blocks: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let block_bytes = 64usize;
    let params = OramParams::new(num_blocks, block_bytes, 4);
    let (warmup, min_accesses, min_secs, max_accesses, windows) = if smoke {
        (2_000, 4_000, 0.8, 200_000, 3)
    } else if quick {
        (1_000, 2_000, 0.2, 50_000, 2)
    } else {
        (8_000, 15_000, 1.5, 1_000_000, 3)
    };

    let mut mem_rate = 0f64;
    let mut tiers_json = String::new();
    for (i, (label, kind)) in [("mem", StorageKind::Mem), ("file", StorageKind::TempFile)]
        .into_iter()
        .enumerate()
    {
        eprintln!("measuring storage tier: {label} ...");
        let mut backend = PathOramBackend::new_with_storage(
            params,
            EncryptionMode::GlobalSeed,
            [2u8; 16],
            0,
            &kind,
            path_oram::Durability::None,
            0,
        )
        .expect("backend construction");
        let m = measure(
            &mut backend,
            warmup,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
        );
        eprintln!("  {label:>4}: {:>10.0} acc/s", m.accesses_per_sec);
        if label == "mem" {
            mem_rate = m.accesses_per_sec;
        }
        if i > 0 {
            tiers_json.push_str(",\n");
        }
        let _ = write!(
            tiers_json,
            "    {{\n      \"store\": \"{label}\",\n      \"result\": {}\n    }}",
            m.json("      "),
        );
    }

    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"storage_tiers\",\n  \"profile\": \"{profile}\",\n  \
         \"mode\": \"aes_global_seed\",\n  \"design_point\": {{\n    \"num_blocks\": {num_blocks},\n    \
         \"block_bytes\": {block_bytes},\n    \"z\": 4,\n    \"levels\": {},\n    \
         \"bucket_bytes\": {}\n  }},\n  \"tiers\": [\n{tiers_json}\n  ]\n}}\n",
        params.levels(),
        params.bucket_bytes(),
    );
    std::fs::write(out_path, &json).expect("write BENCH_storage.json");
    eprintln!("wrote {out_path}");

    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let baseline_rate = parse_mem_rate(&baseline)
            .unwrap_or_else(|| panic!("gate baseline {path} has no mem-store rate"));
        let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "perf gate: mem-store {mem_rate:.0} acc/s vs baseline {baseline_rate:.0} acc/s \
             (floor {floor:.0})"
        );
        if mem_rate < floor {
            eprintln!(
                "perf gate FAILED: mem-store throughput regressed more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
