//! Regenerates Figure 6: slowdowns of R_X8, PC_X32 and PIC_X32 vs insecure DRAM.
fn main() {
    println!(
        "{}",
        oram_sim::experiments::fig6::run(bench::scale_from_args()).render()
    );
}
