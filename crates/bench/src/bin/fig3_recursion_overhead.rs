//! Regenerates Figure 3: % of bytes from PosMap ORAMs vs ORAM capacity.
fn main() {
    println!("{}", oram_sim::experiments::fig3::run().render());
}
