//! Produces `BENCH_omap.json`: oblivious-map throughput under the three
//! core YCSB mixes — A (50% read / 50% update), B (95/5), and C (read
//! only) — with Zipfian key popularity over a preloaded record set, on
//! the full `PIC_X32` Freecursive frontend.
//!
//! The map's security contract makes this benchmark unusually honest: a
//! read and an update cost the *same* fixed ORAM request schedule, so
//! the three mixes differ only in serialisation work, not access counts
//! — the numbers quantify the padded schedule's price directly (the
//! `oram_requests_per_op` field is the constant multiplier).
//!
//! The CI `--gate` mode compares each workload's fresh ops/sec against
//! the same workload's row in a baseline file, failing on a regression
//! beyond [`GATE_TOLERANCE`] — the same contract as the other perf-smoke
//! gates.
//!
//! Usage: `cargo run --release -p bench --bin omap_ycsb`
//!
//! Flags:
//!
//! * `--quick` — small table, short windows (local iteration).
//! * `--smoke` — CI profile: mid-size table, short windows.
//! * `--gate <baseline.json>` — check against `baseline.json`; exit
//!   non-zero on regression.
//! * `--out <path>` — redirect the JSON (default `BENCH_omap.json`).

use freecursive::{OramBuilder, SchemePoint};
use omap::{BuildMap, MapConfig, ObliviousMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Allowed fractional regression of any workload's ops/sec before the
/// `--gate` check fails (20%, matching the other perf-smoke gates).
const GATE_TOLERANCE: f64 = 0.20;

/// Zipfian skew of key popularity; 0.99 is the YCSB default.
const ZIPF_THETA: f64 = 0.99;

/// Map-level knobs of the benchmark design point.
const KEY_BYTES: usize = 24;
const VALUE_MAX: usize = 256;
/// Length of the values actually written (YCSB's 100-byte records).
const RECORD_BYTES: usize = 100;
const BLOCK_BYTES: usize = 128;

/// One YCSB mix: fraction of reads, remainder updates.
struct Mix {
    name: &'static str,
    read_fraction: f64,
}

const MIXES: [Mix; 3] = [
    Mix {
        name: "A",
        read_fraction: 0.5,
    },
    Mix {
        name: "B",
        read_fraction: 0.95,
    },
    Mix {
        name: "C",
        read_fraction: 1.0,
    },
];

/// 24-byte key of record `id` (YCSB's `user<id>` shape, zero padded).
fn key_for(id: u64) -> Vec<u8> {
    let mut key = format!("user{id:020}").into_bytes();
    key.truncate(KEY_BYTES);
    key
}

/// Cumulative Zipfian distribution over `n` ranks; sample by binary
/// search of a uniform draw.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0f64;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(ZIPF_THETA);
        cdf.push(total);
    }
    for entry in &mut cdf {
        *entry /= total;
    }
    cdf
}

fn sample_zipf(cdf: &[f64], rng: &mut StdRng) -> usize {
    let draw: f64 = rng.gen_range(0.0..1.0);
    cdf.partition_point(|&p| p < draw).min(cdf.len() - 1)
}

struct Measurement {
    ops: u64,
    ops_per_sec: f64,
}

/// Window shape of one profile (`--quick` / `--smoke` / full).
struct Profile {
    min_ops: u64,
    min_secs: f64,
    max_ops: u64,
    windows: u32,
}

/// Best-of-windows throughput of one mix over a preloaded map.
fn measure(
    map: &mut ObliviousMap,
    mix: &Mix,
    cdf: &[f64],
    rng: &mut StdRng,
    profile: &Profile,
) -> Measurement {
    let mut record = vec![0u8; RECORD_BYTES];
    let mut one = |map: &mut ObliviousMap, rng: &mut StdRng| {
        let key = key_for(sample_zipf(cdf, rng) as u64);
        if rng.gen_range(0.0..1.0) < mix.read_fraction {
            let value = map.get(&key).expect("ycsb read");
            assert!(value.is_some(), "preloaded key missing");
        } else {
            rng.fill(&mut record[..]);
            map.insert(&key, &record).expect("ycsb update");
        }
    };

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..profile.windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            for _ in 0..32 {
                one(map, rng);
            }
            done += 32;
            let secs = start.elapsed().as_secs_f64();
            if done >= profile.max_ops || (done >= profile.min_ops && secs >= profile.min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    Measurement {
        ops: total,
        ops_per_sec: best_rate,
    }
}

/// Extracts the `"ops_per_sec"` of the `"workload": "<name>"` row from a
/// `BENCH_omap.json` produced by this binary.
fn parse_workload_rate(json: &str, name: &str) -> Option<f64> {
    let row = json.find(&format!("\"workload\": \"{name}\""))?;
    let key = "\"ops_per_sec\": ";
    let rate = row + json[row..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_omap.json", |s| s.as_str());

    let (capacity, records, profile) = if smoke {
        (
            1u64 << 10,
            1u64 << 9,
            Profile {
                min_ops: 400,
                min_secs: 0.6,
                max_ops: 20_000,
                windows: 3,
            },
        )
    } else if quick {
        (
            1u64 << 8,
            1u64 << 7,
            Profile {
                min_ops: 100,
                min_secs: 0.2,
                max_ops: 5_000,
                windows: 2,
            },
        )
    } else {
        (
            1u64 << 12,
            1u64 << 11,
            Profile {
                min_ops: 2_000,
                min_secs: 1.5,
                max_ops: 200_000,
                windows: 3,
            },
        )
    };

    let scheme = SchemePoint::PicX32;
    let config = MapConfig::new(KEY_BYTES, VALUE_MAX, capacity);
    let layout = config
        .layout_for(BLOCK_BYTES)
        .expect("benchmark design point derives");
    let mut map = OramBuilder::for_scheme(scheme)
        .block_bytes(BLOCK_BYTES)
        .seed(3)
        .build_map(&config)
        .expect("benchmark map construction");

    eprintln!(
        "preloading {records} records ({} bytes each) into a {capacity}-capacity map \
         ({} accesses/op, {} ORAM blocks) ...",
        RECORD_BYTES,
        layout.accesses_per_op(),
        layout.total_blocks(),
    );
    let mut rng = StdRng::seed_from_u64(0x4C5B);
    let mut record = vec![0u8; RECORD_BYTES];
    for id in 0..records {
        rng.fill(&mut record[..]);
        map.insert(&key_for(id), &record).expect("preload insert");
    }
    let cdf = zipf_cdf(records as usize);

    let mut rates: Vec<(&str, f64)> = Vec::new();
    let mut rows_json = String::new();
    for (i, mix) in MIXES.iter().enumerate() {
        eprintln!(
            "measuring YCSB-{} ({}% reads) ...",
            mix.name,
            mix.read_fraction * 100.0
        );
        map.reset_stats();
        let m = measure(&mut map, mix, &cdf, &mut rng, &profile);
        let requests_per_op = map.stats().oram_requests as f64 / map.stats().ops as f64;
        eprintln!(
            "  YCSB-{}: {:>8.0} ops/s ({:.0} ORAM requests/op)",
            mix.name, m.ops_per_sec, requests_per_op
        );
        rates.push((mix.name, m.ops_per_sec));
        if i > 0 {
            rows_json.push_str(",\n");
        }
        let _ = write!(
            rows_json,
            "    {{\n      \"workload\": \"{}\",\n      \"read_fraction\": {},\n      \
             \"ops\": {},\n      \"ops_per_sec\": {:.1},\n      \"ns_per_op\": {:.1},\n      \
             \"oram_requests_per_op\": {:.1}\n    }}",
            mix.name,
            mix.read_fraction,
            m.ops,
            m.ops_per_sec,
            1e9 / m.ops_per_sec,
            requests_per_op,
        );
    }

    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"omap_ycsb\",\n  \"profile\": \"{profile}\",\n  \
         \"scheme\": \"{}\",\n  \"zipf_theta\": {ZIPF_THETA},\n  \"design_point\": {{\n    \
         \"key_bytes\": {KEY_BYTES},\n    \"value_bytes\": {VALUE_MAX},\n    \
         \"record_bytes\": {RECORD_BYTES},\n    \"block_bytes\": {BLOCK_BYTES},\n    \
         \"capacity\": {capacity},\n    \"records\": {records},\n    \
         \"accesses_per_op\": {},\n    \"total_blocks\": {}\n  }},\n  \
         \"workloads\": [\n{rows_json}\n  ]\n}}\n",
        scheme.label(),
        layout.accesses_per_op(),
        layout.total_blocks(),
    );
    std::fs::write(out_path, &json).expect("write BENCH_omap.json");
    eprintln!("wrote {out_path}");

    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let mut failed = false;
        for (name, rate) in &rates {
            let Some(baseline_rate) = parse_workload_rate(&baseline, name) else {
                eprintln!("perf gate: baseline {path} has no YCSB-{name} row; skipping");
                continue;
            };
            let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
            eprintln!(
                "perf gate: YCSB-{name} {rate:.0} ops/s vs baseline {baseline_rate:.0} ops/s \
                 (floor {floor:.0})"
            );
            if *rate < floor {
                eprintln!(
                    "perf gate FAILED: YCSB-{name} throughput regressed more than {:.0}%",
                    GATE_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
