//! Regenerates Table 2: ORAM tree latency by DRAM channel count.
fn main() {
    let samples = if std::env::args().any(|a| a == "--quick") {
        10
    } else {
        200
    };
    println!("{}", oram_sim::experiments::table2::run(samples).render());
}
