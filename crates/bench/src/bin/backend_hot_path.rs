//! Produces `BENCH_backend.json`: the recorded perf trajectory of the Path
//! ORAM backend hot path.
//!
//! Two sections:
//!
//! * `backend_comparison` — the optimised `PathOramBackend` against the
//!   frozen pre-arena baseline (`bench::baseline`), both measured **in the
//!   same run** on the 1M-block / 64-byte design point, in plaintext and
//!   AES-global-seed modes.  The `speedup` field is the headline number the
//!   perf acceptance gate reads.
//! * `scheme_grid` — functional throughput of every buildable scheme point
//!   through the `Oram` trait, with the backend byte/crypto counters that
//!   `FrontendStats::backend` now surfaces.
//!
//! Usage: `cargo run --release -p bench --bin backend_hot_path`
//!
//! Flags:
//!
//! * `--quick` — small geometry, short windows (local iteration).
//! * `--smoke` — the CI perf-smoke profile: the **full 1M-block design
//!   point** (so rates are comparable with the checked-in full run) with
//!   short measurement windows, scheme grid skipped.
//! * `--gate <baseline.json>` — after measuring, compare the fresh
//!   encrypted-mode (`aes_global_seed`) optimized accesses/sec against the
//!   same number in `baseline.json` and exit non-zero on a regression of
//!   more than [`GATE_TOLERANCE`].  Rates are machine-dependent, so the gate
//!   is only meaningful against a baseline recorded on comparable hardware —
//!   which is exactly the CI use-case (same runner class every push).
//! * `--out <path>` — redirect the JSON (default `BENCH_backend.json`).

use bench::baseline::LegacyPathOramBackend;
use freecursive::{Oram, OramBuilder, SchemePoint};
use path_oram::{AccessOp, EncryptionMode, OramBackend, OramParams, PathOramBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Result of one measured workload (rate taken from the best of the
/// measurement windows, byte/crypto counters normalised per access over the
/// whole measured run).
struct Measurement {
    accesses: u64,
    accesses_per_sec: f64,
    bytes_per_access: f64,
    max_stash_occupancy: usize,
    buckets_decrypted_per_access: f64,
    buckets_encrypted_per_access: f64,
}

impl Measurement {
    fn ns_per_access(&self) -> f64 {
        1e9 / self.accesses_per_sec
    }

    fn json(&self, indent: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n{indent}  \"accesses\": {},\n{indent}  \"accesses_per_sec\": {:.1},\n\
             {indent}  \"ns_per_access\": {:.1},\n{indent}  \"bytes_moved_per_access\": {:.1},\n\
             {indent}  \"max_stash_occupancy\": {},\n{indent}  \"buckets_decrypted_per_access\": {:.2},\n\
             {indent}  \"buckets_encrypted_per_access\": {:.2}\n{indent}}}",
            self.accesses,
            self.accesses_per_sec,
            self.ns_per_access(),
            self.bytes_per_access,
            self.max_stash_occupancy,
            self.buckets_decrypted_per_access,
            self.buckets_encrypted_per_access,
        );
        s
    }
}

/// Runs the standard mixed read/write workload for `windows` measurement
/// windows of at least `min_accesses` accesses and `min_secs` seconds each
/// (in chunks, so slow configurations still get a bounded run).  The
/// reported rate is the best window — the least-interfered-with estimate on
/// a shared machine; counters are normalised over the full run.
fn measure_backend<B: OramBackend>(
    backend: &mut B,
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
    windows: u32,
) -> Measurement {
    let n = backend.params().num_blocks;
    let leaves = backend.params().num_leaves();
    let block_bytes = backend.params().block_bytes;
    let mut rng = StdRng::seed_from_u64(0xBEAC4);
    let mut posmap: Vec<u64> = (0..n).map(|_| rng.gen_range(0..leaves)).collect();
    let mut out = Vec::new();
    let write_data = vec![0xB5u8; block_bytes];

    let one = |backend: &mut B, i: u64, posmap: &mut [u64], rng: &mut StdRng, out: &mut Vec<u8>| {
        let addr = rng.gen_range(0..n);
        let new_leaf = rng.gen_range(0..leaves);
        let slot = usize::try_from(addr).expect("bench address fits usize");
        let old_leaf = posmap[slot];
        posmap[slot] = new_leaf;
        let op = if i.is_multiple_of(2) {
            AccessOp::Read
        } else {
            AccessOp::Write
        };
        let data = (op == AccessOp::Write).then_some(&write_data[..]);
        backend
            .access_into(op, addr, old_leaf, new_leaf, data, out)
            .expect("benchmark access");
    };

    for i in 0..warmup {
        one(backend, i, &mut posmap, &mut rng, &mut out);
    }
    backend.reset_stats();

    let mut total = 0u64;
    let mut best_rate = 0f64;
    for _ in 0..windows {
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            for i in 0..512 {
                one(backend, done + i, &mut posmap, &mut rng, &mut out);
            }
            done += 512;
            let secs = start.elapsed().as_secs_f64();
            if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
                break;
            }
        }
        let rate = done as f64 / start.elapsed().as_secs_f64();
        best_rate = best_rate.max(rate);
        total += done;
    }
    let stats = backend.stats();
    Measurement {
        accesses: total,
        accesses_per_sec: best_rate,
        bytes_per_access: (stats.bytes_read + stats.bytes_written) as f64 / total as f64,
        max_stash_occupancy: stats.max_stash_occupancy,
        buckets_decrypted_per_access: stats.buckets_decrypted as f64 / total as f64,
        buckets_encrypted_per_access: stats.buckets_encrypted as f64 / total as f64,
    }
}

/// Measures one `Oram` scheme point with a mixed read/write request stream.
fn measure_scheme(
    oram: &mut Box<dyn Oram>,
    warmup: u64,
    min_accesses: u64,
    min_secs: f64,
    max_accesses: u64,
) -> Measurement {
    let n = oram.num_blocks();
    let block_bytes = oram.block_bytes();
    let mut rng = StdRng::seed_from_u64(0x0005_CEEE);
    let mut out = Vec::new();
    let write_data = vec![0x7Eu8; block_bytes];

    let one = |oram: &mut Box<dyn Oram>, i: u64, rng: &mut StdRng, out: &mut Vec<u8>| {
        let addr = rng.gen_range(0..n);
        if i.is_multiple_of(2) {
            oram.read_into(addr, out).expect("benchmark read");
        } else {
            oram.write(addr, &write_data).expect("benchmark write");
        }
    };

    for i in 0..warmup {
        one(oram, i, &mut rng, &mut out);
    }
    oram.reset_stats();

    let start = Instant::now();
    let mut done = 0u64;
    loop {
        for i in 0..64 {
            one(oram, done + i, &mut rng, &mut out);
        }
        done += 64;
        let secs = start.elapsed().as_secs_f64();
        if done >= max_accesses || (done >= min_accesses && secs >= min_secs) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let backend = &oram.stats().backend;
    Measurement {
        accesses: done,
        accesses_per_sec: done as f64 / secs,
        bytes_per_access: (backend.bytes_read + backend.bytes_written) as f64 / done as f64,
        max_stash_occupancy: backend.max_stash_occupancy,
        buckets_decrypted_per_access: backend.buckets_decrypted as f64 / done as f64,
        buckets_encrypted_per_access: backend.buckets_encrypted as f64 / done as f64,
    }
}

fn mode_label(mode: EncryptionMode) -> &'static str {
    match mode {
        EncryptionMode::None => "plaintext",
        EncryptionMode::PerBucketSeed => "aes_per_bucket_seed",
        EncryptionMode::GlobalSeed => "aes_global_seed",
    }
}

/// Allowed fractional regression of encrypted-mode accesses/sec before the
/// `--gate` check fails (20%, absorbing run-to-run noise on shared runners).
const GATE_TOLERANCE: f64 = 0.20;

/// Extracts `"accesses_per_sec"` of the `"optimized"` measurement inside the
/// `"mode": "aes_global_seed"` comparison entry from a `BENCH_backend.json`
/// produced by this binary.
fn parse_encrypted_rate(json: &str) -> Option<f64> {
    let mode = json.find("\"mode\": \"aes_global_seed\"")?;
    let opt = mode + json[mode..].find("\"optimized\"")?;
    let key = "\"accesses_per_sec\": ";
    let rate = opt + json[opt..].find(key)? + key.len();
    let end = json[rate..].find([',', '\n', '}'])?;
    json[rate..rate + end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1));
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_backend.json", |s| s.as_str());

    // Smoke keeps the full design point (rates stay comparable with the
    // checked-in full run) but shortens the windows and skips the grid.
    let num_blocks: u64 = if quick { 1 << 16 } else { 1 << 20 };
    let block_bytes = 64usize;
    let params = OramParams::new(num_blocks, block_bytes, 4);
    // Smoke windows are shorter than the full profile's but numerous enough
    // that the best-of estimate is comparable to the checked-in best-of-3
    // full run; a single short window is too noisy to gate on.
    let (warmup, min_accesses, min_secs, max_accesses, windows) = if smoke {
        (2_000, 4_000, 0.8, 300_000, 3)
    } else if quick {
        (1_000, 2_000, 0.2, 50_000, 2)
    } else {
        (10_000, 20_000, 1.5, 2_000_000, 3)
    };

    {
        let probe = path_oram::BucketCipher::new(EncryptionMode::GlobalSeed, [0u8; 16]);
        eprintln!("AES engine: {}", probe.engine().label());
    }

    let mut encrypted_optimized_rate = 0f64;
    let mut comparison_json = String::new();
    for (i, mode) in [EncryptionMode::None, EncryptionMode::GlobalSeed]
        .into_iter()
        .enumerate()
    {
        eprintln!("measuring backend comparison: {} ...", mode_label(mode));
        let mut legacy = LegacyPathOramBackend::new(params, mode, [1u8; 16]);
        let base = measure_backend(
            &mut legacy,
            warmup,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
        );
        drop(legacy);
        let mut current = PathOramBackend::new(params, mode, [1u8; 16], 0).expect("backend");
        let opt = measure_backend(
            &mut current,
            warmup,
            min_accesses,
            min_secs,
            max_accesses,
            windows,
        );
        if mode == EncryptionMode::GlobalSeed {
            encrypted_optimized_rate = opt.accesses_per_sec;
        }
        let speedup = opt.accesses_per_sec / base.accesses_per_sec;
        eprintln!(
            "  baseline {:>10.0} acc/s   optimized {:>10.0} acc/s   speedup {speedup:.2}x",
            base.accesses_per_sec, opt.accesses_per_sec
        );
        if i > 0 {
            comparison_json.push_str(",\n");
        }
        let _ = write!(
            comparison_json,
            "    {{\n      \"mode\": \"{}\",\n      \"baseline\": {},\n      \"optimized\": {},\n      \"speedup\": {:.2}\n    }}",
            mode_label(mode),
            base.json("      "),
            opt.json("      "),
            speedup,
        );
    }

    let grid_n: u64 = if quick { 1 << 12 } else { 1 << 14 };
    let (g_warm, g_min, g_secs, g_max) = if quick {
        (200, 500, 0.1, 20_000)
    } else {
        (1_000, 2_000, 1.0, 500_000)
    };
    let mut grid_json = String::new();
    let mut first = true;
    // The scheme grid is informational; the smoke profile gates only on the
    // backend comparison and skips it to keep CI fast.
    let all_points = SchemePoint::all_points();
    let grid_points: &[SchemePoint] = if smoke { &[] } else { &all_points };
    for &scheme in grid_points {
        // Phantom's defining 4 KB blocks at grid scale would dwarf the other
        // rows' runtime; the backend comparison above already covers large
        // blocks.
        if scheme == SchemePoint::Phantom4K {
            continue;
        }
        eprintln!("measuring scheme grid: {} ...", scheme.label());
        let mut oram = OramBuilder::for_scheme(scheme)
            .num_blocks(grid_n)
            .block_bytes(block_bytes)
            .build()
            .expect("scheme point builds");
        let m = measure_scheme(&mut oram, g_warm, g_min, g_secs, g_max);
        if !first {
            grid_json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            grid_json,
            "    {{\n      \"scheme\": \"{}\",\n      \"num_blocks\": {grid_n},\n      \"block_bytes\": {block_bytes},\n      \"result\": {}\n    }}",
            scheme.label(),
            m.json("      "),
        );
    }

    let profile = if smoke {
        "smoke"
    } else if quick {
        "quick"
    } else {
        "full"
    };
    let json = format!(
        "{{\n  \"benchmark\": \"backend_hot_path\",\n  \"quick\": {quick},\n  \"profile\": \"{profile}\",\n  \
         \"design_point\": {{\n    \"num_blocks\": {num_blocks},\n    \"block_bytes\": {block_bytes},\n    \
         \"z\": 4,\n    \"levels\": {},\n    \"bucket_bytes\": {},\n    \"stash_capacity\": {}\n  }},\n  \
         \"backend_comparison\": [\n{comparison_json}\n  ],\n  \"scheme_grid\": [\n{grid_json}\n  ]\n}}\n",
        params.levels(),
        params.bucket_bytes(),
        params.stash_capacity,
    );
    std::fs::write(out_path, &json).expect("write BENCH_backend.json");
    eprintln!("wrote {out_path}");

    // Perf-smoke gate: fail on a >20% regression of encrypted-mode
    // accesses/sec against the recorded baseline.
    if let Some(path) = gate_path {
        let baseline =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("gate baseline {path}: {e}"));
        let baseline_rate = parse_encrypted_rate(&baseline)
            .unwrap_or_else(|| panic!("gate baseline {path} has no encrypted optimized rate"));
        let floor = baseline_rate * (1.0 - GATE_TOLERANCE);
        eprintln!(
            "perf gate: encrypted-mode {encrypted_optimized_rate:.0} acc/s vs baseline \
             {baseline_rate:.0} acc/s (floor {floor:.0})"
        );
        if encrypted_optimized_rate < floor {
            eprintln!(
                "perf gate FAILED: encrypted-mode throughput regressed more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("perf gate passed");
    }
}
