//! A frozen copy of the pre-arena Path ORAM backend hot path, kept solely as
//! the measurement baseline for `benches/backend_hot_path.rs` and the
//! `backend_hot_path` binary.
//!
//! This reproduces the allocation behaviour the optimised backend replaced:
//! per-bucket `Vec<Vec<u8>>` storage with a `to_vec()` copy on every path
//! read, owned `Bucket`/`OramBlock` deserialisation (one `Vec` per block), a
//! hash-map stash with an O(stash × levels) `take_matching` eviction scan,
//! and a freshly allocated serialised image per evicted bucket.  Keeping it
//! compilable lets every benchmark run measure the speedup against the same
//! commit it reports numbers for, instead of trusting historical JSON.
//!
//! Do **not** use this for anything but benchmarking: it is functionally
//! equivalent but deliberately unoptimised.

use path_oram::bucket::Bucket;
use path_oram::encryption::{BucketCipher, EncryptionMode};
use path_oram::tree::{block_can_reside, path_linear_indices};
use path_oram::types::{AccessOp, BlockData, BlockId, Leaf, OramBlock};
use path_oram::{OramBackend, OramError, OramParams};
use std::collections::{HashMap, HashSet};

/// Pre-arena untrusted storage: one heap vector per bucket.
#[derive(Debug, Clone)]
struct LegacyStorage {
    buckets: Vec<Vec<u8>>,
}

impl LegacyStorage {
    fn new(params: &OramParams) -> Self {
        Self {
            buckets: vec![Vec::new(); params.num_buckets() as usize],
        }
    }

    fn is_initialized(&self, index: u64) -> bool {
        !self.buckets[index as usize].is_empty()
    }

    fn read_bucket(&self, index: u64) -> &[u8] {
        &self.buckets[index as usize]
    }

    fn write_bucket(&mut self, index: u64, image: Vec<u8>) {
        self.buckets[index as usize] = image;
    }
}

/// Pre-slab stash: a hash map owning one payload vector per block.
#[derive(Debug, Clone, Default)]
struct LegacyStash {
    blocks: HashMap<BlockId, (Leaf, BlockData)>,
    capacity: usize,
}

impl LegacyStash {
    fn take_matching<F>(&mut self, max: usize, mut predicate: F) -> Vec<OramBlock>
    where
        F: FnMut(BlockId, Leaf) -> bool,
    {
        let selected: Vec<BlockId> = self
            .blocks
            .iter()
            .filter(|(addr, (leaf, _))| predicate(**addr, *leaf))
            .map(|(addr, _)| *addr)
            .take(max)
            .collect();
        selected
            .into_iter()
            .map(|addr| {
                let (leaf, data) = self.blocks.remove(&addr).expect("selected block present");
                OramBlock { addr, leaf, data }
            })
            .collect()
    }

    fn check_overflow(&self) -> Result<(), OramError> {
        if self.blocks.len() > self.capacity {
            Err(OramError::StashOverflow {
                occupancy: self.blocks.len(),
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }
}

/// The pre-PR backend: same contract as `path_oram::PathOramBackend`, old
/// data structures and allocation profile.
#[derive(Debug, Clone)]
pub struct LegacyPathOramBackend {
    params: OramParams,
    storage: LegacyStorage,
    cipher: BucketCipher,
    stash: LegacyStash,
    stats: path_oram::BackendStats,
    resident: HashSet<BlockId>,
}

impl LegacyPathOramBackend {
    /// Creates a baseline backend with an empty tree.
    pub fn new(params: OramParams, encryption: EncryptionMode, key: [u8; 16]) -> Self {
        Self {
            storage: LegacyStorage::new(&params),
            cipher: BucketCipher::new(encryption, key),
            stash: LegacyStash {
                blocks: HashMap::new(),
                capacity: params.stash_capacity,
            },
            stats: path_oram::BackendStats::default(),
            resident: HashSet::new(),
            params,
        }
    }

    fn read_path_into_stash(&mut self, path: &[u64]) -> Result<(), OramError> {
        for &bucket_idx in path {
            self.stats.bytes_read += self.params.bucket_bytes() as u64;
            if !self.storage.is_initialized(bucket_idx) {
                continue;
            }
            let mut image = self.storage.read_bucket(bucket_idx).to_vec();
            self.cipher.open(bucket_idx, &mut image);
            let bucket = Bucket::deserialize(&image, &self.params, bucket_idx)?;
            for block in bucket.blocks {
                self.stats.real_blocks_fetched += 1;
                self.stash
                    .blocks
                    .insert(block.addr, (block.leaf, block.data));
            }
        }
        Ok(())
    }

    fn evict_path(&mut self, leaf: Leaf, path: &[u64]) {
        let leaf_level = self.params.leaf_level();
        for (level, &bucket_idx) in path.iter().enumerate().rev() {
            let level = level as u32;
            let taken = self.stash.take_matching(self.params.z, |_, block_leaf| {
                block_can_reside(block_leaf, leaf, level, leaf_level)
            });
            let mut bucket = Bucket::empty(&self.params);
            if self.storage.is_initialized(bucket_idx) {
                let raw = self.storage.read_bucket(bucket_idx);
                bucket.seed = u64::from_le_bytes(raw[..8].try_into().expect("seed header"));
            }
            self.stats.blocks_evicted += taken.len() as u64;
            self.stats.dummies_written += (self.params.z - taken.len()) as u64;
            for block in taken {
                bucket.push(block);
            }
            let mut image = bucket.serialize(&self.params);
            self.cipher.seal(bucket_idx, &mut image);
            self.storage.write_bucket(bucket_idx, image);
            self.stats.bytes_written += self.params.bucket_bytes() as u64;
        }
    }
}

impl OramBackend for LegacyPathOramBackend {
    fn new_backend(
        params: OramParams,
        encryption: EncryptionMode,
        key: [u8; 16],
        _seed: u64,
    ) -> Result<Self, OramError> {
        Ok(Self::new(params, encryption, key))
    }

    fn params(&self) -> &OramParams {
        &self.params
    }

    fn stats(&self) -> &path_oram::BackendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = path_oram::BackendStats::default();
    }

    fn access_into(
        &mut self,
        op: AccessOp,
        addr: BlockId,
        leaf: Leaf,
        new_leaf: Leaf,
        data: Option<&[u8]>,
        out: &mut Vec<u8>,
    ) -> Result<bool, OramError> {
        out.clear();
        if let Some(d) = data {
            if d.len() != self.params.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.params.block_bytes,
                    actual: d.len(),
                });
            }
        }

        if op == AccessOp::Append {
            if self.resident.contains(&addr) {
                return Err(OramError::DuplicateAppend { addr });
            }
            let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
            self.stash.blocks.insert(addr, (new_leaf, payload));
            self.resident.insert(addr);
            self.stats.appends += 1;
            self.stats.max_stash_occupancy =
                self.stats.max_stash_occupancy.max(self.stash.blocks.len());
            self.stash.check_overflow()?;
            return Ok(false);
        }

        if leaf >= self.params.num_leaves() {
            return Err(OramError::LeafOutOfRange {
                leaf,
                num_leaves: self.params.num_leaves(),
            });
        }

        let path = path_linear_indices(leaf, self.params.leaf_level());
        self.read_path_into_stash(&path)?;

        let was_resident = self.resident.contains(&addr);
        if was_resident && !self.stash.blocks.contains_key(&addr) {
            return Err(OramError::BlockNotFound { addr });
        }
        if !was_resident {
            self.stash.blocks.insert(
                addr,
                (
                    new_leaf.min(self.params.num_leaves() - 1),
                    vec![0u8; self.params.block_bytes],
                ),
            );
            self.resident.insert(addr);
        }

        let has_data = match op {
            AccessOp::Read => {
                let entry = self.stash.blocks.get_mut(&addr).expect("block present");
                out.extend_from_slice(&entry.1.clone());
                entry.0 = new_leaf;
                true
            }
            AccessOp::Write => {
                let payload = data.ok_or(OramError::MissingWriteData)?.to_vec();
                let entry = self.stash.blocks.get_mut(&addr).expect("block present");
                entry.1 = payload;
                entry.0 = new_leaf;
                false
            }
            AccessOp::ReadRmv => {
                let (_, payload) = self.stash.blocks.remove(&addr).expect("block present");
                self.resident.remove(&addr);
                out.extend_from_slice(&payload);
                true
            }
            AccessOp::Append => unreachable!("handled above"),
        };

        self.evict_path(leaf, &path);
        self.stats.path_accesses += 1;
        self.stats.max_stash_occupancy =
            self.stats.max_stash_occupancy.max(self.stash.blocks.len());
        self.stash.check_overflow()?;
        Ok(has_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_functionally_equivalent_to_the_optimised_backend() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let params = OramParams::new(512, 32, 4);
        let mut legacy = LegacyPathOramBackend::new(params, EncryptionMode::GlobalSeed, [9u8; 16]);
        let mut current =
            path_oram::PathOramBackend::new(params, EncryptionMode::GlobalSeed, [9u8; 16], 0)
                .unwrap();
        let leaves = params.num_leaves();
        let mut rng = StdRng::seed_from_u64(77);
        let mut posmap: Vec<u64> = (0..512).map(|_| rng.gen_range(0..leaves)).collect();
        for i in 0..1500u64 {
            let addr = rng.gen_range(0..512u64);
            let new_leaf = rng.gen_range(0..leaves);
            let old_leaf = posmap[addr as usize];
            posmap[addr as usize] = new_leaf;
            if rng.gen_bool(0.5) {
                let data = vec![(i % 251) as u8; 32];
                let a = legacy.access(AccessOp::Write, addr, old_leaf, new_leaf, Some(&data));
                let b = current.access(AccessOp::Write, addr, old_leaf, new_leaf, Some(&data));
                assert_eq!(a, b, "access {i}");
            } else {
                let a = legacy.access(AccessOp::Read, addr, old_leaf, new_leaf, None);
                let b = current.access(AccessOp::Read, addr, old_leaf, new_leaf, None);
                assert_eq!(a, b, "access {i}");
            }
        }
        assert_eq!(legacy.stats().bytes_read, current.stats().bytes_read);
        assert_eq!(legacy.stats().bytes_written, current.stats().bytes_written);
    }
}
