//! Shared helpers for the benchmark/experiment binaries.
//!
//! The real content of this crate lives in:
//!
//! * `src/bin/*` — one binary per table/figure of the paper (see DESIGN.md
//!   for the index), each printing the same rows/series the paper reports;
//! * `benches/*` — Criterion micro-benchmarks of the simulator itself;
//! * `../../examples/*` — runnable examples using the public API;
//! * `../../docs/ARCHITECTURE.md` — the workspace-wide map every benchmark
//!   binary measures a slice of;
//! * `../../tests/*` — cross-crate integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use oram_sim::experiments::ExperimentScale;

/// Parses the common `--quick` flag used by every experiment binary: by
/// default the binaries run at paper scale (all benchmarks, long traces);
/// with `--quick` they run the reduced configuration used in CI.
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::Quick
    } else {
        ExperimentScale::Paper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The test binary itself has no --quick argument.
        assert_eq!(scale_from_args(), ExperimentScale::Paper);
    }
}
