//! The analyzer run over the real workspace with the checked-in `Lint.toml`
//! and baseline must report zero unbaselined findings — the same invariant
//! CI enforces, wired into `cargo test` so it cannot be forgotten locally.

use std::path::Path;

#[test]
fn workspace_has_zero_unbaselined_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config_src =
        std::fs::read_to_string(root.join("Lint.toml")).expect("Lint.toml at the workspace root");
    let config = oram_lint::config::parse(&config_src).expect("Lint.toml parses");
    let analysis = oram_lint::run(&root, None, &config).expect("workspace scan");
    assert!(
        analysis.files.iter().any(|f| f.ends_with("backend.rs")),
        "the scan should cover the path-oram backend, got {} files",
        analysis.files.len()
    );
    let baseline_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json at the workspace root");
    let baseline = oram_lint::parse_baseline(&baseline_src).expect("baseline parses");
    let (new, _grandfathered) = oram_lint::apply_baseline(analysis.findings, &baseline);
    assert!(
        new.is_empty(),
        "unbaselined lint findings — fix or waive them in source:\n{}",
        new.iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn repository_policy_is_an_empty_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline_src = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json at the workspace root");
    let baseline = oram_lint::parse_baseline(&baseline_src).expect("baseline parses");
    assert!(
        baseline.is_empty(),
        "the committed baseline must stay empty; found {} grandfathered entr(ies)",
        baseline.len()
    );
}
