//! Golden-fixture tests: each rule class has a fixture under
//! `tests/fixtures/` with exactly one violation at a known location, plus
//! clean fixtures that must produce zero findings.  The fixtures double as
//! living documentation of what each rule catches — see RULES.md.

use oram_lint::engine::analyze_source;
use oram_lint::{Finding, LintConfig};

/// A self-contained config mirroring the shape of the repo's `Lint.toml`
/// (the real file is exercised by `workspace_clean.rs`).
fn fixture_config() -> LintConfig {
    oram_lint::config::parse(
        r#"
[secrets]
idents = ["addr", "of_interest", "unified_addr", "leaf"]
types = ["Stash"]
address_idents = ["addr", "unified_addr", "leaf"]

[unsafe]
allow = ["crates/crypto/src/aesni.rs"]

[[required]]
file = "required_rot.rs"
anchor = "fn access_into"
scopes = ["ct-scope"]
"#,
    )
    .expect("fixture config parses")
}

fn locations(findings: &[Finding]) -> Vec<(&'static str, u32, u32)> {
    findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn secret_branch_fixture_flags_the_if() {
    let findings = analyze_source(
        "secret_branch.rs",
        include_str!("fixtures/secret_branch.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("secret-branch", 6, 8)]);
    assert!(findings[0].message.contains("secret `addr`"));
    assert_eq!(findings[0].snippet, "if addr == of_interest {");
}

#[test]
fn no_alloc_fixture_flags_the_push() {
    let findings = analyze_source(
        "no_alloc.rs",
        include_str!("fixtures/no_alloc.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("no-alloc", 6, 13)]);
    assert!(findings[0].message.contains(".push()"));
}

#[test]
fn no_panic_fixture_flags_the_unwrap() {
    let findings = analyze_source(
        "no_panic.rs",
        include_str!("fixtures/no_panic.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("no-panic", 5, 20)]);
    assert!(findings[0].message.contains(".unwrap()"));
}

#[test]
fn truncating_cast_fixture_flags_the_pr2_pattern() {
    // The PR 2 bug class: a unified `i‖a_i` address (level tag in bits 56+)
    // squeezed through a 32-bit field with `as`, silently dropping the tag.
    let findings = analyze_source(
        "truncating_cast.rs",
        include_str!("fixtures/truncating_cast.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("truncating-cast", 5, 5)]);
    assert!(findings[0].message.contains("unified_addr as u32"));
    assert!(findings[0].message.contains("try_into"));
}

#[test]
fn unsafe_audit_fixture_flags_unlisted_unsafe() {
    let findings = analyze_source(
        "unsafe_audit.rs",
        include_str!("fixtures/unsafe_audit.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("unsafe-audit", 5, 5)]);
    assert!(findings[0].message.contains("audited"));
}

#[test]
fn unsafe_in_an_audited_module_still_needs_a_safety_comment() {
    // Same source, but presented under the allowlisted path: the module
    // check passes, the missing `// SAFETY:` comment still fires.
    let findings = analyze_source(
        "crates/crypto/src/aesni.rs",
        include_str!("fixtures/unsafe_audit.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("unsafe-audit", 5, 5)]);
    assert!(findings[0].message.contains("SAFETY:"));
}

#[test]
fn secret_debug_leak_fixture_flags_the_println() {
    let findings = analyze_source(
        "secret_debug_leak.rs",
        include_str!("fixtures/secret_debug_leak.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("secret-debug-leak", 4, 5)]);
    assert!(findings[0].message.contains("println!"));
    assert!(findings[0].message.contains("addr"));
}

#[test]
fn waived_fixture_is_silent() {
    let findings = analyze_source(
        "waived.rs",
        include_str!("fixtures/waived.rs"),
        &fixture_config(),
    );
    assert_eq!(findings, []);
}

#[test]
fn stale_waiver_fixture_reports_the_waiver_itself() {
    let findings = analyze_source(
        "stale_waiver.rs",
        include_str!("fixtures/stale_waiver.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("annotation", 3, 1)]);
    assert!(findings[0].message.contains("matches no finding"));
}

#[test]
fn required_rot_fixture_reports_the_missing_scope() {
    let findings = analyze_source(
        "required_rot.rs",
        include_str!("fixtures/required_rot.rs"),
        &fixture_config(),
    );
    assert_eq!(locations(&findings), [("missing-scope", 3, 5)]);
    assert!(findings[0].message.contains("rotted"));
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let findings = analyze_source(
        "clean.rs",
        include_str!("fixtures/clean.rs"),
        &fixture_config(),
    );
    assert_eq!(findings, []);
}
