//! Golden fixture: the PR 2 bug class — a level-tagged unified address
//! silently truncated through a 32-bit field.

pub fn bucket_field(unified_addr: u64) -> u32 {
    unified_addr as u32
}
