//! Golden fixture: a panicking call inside a no-panic scope.

// lint: no-panic
pub fn last(values: &[u64]) -> u64 {
    *values.last().unwrap()
}
// lint: end
