//! Golden fixture: a waived finding produces no output.

// lint: ct-scope
pub fn probe(addr: u64, of_interest: u64) -> bool {
    // lint: allow(secret-branch, fixture demonstrating the waiver syntax)
    if addr == of_interest {
        return true;
    }
    false
}
// lint: end
