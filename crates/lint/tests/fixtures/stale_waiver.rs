//! Golden fixture: an unused waiver is itself reported.

// lint: allow(no-alloc, nothing here allocates)
pub fn identity(x: u64) -> u64 {
    x
}
