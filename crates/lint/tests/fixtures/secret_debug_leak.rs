//! Golden fixture: debug-formatting secret state outside tests.

pub fn trace(addr: u64) {
    println!("accessing {addr}");
}
