//! Golden fixture: allocation inside a no-alloc scope.

// lint: no-alloc
pub fn gather(src: &[u8], dst: &mut Vec<u8>) {
    for &b in src {
        dst.push(b);
    }
}
// lint: end
