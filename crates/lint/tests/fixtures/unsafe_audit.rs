//! Golden fixture: `unsafe` outside the audited modules and without a
//! SAFETY comment.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
