//! Golden fixture: a secret-dependent branch inside a ct-scope.

// lint: ct-scope
pub fn classify(addr: u64, of_interest: u64, table: &mut [u64]) -> u64 {
    let mut hits = 0;
    if addr == of_interest {
        hits += 1;
    }
    for slot in table.iter_mut() {
        *slot ^= hits;
    }
    hits
}
// lint: end
