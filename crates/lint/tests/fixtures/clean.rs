//! Golden fixture: fully annotated hot-path code with zero findings.

// lint: ct-scope, no-alloc, no-panic
pub fn xor_fold(words: &[u64; 8]) -> u64 {
    let mut acc = 0u64;
    for w in words.iter() {
        acc ^= *w;
    }
    acc
}
// lint: end

pub fn widen(addr: u64) -> u128 {
    u128::from(addr)
}
