//! Golden fixture: a required anchor whose scope annotation is missing.

pub fn access_into(x: u64) -> u64 {
    x
}
