//! `oram-lint` command-line interface.
//!
//! ```text
//! cargo run -p oram-lint -- --workspace            # lint everything
//! cargo run -p oram-lint -- crates/path-oram       # lint a subtree
//! cargo run -p oram-lint -- --workspace --json report.json
//! cargo run -p oram-lint -- --workspace --write-baseline
//! ```
//!
//! Exit codes: 0 — clean (or fully baselined); 1 — new findings; 2 — usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    paths: Vec<PathBuf>,
}

const USAGE: &str = "usage: oram-lint [--workspace] [--root DIR] [--config FILE] \
[--baseline FILE] [--json FILE|-] [--write-baseline] [PATH...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        json: None,
        write_baseline: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err(format!("give --workspace or explicit paths\n{USAGE}"));
    }
    if args.workspace && !args.paths.is_empty() {
        return Err(format!("--workspace and explicit paths conflict\n{USAGE}"));
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = &args.root;

    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("Lint.toml"));
    let config_src = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = oram_lint::config::parse(&config_src).map_err(|e| e.to_string())?;

    let paths = if args.workspace {
        None
    } else {
        Some(args.paths.as_slice())
    };
    let analysis = oram_lint::run(root, paths, &config).map_err(|e| format!("scan failed: {e}"))?;

    if args.write_baseline {
        let path = args
            .baseline
            .clone()
            .unwrap_or_else(|| root.join("lint-baseline.json"));
        std::fs::write(&path, oram_lint::baseline_json(&analysis.findings))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "wrote {} finding(s) to {}",
            analysis.findings.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(src) => oram_lint::parse_baseline(&src)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
        Err(_) => Vec::new(), // no baseline file means an empty baseline
    };
    let (new, grandfathered) = oram_lint::apply_baseline(analysis.findings, &baseline);

    if let Some(json_path) = &args.json {
        let report = oram_lint::report_json(&new, &grandfathered, analysis.files.len());
        if json_path.as_os_str() == "-" {
            print!("{report}");
        } else {
            std::fs::write(json_path, report)
                .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        }
    }

    for finding in &new {
        println!("{finding}");
        if !finding.snippet.is_empty() {
            println!("    | {}", finding.snippet);
        }
    }
    println!(
        "oram-lint: {} file(s), {} new finding(s), {} baselined",
        analysis.files.len(),
        new.len(),
        grandfathered.len()
    );
    Ok(if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("oram-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
