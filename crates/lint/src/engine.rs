//! The scope-tracked rule engine.
//!
//! Scopes are opened and closed by in-source annotations:
//!
//! ```text
//! /* lint: ct-scope, no-alloc */  — open a scope with the listed kinds
//! /* lint: end */                 — close the innermost scope
//! /* lint: allow(rule, reason) */ — waive `rule` on this or the next line
//! ```
//!
//! (written as `//`-style line comments in real code; block comments work
//! too).  Scope rules (`secret-branch`, `no-alloc`, `no-panic`) fire only
//! inside a scope carrying their kind; `truncating-cast`, `unsafe-audit`,
//! and `secret-debug-leak` apply file-wide.  `#[cfg(test)]` items and
//! modules are exempt from every rule.
//!
//! The engine works on the token stream — no AST — so rules are scoped,
//! pattern-shaped heuristics by design.  What they cannot see (a branch
//! hidden behind `Iterator::position`, a data-dependent load) is documented
//! in `RULES.md`; what they flag spuriously is waived in source with a
//! reason, which doubles as the audit trail the security argument wants.

use crate::config::LintConfig;
use crate::findings::Finding;
use crate::lexer::{lex, TokKind, Token};
use std::collections::HashSet;

/// Rule identifiers (stable: they appear in waivers, baselines, reports).
pub const SECRET_BRANCH: &str = "secret-branch";
pub const NO_ALLOC: &str = "no-alloc";
pub const NO_PANIC: &str = "no-panic";
pub const TRUNCATING_CAST: &str = "truncating-cast";
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
pub const SECRET_DEBUG_LEAK: &str = "secret-debug-leak";
pub const MISSING_SCOPE: &str = "missing-scope";
pub const ANNOTATION: &str = "annotation";

/// Every rule a waiver may name.
pub const ALL_RULES: &[&str] = &[
    SECRET_BRANCH,
    NO_ALLOC,
    NO_PANIC,
    TRUNCATING_CAST,
    UNSAFE_AUDIT,
    SECRET_DEBUG_LEAK,
    MISSING_SCOPE,
    ANNOTATION,
];

/// Scope-kind bits.
const K_CT: u8 = 1;
const K_NO_ALLOC: u8 = 2;
const K_NO_PANIC: u8 = 4;

/// Narrowing cast targets (the PR 2 bug class: a 64-bit unified address,
/// level tag in bits 56+, silently truncated through a 4-byte field).
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Allocation-capable method calls flagged inside `no-alloc` scopes.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "insert",
    "append",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "clone",
];

/// Panicking method calls flagged inside `no-panic` scopes.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Panicking macros flagged inside `no-panic` scopes.  `assert!` and
/// friends are deliberately absent: invariant checks are wanted on the hot
/// path, and their failure is a bug regardless of what the linter thinks.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Console-output macros: leak secrets to anyone watching the terminal.
const CONSOLE_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Formatting macros that materialise values into strings.
const FORMAT_MACROS: &[&str] = &["format", "write", "writeln"];

struct Scope {
    kinds: u8,
    line: u32,
}

struct Waiver {
    line: u32,
    rule: String,
    used: bool,
}

struct Analyzer<'a> {
    file: &'a str,
    lines: Vec<&'a str>,
    toks: Vec<Token>,
    config: &'a LintConfig,
    findings: Vec<Finding>,
    emitted: HashSet<(&'static str, u32)>,
    waivers: Vec<Waiver>,
}

/// Runs every rule over one file's source.  `file` is the workspace-relative
/// path used in findings and matched against config path suffixes.
pub fn analyze_source(file: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let mut a = Analyzer {
        file,
        lines: source.lines().collect(),
        toks: lex(source),
        config,
        findings: Vec::new(),
        emitted: HashSet::new(),
        waivers: Vec::new(),
    };
    a.run();
    a.findings
        .sort_by(|x, y| (x.line, x.col, x.rule).cmp(&(y.line, y.col, y.rule)));
    a.findings
}

impl Analyzer<'_> {
    fn run(&mut self) {
        // Pass 1: directives — scope masks per code token, waivers,
        // annotation diagnostics.
        let (codes, masks) = self.scan_directives();
        // Pass 2: `#[cfg(test)]` regions over the code tokens.
        let in_test = self.mark_test_regions(&codes);
        // Pass 3: the rules.
        self.check_tokens(&codes, &masks, &in_test);
        self.check_required_scopes(&codes, &masks, &in_test);
        // Unused waivers rot just like stale scopes: report them.
        for w in std::mem::take(&mut self.waivers) {
            if !w.used {
                self.push_raw(
                    ANNOTATION,
                    w.line,
                    1,
                    format!("waiver for `{}` matches no finding; remove it", w.rule),
                );
            }
        }
    }

    // -- pass 1: directives ------------------------------------------------

    /// Walks the full token stream, interpreting `lint:` comments.  Returns
    /// the code-token indices and the scope mask active at each.
    fn scan_directives(&mut self) -> (Vec<usize>, Vec<u8>) {
        let mut stack: Vec<Scope> = Vec::new();
        let mut codes = Vec::new();
        let mut masks = Vec::new();
        for i in 0..self.toks.len() {
            let tok = self.toks[i].clone();
            if !tok.is_comment() {
                codes.push(i);
                masks.push(stack.iter().fold(0u8, |m, s| m | s.kinds));
                continue;
            }
            let body = tok.text.trim();
            // Doc comments (`///`, `//!`) never carry directives, so prose
            // that merely *mentions* the annotation syntax is inert.
            if matches!(tok.kind, TokKind::LineComment)
                && (tok.text.starts_with('/') || tok.text.starts_with('!'))
            {
                continue;
            }
            let Some(directive) = body.strip_prefix("lint:") else {
                continue;
            };
            let directive = directive.trim();
            if directive == "end" {
                if stack.pop().is_none() {
                    self.push_raw(
                        ANNOTATION,
                        tok.line,
                        tok.col,
                        "`lint: end` with no open scope".to_string(),
                    );
                }
            } else if let Some(args) = directive
                .strip_prefix("allow(")
                .and_then(|s| s.strip_suffix(')'))
            {
                match args.split_once(',') {
                    Some((rule, reason)) if !reason.trim().is_empty() => {
                        let rule = rule.trim().to_string();
                        if ALL_RULES.contains(&rule.as_str()) {
                            self.waivers.push(Waiver {
                                line: tok.line,
                                rule,
                                used: false,
                            });
                        } else {
                            self.push_raw(
                                ANNOTATION,
                                tok.line,
                                tok.col,
                                format!("waiver names unknown rule `{rule}`"),
                            );
                        }
                    }
                    _ => self.push_raw(
                        ANNOTATION,
                        tok.line,
                        tok.col,
                        "waiver needs a reason: `lint: allow(rule, reason)`".to_string(),
                    ),
                }
            } else {
                let mut kinds = 0u8;
                let mut ok = true;
                for part in directive.split(',') {
                    match part.trim() {
                        "ct-scope" => kinds |= K_CT,
                        "no-alloc" => kinds |= K_NO_ALLOC,
                        "no-panic" => kinds |= K_NO_PANIC,
                        other => {
                            ok = false;
                            self.push_raw(
                                ANNOTATION,
                                tok.line,
                                tok.col,
                                format!("unknown lint directive `{other}`"),
                            );
                        }
                    }
                }
                if ok && kinds != 0 {
                    stack.push(Scope {
                        kinds,
                        line: tok.line,
                    });
                }
            }
        }
        for scope in stack {
            self.push_raw(
                ANNOTATION,
                scope.line,
                1,
                "scope opened here is never closed with `lint: end`".to_string(),
            );
        }
        (codes, masks)
    }

    // -- pass 2: cfg(test) regions -----------------------------------------

    /// Marks code tokens inside `#[cfg(test)]` items (including whole test
    /// modules).  `#[cfg(not(test))]` and `#[cfg_attr(test, …)]` are *not*
    /// test regions.
    fn mark_test_regions(&self, codes: &[usize]) -> Vec<bool> {
        let n = codes.len();
        let mut in_test = vec![false; n];
        let text = |k: usize| self.toks[codes[k]].text.as_str();
        let mut k = 0;
        while k < n {
            if !(text(k) == "#" && k + 1 < n && text(k + 1) == "[") {
                k += 1;
                continue;
            }
            let Some(close) = self.matching(codes, k + 1, "[", "]") else {
                break;
            };
            let attr: Vec<&str> = (k + 2..close).map(text).collect();
            let is_test =
                attr.first() == Some(&"cfg") && attr.contains(&"test") && !attr.contains(&"not");
            if !is_test {
                k = close + 1;
                continue;
            }
            // Skip further attributes, then find the item body: the first
            // `{` or `;` outside parens/brackets.
            let mut m = close + 1;
            while m + 1 < n && text(m) == "#" && text(m + 1) == "[" {
                match self.matching(codes, m + 1, "[", "]") {
                    Some(c) => m = c + 1,
                    None => break,
                }
            }
            let mut depth = 0i32;
            while m < n {
                match text(m) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            let end = if m < n && text(m) == "{" {
                self.matching(codes, m, "{", "}").unwrap_or(n - 1)
            } else {
                m.min(n - 1)
            };
            for flag in in_test.iter_mut().take(end + 1).skip(k) {
                *flag = true;
            }
            k = end + 1;
        }
        in_test
    }

    /// Index of the token matching the opener at `codes[start]`.
    fn matching(&self, codes: &[usize], start: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0i32;
        for (k, &i) in codes.iter().enumerate().skip(start) {
            let t = self.toks[i].text.as_str();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }

    // -- pass 3: rules -----------------------------------------------------

    fn check_tokens(&mut self, codes: &[usize], masks: &[u8], in_test: &[bool]) {
        let n = codes.len();
        let mut stmt: Vec<usize> = Vec::new(); // code-token indices of the current statement
        for k in 0..n {
            if in_test[k] {
                stmt.clear();
                continue;
            }
            let mask = masks[k];
            self.rule_unsafe_audit(codes, k);
            self.rule_debug_leak(codes, k, in_test);
            self.rule_truncating_cast(codes, k);
            if mask & K_NO_ALLOC != 0 {
                self.rule_no_alloc(codes, k);
            }
            if mask & K_NO_PANIC != 0 {
                self.rule_no_panic(codes, k);
            }
            if mask & K_CT != 0 {
                self.rule_secret_question(codes, k);
            }
            match self.tok(codes, k).text.as_str() {
                "{" => {
                    if masks
                        .get(stmt.first().copied().unwrap_or(k))
                        .copied()
                        .unwrap_or(0)
                        & K_CT
                        != 0
                    {
                        self.check_condition(codes, &stmt);
                        self.check_shortcircuit(codes, &stmt);
                    }
                    stmt.clear();
                }
                ";" | "}" | "," => {
                    if masks
                        .get(stmt.first().copied().unwrap_or(k))
                        .copied()
                        .unwrap_or(0)
                        & K_CT
                        != 0
                    {
                        self.check_shortcircuit(codes, &stmt);
                    }
                    stmt.clear();
                }
                _ => stmt.push(k),
            }
        }
    }

    fn tok(&self, codes: &[usize], k: usize) -> &Token {
        &self.toks[codes[k]]
    }

    fn text_at(&self, codes: &[usize], k: usize) -> Option<&str> {
        codes.get(k).map(|&i| self.toks[i].text.as_str())
    }

    fn is_secret(&self, name: &str) -> bool {
        self.config.secret_idents.iter().any(|s| s == name)
    }

    /// `if`/`while`/`match` whose condition region (keyword → `{`) mentions a
    /// secret identifier.
    fn check_condition(&mut self, codes: &[usize], stmt: &[usize]) {
        let Some(pos) = stmt.iter().position(|&k| {
            let t = self.tok(codes, k);
            t.kind == TokKind::Ident && matches!(t.text.as_str(), "if" | "while" | "match")
        }) else {
            return;
        };
        let keyword = self.tok(codes, stmt[pos]).text.clone();
        for &k in &stmt[pos + 1..] {
            let t = self.tok(codes, k);
            if t.kind == TokKind::Ident && self.is_secret(&t.text) {
                let (line, col, name) = (t.line, t.col, t.text.clone());
                self.push(
                    SECRET_BRANCH,
                    line,
                    col,
                    format!("`{keyword}` in ct-scope conditioned on secret `{name}`"),
                );
                return;
            }
        }
    }

    /// Short-circuit `&&`/`||` in a statement that also mentions a secret:
    /// evaluation of the right-hand side is itself a branch.
    fn check_shortcircuit(&mut self, codes: &[usize], stmt: &[usize]) {
        let has_secret = stmt.iter().any(|&k| {
            let t = self.tok(codes, k);
            t.kind == TokKind::Ident && self.is_secret(&t.text)
        });
        if !has_secret {
            return;
        }
        for (j, &k) in stmt.iter().enumerate() {
            let t = self.tok(codes, k);
            if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "&&" | "||") {
                continue;
            }
            // Binary position only: `&&x` is a double reference, not an op.
            let binary = j > 0 && {
                let p = self.tok(codes, stmt[j - 1]);
                matches!(
                    p.kind,
                    TokKind::Ident | TokKind::Num | TokKind::Str | TokKind::Char
                ) || matches!(p.text.as_str(), ")" | "]")
            };
            if binary {
                let (line, col, op) = (t.line, t.col, t.text.clone());
                self.push(
                    SECRET_BRANCH,
                    line,
                    col,
                    format!("short-circuit `{op}` in ct-scope involving a secret identifier"),
                );
                return;
            }
        }
    }

    /// `secret?` — error propagation directly conditioned on a secret value.
    fn rule_secret_question(&mut self, codes: &[usize], k: usize) {
        let t = self.tok(codes, k);
        if t.text != "?" || t.kind != TokKind::Punct {
            return;
        }
        if self.text_at(codes, k + 1) == Some("Sized") {
            return; // `?Sized` bound
        }
        if k == 0 {
            return;
        }
        let prev = self.tok(codes, k - 1);
        if prev.kind == TokKind::Ident && self.is_secret(&prev.text) {
            let (line, col, name) = (t.line, t.col, prev.text.clone());
            self.push(
                SECRET_BRANCH,
                line,
                col,
                format!("`?` in ct-scope propagates on secret `{name}`"),
            );
        }
    }

    fn rule_no_alloc(&mut self, codes: &[usize], k: usize) {
        let t = self.tok(codes, k);
        let next = self.text_at(codes, k + 1);
        let next2 = self.text_at(codes, k + 2);
        if t.kind == TokKind::Ident {
            let ctor = match (t.text.as_str(), next, next2) {
                ("Vec", Some("::"), Some(m @ ("new" | "with_capacity" | "from"))) => Some(m),
                ("Box", Some("::"), Some(m @ "new")) => Some(m),
                ("String", Some("::"), Some(m @ ("new" | "with_capacity" | "from"))) => Some(m),
                _ => None,
            };
            if let Some(m) = ctor {
                let msg = format!("`{}::{m}` allocates inside a no-alloc scope", t.text);
                let (line, col) = (t.line, t.col);
                self.push(NO_ALLOC, line, col, msg);
                return;
            }
            if matches!(t.text.as_str(), "vec" | "format") && next == Some("!") {
                let msg = format!("`{}!` allocates inside a no-alloc scope", t.text);
                let (line, col) = (t.line, t.col);
                self.push(NO_ALLOC, line, col, msg);
                return;
            }
        }
        if t.text == "." && t.kind == TokKind::Punct {
            if let (Some(m), Some("(")) = (next, next2) {
                if ALLOC_METHODS.contains(&m) {
                    let method = self.tok(codes, k + 1).clone();
                    self.push(
                        NO_ALLOC,
                        method.line,
                        method.col,
                        format!("`.{}()` may allocate inside a no-alloc scope", method.text),
                    );
                }
            }
        }
    }

    fn rule_no_panic(&mut self, codes: &[usize], k: usize) {
        let t = self.tok(codes, k);
        let next = self.text_at(codes, k + 1);
        let next2 = self.text_at(codes, k + 2);
        if t.text == "." && t.kind == TokKind::Punct {
            if let (Some(m), Some("(")) = (next, next2) {
                if PANIC_METHODS.contains(&m) {
                    let method = self.tok(codes, k + 1).clone();
                    self.push(
                        NO_PANIC,
                        method.line,
                        method.col,
                        format!("`.{}()` can panic inside a no-panic scope", method.text),
                    );
                }
            }
            return;
        }
        if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) && next == Some("!")
        {
            let msg = format!("`{}!` inside a no-panic scope", t.text);
            let (line, col) = (t.line, t.col);
            self.push(NO_PANIC, line, col, msg);
            return;
        }
        // Direct indexing `expr[i]` panics on out-of-bounds.  Literal-only
        // subscripts (`buf[..8]`, `arr[0]`) are compile-checkable shapes and
        // exempt; `$metavar` subscripts in macro definitions are unjudgeable.
        if t.text == "[" && t.kind == TokKind::Punct && k > 0 {
            let prev = self.tok(codes, k - 1);
            let indexable = matches!(prev.kind, TokKind::Ident) && !is_keyword(&prev.text)
                || matches!(prev.text.as_str(), ")" | "]");
            if !indexable {
                return;
            }
            let Some(close) = self.matching(codes, k, "[", "]") else {
                return;
            };
            let mut all_literal = true;
            let mut has_metavar = false;
            for j in k + 1..close {
                let inner = self.tok(codes, j);
                match inner.kind {
                    TokKind::Num => {}
                    TokKind::Punct if inner.text == "$" => has_metavar = true,
                    TokKind::Punct => {}
                    _ => all_literal = false,
                }
            }
            if !all_literal && !has_metavar && close > k + 1 {
                let (line, col) = (t.line, t.col);
                self.push(
                    NO_PANIC,
                    line,
                    col,
                    "direct indexing can panic inside a no-panic scope; \
                     use `get`/`get_mut` or waive with the bound invariant"
                        .to_string(),
                );
            }
        }
    }

    /// `expr as u8/u16/u32/…` where the expression mentions an
    /// address/leaf-typed identifier.  File-wide: truncation corrupts data
    /// no matter which function it sits in.
    fn rule_truncating_cast(&mut self, codes: &[usize], k: usize) {
        let t = self.tok(codes, k);
        if t.kind != TokKind::Ident || t.text != "as" {
            return;
        }
        let Some(target) = self.text_at(codes, k + 1) else {
            return;
        };
        if !NARROW_TYPES.contains(&target) {
            return;
        }
        let target = target.to_string();
        // Walk the postfix expression backwards, collecting identifiers.
        let mut j = k as i64 - 1;
        let mut depth = 0i32;
        let mut culprit: Option<Token> = None;
        while j >= 0 {
            let cur = self.tok(codes, j as usize);
            let prev_text = if j > 0 {
                Some(self.tok(codes, j as usize - 1).text.as_str())
            } else {
                None
            };
            match cur.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    // A closed group at depth 0 continues only as a call
                    // (`f(x) as u32`) or method chain.
                    if depth == 0
                        && !matches!(prev_text, Some(".") | Some("::"))
                        && !prev_text.is_some_and(|p| {
                            p.chars()
                                .next()
                                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                        })
                    {
                        break;
                    }
                }
                "." | "::" => {}
                _ if depth > 0 => {
                    if cur.kind == TokKind::Ident && self.is_address(&cur.text) {
                        culprit = Some(cur.clone());
                    }
                }
                _ if cur.kind == TokKind::Ident && !is_keyword(&cur.text) => {
                    if self.is_address(&cur.text) {
                        culprit = Some(cur.clone());
                    }
                    if !matches!(prev_text, Some(".") | Some("::")) {
                        break;
                    }
                }
                _ if cur.kind == TokKind::Num => {
                    if !matches!(prev_text, Some(".")) {
                        break;
                    }
                }
                _ => break,
            }
            j -= 1;
        }
        if let Some(culprit) = culprit {
            self.push(
                TRUNCATING_CAST,
                culprit.line,
                culprit.col,
                format!(
                    "`{} as {target}` can silently truncate an address/leaf value; \
                     use `try_into`/`try_from` or waive with a range argument",
                    culprit.text
                ),
            );
        }
    }

    fn is_address(&self, name: &str) -> bool {
        self.config.address_idents.iter().any(|s| s == name)
    }

    /// Every `unsafe` must sit in an allowlisted module and carry a nearby
    /// `// SAFETY:` comment.
    fn rule_unsafe_audit(&mut self, codes: &[usize], k: usize) {
        let t = self.tok(codes, k);
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            return;
        }
        let (line, col) = (t.line, t.col);
        let allowed = self
            .config
            .unsafe_allow
            .iter()
            .any(|suffix| self.file.ends_with(suffix.as_str()));
        if !allowed {
            self.push(
                UNSAFE_AUDIT,
                line,
                col,
                "`unsafe` outside the audited modules listed in Lint.toml".to_string(),
            );
        }
        // A SAFETY comment within the five preceding lines (above any
        // attributes) or trailing on the same/next line satisfies the audit.
        let documented = self.toks.iter().any(|c| {
            c.is_comment() && c.line + 5 >= line && c.line <= line + 1 && c.text.contains("SAFETY:")
        });
        if !documented {
            self.push(
                UNSAFE_AUDIT,
                line,
                col,
                "`unsafe` without a `// SAFETY:` comment explaining the invariant".to_string(),
            );
        }
    }

    /// Formatting of secret values/types outside `#[cfg(test)]`.
    fn rule_debug_leak(&mut self, codes: &[usize], k: usize, in_test: &[bool]) {
        let t = self.tok(codes, k);
        if t.kind != TokKind::Ident || self.text_at(codes, k + 1) != Some("!") {
            return;
        }
        let console = CONSOLE_MACROS.contains(&t.text.as_str());
        let fmt = FORMAT_MACROS.contains(&t.text.as_str());
        if !console && !fmt {
            return;
        }
        let Some(open) = codes.get(k + 2).map(|&i| self.toks[i].text.as_str()) else {
            return;
        };
        let (open, close) = match open {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return,
        };
        let Some(end) = self.matching(codes, k + 2, open, close) else {
            return;
        };
        let macro_name = t.text.clone();
        let (line, col) = (t.line, t.col);
        for (&i, &arg_in_test) in codes[k + 3..end].iter().zip(&in_test[k + 3..end]) {
            if arg_in_test {
                continue;
            }
            let arg = &self.toks[i];
            let leaked = match arg.kind {
                TokKind::Ident => {
                    self.config.secret_types.iter().any(|s| s == &arg.text)
                        || (console && self.is_secret(&arg.text))
                }
                // Inline captures: `"{leaf}"`, `"{stash:?}"`.
                TokKind::Str => self.str_captures_secret(&arg.text, console),
                _ => false,
            };
            if leaked {
                let what = arg.text.clone();
                self.push(
                    SECRET_DEBUG_LEAK,
                    line,
                    col,
                    format!("`{macro_name}!` formats secret-listed `{what}` outside tests"),
                );
                return;
            }
        }
    }

    /// Does a format string contain `{name}` / `{name:…}` for a secret?
    fn str_captures_secret(&self, s: &str, console: bool) -> bool {
        let mut rest = s;
        while let Some(start) = rest.find('{') {
            rest = &rest[start + 1..];
            let Some(end) = rest.find(['}', ':']) else {
                break;
            };
            let name = &rest[..end];
            if self.config.secret_types.iter().any(|t| t == name)
                || (console && self.is_secret(name))
            {
                return true;
            }
            rest = &rest[end..];
        }
        false
    }

    /// The annotation-rot self-check: `Lint.toml`-required anchors must be
    /// covered by scopes of every required kind.
    fn check_required_scopes(&mut self, codes: &[usize], masks: &[u8], in_test: &[bool]) {
        let required: Vec<_> = self
            .config
            .required
            .iter()
            .filter(|r| self.file.ends_with(r.file.as_str()))
            .cloned()
            .collect();
        for req in required {
            let anchor: Vec<String> = lex(&req.anchor)
                .into_iter()
                .filter(|t| !t.is_comment())
                .map(|t| t.text)
                .collect();
            if anchor.is_empty() {
                continue;
            }
            let want = req.scopes.iter().fold(0u8, |m, s| {
                m | match s.as_str() {
                    "ct-scope" => K_CT,
                    "no-alloc" => K_NO_ALLOC,
                    "no-panic" => K_NO_PANIC,
                    _ => 0,
                }
            });
            let mut first_seen: Option<(u32, u32)> = None;
            let mut satisfied = false;
            for k in 0..codes.len() {
                if in_test[k] || k + anchor.len() > codes.len() {
                    continue;
                }
                let matches = anchor
                    .iter()
                    .enumerate()
                    .all(|(d, want_text)| self.tok(codes, k + d).text == *want_text);
                if !matches {
                    continue;
                }
                let t = self.tok(codes, k);
                first_seen.get_or_insert((t.line, t.col));
                if masks[k] & want == want {
                    satisfied = true;
                    break;
                }
            }
            if satisfied {
                continue;
            }
            let msg = match first_seen {
                Some(_) => format!(
                    "`{}` is required to be inside {} scope(s) but is not — \
                     the annotation has rotted",
                    req.anchor,
                    req.scopes.join(" + ")
                ),
                None => format!(
                    "required anchor `{}` not found in this file — \
                     update Lint.toml or restore the code",
                    req.anchor
                ),
            };
            let (line, col) = first_seen.unwrap_or((1, 1));
            self.push(MISSING_SCOPE, line, col, msg);
        }
    }

    // -- emission ----------------------------------------------------------

    /// Emits a finding unless a waiver covers it; one finding per
    /// (rule, line).
    fn push(&mut self, rule: &'static str, line: u32, col: u32, message: String) {
        for w in &mut self.waivers {
            if w.rule == rule && (w.line == line || w.line + 1 == line) {
                w.used = true;
                return;
            }
        }
        if !self.emitted.insert((rule, line)) {
            return;
        }
        self.push_raw(rule, line, col, message);
    }

    /// Emits without waiver/dedup processing (annotation diagnostics).
    fn push_raw(&mut self, rule: &'static str, line: u32, col: u32, message: String) {
        let snippet = self
            .lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        self.findings.push(Finding {
            rule,
            file: self.file.to_string(),
            line,
            col,
            message,
            snippet,
        });
    }
}

/// Keywords that can directly precede `[` or appear in expressions without
/// being value identifiers.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
    )
}
