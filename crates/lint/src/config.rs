//! `Lint.toml` — the checked-in configuration naming secret identifiers,
//! address-typed identifiers, audited-unsafe modules, and required scopes.
//!
//! The workspace is offline and the linter std-only, so this is a hand-rolled
//! parser for the small TOML subset the config actually uses: `[section]`
//! tables, `[[section]]` arrays of tables, string values, and (possibly
//! multi-line) arrays of strings.  Full-line `#` comments are allowed;
//! inline comments are not.

/// A scope that `Lint.toml` requires to exist, so annotations cannot rot:
/// the token sequence `anchor` in `file` must sit inside scopes of every
/// kind in `scopes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredScope {
    /// Workspace-relative path suffix of the file (e.g.
    /// `crates/path-oram/src/backend.rs`).
    pub file: String,
    /// Source text to locate, matched as a token sequence (e.g.
    /// `fn access_into`).  Satisfied if *any* occurrence is covered.
    pub anchor: String,
    /// Scope kinds that must be active: `ct-scope`, `no-alloc`, `no-panic`.
    pub scopes: Vec<String>,
}

/// Parsed `Lint.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Identifiers carrying secret values (leaf labels, block addresses,
    /// stash metadata, PLB tags): branching on these inside a `ct-scope` is
    /// flagged.
    pub secret_idents: Vec<String>,
    /// Types whose Debug/Display output would reveal secrets; formatting
    /// them outside `#[cfg(test)]` is flagged.
    pub secret_types: Vec<String>,
    /// Identifiers holding addresses/leaves whose narrowing `as` casts are
    /// flagged (the PR 2 truncation bug class).
    pub address_idents: Vec<String>,
    /// Files allowed to contain `unsafe` (path suffixes).
    pub unsafe_allow: Vec<String>,
    /// Path substrings excluded from the workspace walk.
    pub exclude: Vec<String>,
    /// Scopes that must exist (the annotation-rot self-check).
    pub required: Vec<RequiredScope>,
}

/// A config-file syntax error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parses the supported TOML subset into a [`LintConfig`].
pub fn parse(source: &str) -> Result<LintConfig, ConfigError> {
    let mut config = LintConfig::default();
    let mut section = String::new();
    let mut lines = source.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim();
            if name != "required" {
                return Err(err(lineno, format!("unknown array of tables [[{name}]]")));
            }
            config.required.push(RequiredScope {
                file: String::new(),
                anchor: String::new(),
                scopes: Vec::new(),
            });
            section = "required".into();
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            match section.as_str() {
                "secrets" | "unsafe" | "scan" => {}
                other => return Err(err(lineno, format!("unknown section [{other}]"))),
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let mut value = value.trim().to_string();
        // Multi-line arrays: accumulate until the closing bracket.
        if value.starts_with('[') {
            while !value.trim_end().ends_with(']') {
                match lines.next() {
                    Some((_, cont)) => {
                        value.push(' ');
                        value.push_str(cont.trim());
                    }
                    None => return Err(err(lineno, "unterminated array")),
                }
            }
        }
        match (section.as_str(), key) {
            ("secrets", "idents") => config.secret_idents = parse_array(&value, lineno)?,
            ("secrets", "types") => config.secret_types = parse_array(&value, lineno)?,
            ("secrets", "address_idents") => config.address_idents = parse_array(&value, lineno)?,
            ("unsafe", "allow") => config.unsafe_allow = parse_array(&value, lineno)?,
            ("scan", "exclude") => config.exclude = parse_array(&value, lineno)?,
            ("required", "file") => {
                required_mut(&mut config, lineno)?.file = parse_string(&value, lineno)?;
            }
            ("required", "anchor") => {
                required_mut(&mut config, lineno)?.anchor = parse_string(&value, lineno)?;
            }
            ("required", "scopes") => {
                required_mut(&mut config, lineno)?.scopes = parse_array(&value, lineno)?;
            }
            (s, k) => {
                return Err(err(lineno, format!("unknown key `{k}` in section [{s}]")));
            }
        }
    }
    for (i, req) in config.required.iter().enumerate() {
        if req.file.is_empty() || req.anchor.is_empty() || req.scopes.is_empty() {
            return Err(err(
                0,
                format!("[[required]] entry {i} needs `file`, `anchor`, and `scopes`"),
            ));
        }
    }
    Ok(config)
}

fn required_mut(config: &mut LintConfig, line: u32) -> Result<&mut RequiredScope, ConfigError> {
    config
        .required
        .last_mut()
        .ok_or_else(|| err(line, "key outside a [[required]] entry"))
}

fn parse_string(value: &str, line: u32) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{v}`")))
}

fn parse_array(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected an array, got `{v}`")))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
# comment
[secrets]
idents = ["leaf", "addr"]
types = ["Stash"]
address_idents = [
    "addr",
    "unified",
]

[unsafe]
allow = ["crates/crypto/src/aesni.rs"]

[scan]
exclude = ["crates/shims/"]

[[required]]
file = "crates/path-oram/src/backend.rs"
anchor = "fn access_into"
scopes = ["ct-scope", "no-alloc"]

[[required]]
file = "b.rs"
anchor = "fn g"
scopes = ["no-panic"]
"#;
        let cfg = parse(src).unwrap();
        assert_eq!(cfg.secret_idents, ["leaf", "addr"]);
        assert_eq!(cfg.secret_types, ["Stash"]);
        assert_eq!(cfg.address_idents, ["addr", "unified"]);
        assert_eq!(cfg.unsafe_allow, ["crates/crypto/src/aesni.rs"]);
        assert_eq!(cfg.exclude, ["crates/shims/"]);
        assert_eq!(cfg.required.len(), 2);
        assert_eq!(cfg.required[0].anchor, "fn access_into");
        assert_eq!(cfg.required[0].scopes, ["ct-scope", "no-alloc"]);
        assert_eq!(cfg.required[1].file, "b.rs");
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[secrets]\nwhat = [\"x\"]\n").is_err());
        assert!(parse("[[other]]\n").is_err());
    }

    #[test]
    fn rejects_incomplete_required_entries() {
        let src = "[[required]]\nfile = \"a.rs\"\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse("[secrets]\nidents = \"not-an-array\"\n").is_err());
        assert!(parse("[secrets]\nidents = [unquoted]\n").is_err());
        assert!(parse("key = \"outside any section\"\n").is_err());
    }
}
