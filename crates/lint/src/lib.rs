//! `oram-lint` — in-workspace static analysis for the ORAM hot path.
//!
//! The security argument of the paper rests on source-level invariants the
//! compiler cannot check: no secret-dependent branching on the encrypted
//! hot path, no steady-state allocation, no silent truncation of unified
//! addresses, audited `unsafe`, and no debug-formatting of secret state.
//! (`docs/ARCHITECTURE.md` at the workspace root states the layered
//! argument these invariants defend).
//! This crate enforces them with a hand-rolled lexer and a scope-tracked
//! rule engine driven by `// lint:` annotations and a checked-in
//! `Lint.toml`.  See `RULES.md` for the rule catalog and the README's
//! "Static analysis" section for the workflow.
//!
//! std-only and dependency-free on purpose: the linter that polices the
//! workspace must never be broken by the workspace's own dependency policy.

pub mod config;
pub mod engine;
pub mod findings;
pub mod lexer;

pub use config::{ConfigError, LintConfig};
pub use findings::{apply_baseline, baseline_json, parse_baseline, report_json, Finding};

use std::io;
use std::path::{Path, PathBuf};

/// Result of scanning a set of files.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Workspace-relative paths scanned, sorted.
    pub files: Vec<String>,
}

/// Directory names never scanned: generated output, version control, and
/// test/bench/fixture code (`#[cfg(test)]` exemption extended to whole
/// test trees).
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "fixtures"];

/// Collects the production `.rs` files under `root`: files inside a `src`
/// directory, excluding `SKIP_DIRS` and the config's `exclude` list.
pub fn workspace_files(root: &Path, config: &LintConfig) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // unreadable directory: skip, don't fail the lint
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = relative(root, &path);
                if !rel.contains("/src/") && !rel.starts_with("src/") {
                    continue;
                }
                if config.exclude.iter().any(|e| rel.contains(e.as_str())) {
                    continue;
                }
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans `paths` (or the whole workspace when `None`), returning every
/// finding including the cross-file `missing-scope` checks for required
/// anchors whose file was not scanned at all.
pub fn run(root: &Path, paths: Option<&[PathBuf]>, config: &LintConfig) -> io::Result<Analysis> {
    let files = match paths {
        Some(explicit) => {
            let mut out = Vec::new();
            for p in explicit {
                if p.is_dir() {
                    let sub = workspace_files(p, config)?;
                    out.extend(sub);
                } else {
                    out.push(p.clone());
                }
            }
            out.sort();
            out
        }
        None => workspace_files(root, config)?,
    };
    let mut findings = Vec::new();
    let mut rels = Vec::new();
    for path in &files {
        let rel = relative(root, path);
        let source = std::fs::read_to_string(path)?;
        findings.extend(engine::analyze_source(&rel, &source, config));
        rels.push(rel);
    }
    // Required anchors in files that were not scanned at all (deleted,
    // renamed, or excluded) are annotation rot too — but only when the run
    // covered the whole workspace; a partial run cannot judge coverage.
    if paths.is_none() {
        for req in &config.required {
            if !rels.iter().any(|f| f.ends_with(req.file.as_str())) {
                findings.push(Finding {
                    rule: engine::MISSING_SCOPE,
                    file: req.file.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "required file `{}` was not scanned — update Lint.toml if it moved",
                        req.file
                    ),
                    snippet: String::new(),
                });
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(Analysis {
        findings,
        files: rels,
    })
}
