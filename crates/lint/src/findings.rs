//! Findings, the machine-readable JSON report, and the committed baseline.
//!
//! The baseline file holds grandfathered findings as a JSON array of
//! `{rule, file, snippet}` objects.  Matching is positional-drift-tolerant:
//! a finding is baselined when an unconsumed entry matches its rule, file,
//! and trimmed source line, so unrelated edits that shift line numbers do
//! not resurrect old findings.  The repository policy is an *empty*
//! baseline — every finding fixed or waived in source — but the mechanism
//! exists so future rule tightening can land without blocking CI.

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`secret-branch`, `no-alloc`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line, for reports and baseline matching.
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A grandfathered finding from the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub snippet: String,
}

/// Splits findings into `(new, baselined)` against the baseline entries.
/// Each entry absolves at most one finding.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<Finding>) {
    let mut used = vec![false; baseline.len()];
    let mut fresh = Vec::new();
    let mut grandfathered = Vec::new();
    for finding in findings {
        let hit = baseline.iter().enumerate().position(|(i, entry)| {
            !used[i]
                && entry.rule == finding.rule
                && entry.file == finding.file
                && entry.snippet == finding.snippet
        });
        match hit {
            Some(i) => {
                used[i] = true;
                grandfathered.push(finding);
            }
            None => fresh.push(finding),
        }
    }
    (fresh, grandfathered)
}

// ---------------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------------

/// Escapes `s` as a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report: every finding (new and baselined), plus counts.
pub fn report_json(new: &[Finding], baselined: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"new_findings\": {},\n", new.len()));
    out.push_str(&format!("  \"baselined_findings\": {},\n", baselined.len()));
    out.push_str("  \"findings\": [\n");
    let rows: Vec<String> = new
        .iter()
        .map(|f| (f, false))
        .chain(baselined.iter().map(|f| (f, true)))
        .map(|(f, grandfathered)| {
            format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"baselined\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                f.col,
                grandfathered,
                json_escape(&f.message),
                json_escape(&f.snippet),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as a baseline file (for `--write-baseline`).
pub fn baseline_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "  {{\"rule\": \"{}\", \"file\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                json_escape(&f.snippet),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

// ---------------------------------------------------------------------------
// JSON parsing (baseline files only)
// ---------------------------------------------------------------------------

/// Parses a baseline file: a JSON array of objects with string values.
/// Only the subset emitted by [`baseline_json`] is supported.
pub fn parse_baseline(source: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = JsonCursor {
        chars: source.chars().peekable(),
    };
    p.skip_ws();
    p.expect('[')?;
    let mut entries = Vec::new();
    p.skip_ws();
    if p.peek() == Some(']') {
        p.next();
        return Ok(entries);
    }
    loop {
        let obj = p.parse_object()?;
        let field = |name: &str| -> Result<String, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("baseline entry missing `{name}`"))
        };
        entries.push(BaselineEntry {
            rule: field("rule")?,
            file: field("file")?,
            snippet: field("snippet")?,
        });
        p.skip_ws();
        match p.next() {
            Some(',') => p.skip_ws(),
            Some(']') => break,
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
    Ok(entries)
}

struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl JsonCursor<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected `{want}`, got {other:?}")),
        }
    }

    fn parse_object(&mut self) -> Result<Vec<(String, String)>, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.next();
                break;
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.parse_string()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.next();
                }
                Some('}') => {}
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
        Ok(fields)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some('"') => break,
                Some('\\') => match self.next() {
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    Some(c) => out.push(c),
                    None => return Err("truncated escape".into()),
                },
                Some(c) => out.push(c),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn baseline_roundtrip_through_json() {
        let findings = vec![
            finding("no-alloc", "a.rs", "let v = Vec::new();"),
            finding("secret-branch", "b.rs", "if leaf == 3 { \"quote\\\\\" }"),
        ];
        let json = baseline_json(&findings);
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rule, "no-alloc");
        assert_eq!(parsed[1].snippet, "if leaf == 3 { \"quote\\\\\" }");
    }

    #[test]
    fn empty_baseline_parses() {
        assert_eq!(parse_baseline("[]").unwrap(), vec![]);
        assert_eq!(parse_baseline("[\n]\n").unwrap(), vec![]);
    }

    #[test]
    fn apply_baseline_consumes_entries_once() {
        let f1 = finding("no-alloc", "a.rs", "x");
        let f2 = finding("no-alloc", "a.rs", "x");
        let baseline = parse_baseline(&baseline_json(std::slice::from_ref(&f1))).unwrap();
        let (new, old) = apply_baseline(vec![f1, f2], &baseline);
        // One matching entry absolves only one of the two identical findings.
        assert_eq!(new.len(), 1);
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn report_json_counts_new_and_baselined() {
        let report = report_json(&[finding("no-panic", "a.rs", "s")], &[], 3);
        assert!(report.contains("\"new_findings\": 1"));
        assert!(report.contains("\"files_scanned\": 3"));
        assert!(report.contains("\"baselined\": false"));
        // The empty-report shape is also valid JSON-ish.
        let empty = report_json(&[], &[], 0);
        assert!(empty.contains("\"findings\": [\n  ]"));
    }
}
