//! A hand-rolled Rust lexer: just enough token structure for the rule engine.
//!
//! The lexer understands everything that can *hide* code from a naive text
//! scan — line and nested block comments, plain/byte/raw string literals,
//! char literals vs. lifetimes — and surfaces comments as tokens so the rule
//! engine can read `lint:` annotations out of them.  It does not attempt
//! full fidelity (numeric literal grammar is approximate); rule matching
//! only needs identifier/punctuation structure to be exact.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`if`, `leaf`, `u32`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation / operator, longest-match (`&&`, `::`, `..=`, `->`, …).
    Punct,
    /// `// …` comment; `text` is everything after the `//`.
    LineComment,
    /// `/* … */` comment (nesting-aware); `text` is the interior.
    BlockComment,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&", "||", "::", "..", "->", "=>", "==", "!=", "<=", ">=", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream, comments included.
///
/// Unterminated constructs (string/comment at EOF) are tolerated: the token
/// simply extends to the end of input.  A linter must never panic on the
/// code it scans.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            // Comment or division: decide after consuming the slash.
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    cur.bump();
                    let mut text = String::new();
                    while let Some(ch) = cur.peek() {
                        if ch == '\n' {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    out.push(Token {
                        kind: TokKind::LineComment,
                        text,
                        line,
                        col,
                    });
                }
                Some('*') => {
                    cur.bump();
                    let mut depth = 1usize;
                    let mut text = String::new();
                    while depth > 0 {
                        match cur.bump() {
                            None => break,
                            Some('*') if cur.peek() == Some('/') => {
                                cur.bump();
                                depth -= 1;
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                cur.bump();
                                depth += 1;
                                text.push_str("/*");
                            }
                            Some(ch) => text.push(ch),
                        }
                    }
                    out.push(Token {
                        kind: TokKind::BlockComment,
                        text,
                        line,
                        col,
                    });
                }
                Some('=') => {
                    cur.bump();
                    out.push(Token {
                        kind: TokKind::Punct,
                        text: "/=".into(),
                        line,
                        col,
                    });
                }
                _ => out.push(Token {
                    kind: TokKind::Punct,
                    text: "/".into(),
                    line,
                    col,
                }),
            }
            continue;
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            cur.bump();
            out.push(Token {
                kind: TokKind::Str,
                text: lex_string_body(&mut cur),
                line,
                col,
            });
            continue;
        }
        if is_ident_start(c) {
            // `r`/`b`/`br`/`rb` prefixes may introduce raw/byte literals.
            let mut ident = String::new();
            ident.push(c);
            cur.bump();
            if let Some(tok) = try_literal_prefix(&mut cur, &mut ident, line, col) {
                out.push(tok);
                continue;
            }
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                ident.push(ch);
                cur.bump();
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = None;
        for p in PUNCTS {
            if starts_with(&mut cur, p) {
                matched = Some(*p);
                break;
            }
        }
        if let Some(p) = matched {
            for _ in 0..p.chars().count() {
                cur.bump();
            }
            out.push(Token {
                kind: TokKind::Punct,
                text: p.into(),
                line,
                col,
            });
        } else {
            cur.bump();
            out.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
                col,
            });
        }
    }
    out
}

/// Whether the remaining input starts with `prefix` (cannot consume —
/// `Peekable` only looks one ahead, so clone the iterator).
fn starts_with(cur: &mut Cursor<'_>, prefix: &str) -> bool {
    let mut it = cur.chars.clone();
    prefix.chars().all(|p| it.next() == Some(p))
}

/// After consuming an identifier's first char, checks for the raw/byte
/// literal prefixes (`r"`, `r#"`, `b"`, `b'`, `br"`, `rb` is not valid Rust).
fn try_literal_prefix(
    cur: &mut Cursor<'_>,
    ident: &mut String,
    line: u32,
    col: u32,
) -> Option<Token> {
    let lead = ident.as_str();
    match (lead, cur.peek()) {
        ("r", Some('"')) | ("r", Some('#')) => raw_string(cur, line, col),
        ("b", Some('"')) => {
            cur.bump();
            Some(Token {
                kind: TokKind::Str,
                text: lex_string_body(cur),
                line,
                col,
            })
        }
        ("b", Some('\'')) => Some(lex_quote(cur, line, col)),
        ("b", Some('r')) => {
            // Could be `br"…"` / `br#"…"#`, or an identifier like `broken`.
            let mut it = cur.chars.clone();
            it.next();
            match it.next() {
                Some('"') | Some('#') => {
                    cur.bump();
                    raw_string(cur, line, col)
                }
                _ => {
                    ident.push('r');
                    cur.bump();
                    None
                }
            }
        }
        _ => None,
    }
}

/// Lexes `#*"…"#*` after the `r`/`br` prefix.  Returns `None` when the `#`s
/// are not followed by a quote (e.g. the raw identifier `r#try`): the caller
/// falls back to identifier lexing, which is close enough for linting.
fn raw_string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Token> {
    let mut hashes = 0usize;
    {
        let mut it = cur.chars.clone();
        while it.next() == Some('#') {
            hashes += 1;
        }
    }
    let mut it = cur.chars.clone();
    for _ in 0..hashes {
        it.next();
    }
    if it.next() != Some('"') {
        return None;
    }
    for _ in 0..=hashes {
        cur.bump(); // the hashes and the opening quote
    }
    let mut text = String::new();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            let mut it = cur.chars.clone();
            for _ in 0..hashes {
                if it.next() != Some('#') {
                    text.push('"');
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        text.push(c);
    }
    Some(Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// Lexes a non-raw string body after the opening quote, honouring escapes.
fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    text
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) after peeking a
/// single quote.  Also consumes the quote for byte-char literals (`b'…'`,
/// where the caller already ate the `b`).
fn lex_quote(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    cur.bump(); // the opening quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote.
            let mut text = String::new();
            cur.bump();
            text.push('\\');
            if let Some(e) = cur.bump() {
                text.push(e); // the escape selector; covers '\'' too
            }
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c); // \u{…} and friends
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'x'` is a char literal, `'x` (no closing quote) a lifetime.
            let mut text = String::new();
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
                return Token {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                };
            }
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            Token {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            }
        }
        Some(c) => {
            // Non-identifier char literal: `' '`, `'('`, multi-byte chars.
            let mut text = String::new();
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Token {
                kind: TokKind::Char,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokKind::Punct,
            text: "'".into(),
            line,
            col,
        },
    }
}

/// Approximate numeric literal: digits, `_`, base/type-suffix letters, and a
/// decimal point only when followed by a digit (so `1..n` and `x.0.sqrt()`
/// tokenize usefully).
fn lex_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            let mut it = cur.chars.clone();
            it.next();
            match it.next() {
                Some(d) if d.is_ascii_digit() && !text.contains('.') => {
                    text.push('.');
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    Token {
        kind: TokKind::Num,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("if leaf == 3 && x { y?; }");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["if", "leaf", "==", "3", "&&", "x", "{", "y", "?", ";", "}"]
        );
        assert_eq!(toks[2].0, TokKind::Punct);
        assert_eq!(toks[4].0, TokKind::Punct);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokKind::Ident, "a".into()));
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert!(toks[1].1.contains("still comment"));
        assert_eq!(toks[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn line_comment_stops_at_newline() {
        let toks = kinds("x // if secret { panic!() }\ny");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::LineComment);
        assert_eq!(toks[2], (TokKind::Ident, "y".into()));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r###"let s = r#"if leaf { "quoted" }"#;"###);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].1, r#"if leaf { "quoted" }"#);
        // Nothing inside the raw string surfaced as an identifier.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "if"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"(b"ab", br#"c"d"#, broken)"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["ab", r#"c"d"#]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "broken"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["x"]);
    }

    #[test]
    fn escaped_char_literals_and_static_lifetime() {
        let toks = kinds(r"('\n', '\'', '\u{1F600}', &'static str)");
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 3);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "static"));
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let toks = kinds(r#"let s = "a\"b\\"; x"#);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#"a\"b\\"#]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn range_vs_float() {
        let texts: Vec<String> = lex("0..n 1.5 x.0 1..=2")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(
            texts,
            ["0", "..", "n", "1.5", "x", ".", "0", "1", "..=", "2"]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'"] {
            let _ = lex(src);
        }
    }
}
