//! Synthetic memory-trace generation standing in for the SPEC CPU2006
//! workloads of the paper's evaluation (§7.1.1).  (`docs/ARCHITECTURE.md`
//! at the workspace root places trace generation in the evaluation stack.)
//!
//! The original evaluation replays SPEC06-int benchmarks through the Graphite
//! simulator.  SPEC traces are not redistributable, so this crate generates
//! *synthetic* traces whose first-order properties — LLC miss rate, footprint,
//! spatial locality and reuse — are calibrated per benchmark so that the
//! paper's comparisons keep their shape: which benchmarks are memory-bound,
//! which benefit from a larger PLB, and which prefer large ORAM blocks.  The
//! substitution is recorded in `DESIGN.md`.
//!
//! * [`pattern::AccessPattern`] — primitive generators (sequential, strided,
//!   random-in-region, pointer chase, hot working set).
//! * [`profile::WorkloadProfile`] — a weighted mixture of patterns plus
//!   instruction-mix parameters.
//! * [`spec::SpecBenchmark`] — the eleven benchmarks that appear in
//!   Figures 5, 6 and 8, each with a hand-calibrated profile.
//! * [`TraceGenerator`] — a deterministic, seedable iterator of
//!   [`MemoryAccess`]es.
//!
//! # Examples
//!
//! ```
//! use trace_gen::{SpecBenchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::new(SpecBenchmark::Mcf.profile(), 42);
//! let first: Vec<_> = gen.by_ref().take(1000).collect();
//! assert_eq!(first.len(), 1000);
//! // Deterministic for a fixed seed.
//! let again: Vec<_> = TraceGenerator::new(SpecBenchmark::Mcf.profile(), 42)
//!     .take(1000)
//!     .collect();
//! assert_eq!(first, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pattern;
pub mod profile;
pub mod spec;

pub use pattern::AccessPattern;
pub use profile::WorkloadProfile;
pub use spec::SpecBenchmark;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One memory reference of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Non-memory instructions executed before this reference.
    pub gap: u64,
    /// Byte address referenced.
    pub addr: u64,
    /// Whether the reference is a store.
    pub is_write: bool,
}

/// A deterministic generator of [`MemoryAccess`]es for one workload profile.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    /// Per-component pattern state.
    states: Vec<pattern::PatternState>,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed`.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let states = profile
            .components
            .iter()
            .map(|(_, p)| pattern::PatternState::new(p, &mut rng))
            .collect();
        Self {
            profile,
            rng,
            states,
        }
    }

    /// The profile being generated.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }
}

impl Iterator for TraceGenerator {
    type Item = MemoryAccess;

    fn next(&mut self) -> Option<MemoryAccess> {
        // Pick a component by weight.
        let total: f64 = self.profile.components.iter().map(|(w, _)| *w).sum();
        let mut pick = self.rng.gen_range(0.0..total);
        let mut index = 0;
        for (i, (w, _)) in self.profile.components.iter().enumerate() {
            if pick < *w {
                index = i;
                break;
            }
            pick -= *w;
        }
        let (_, pattern) = &self.profile.components[index];
        let addr = self.states[index].next_addr(pattern, &mut self.rng);

        // Geometric gap with the configured mean: models the fraction of
        // instructions that touch memory.
        let mean_gap = self.profile.mean_gap();
        let gap = if mean_gap <= 0.0 {
            0
        } else {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            (-mean_gap * u.ln()).round() as u64
        };
        let is_write = self.rng.gen_bool(self.profile.write_fraction);
        Some(MemoryAccess {
            gap,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed_and_differs_across_seeds() {
        let a: Vec<_> = TraceGenerator::new(SpecBenchmark::Gcc.profile(), 1)
            .take(500)
            .collect();
        let b: Vec<_> = TraceGenerator::new(SpecBenchmark::Gcc.profile(), 1)
            .take(500)
            .collect();
        let c: Vec<_> = TraceGenerator::new(SpecBenchmark::Gcc.profile(), 2)
            .take(500)
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_within_the_declared_footprint() {
        for bench in SpecBenchmark::all() {
            let profile = bench.profile();
            let footprint = profile.footprint_bytes();
            for access in TraceGenerator::new(profile, 7).take(2000) {
                assert!(
                    access.addr < footprint,
                    "{bench:?}: addr {} beyond footprint {footprint}",
                    access.addr
                );
            }
        }
    }

    #[test]
    fn gap_roughly_matches_memory_fraction() {
        let profile = SpecBenchmark::Sjeng.profile();
        let accesses: Vec<_> = TraceGenerator::new(profile.clone(), 3)
            .take(20_000)
            .collect();
        let total_instr: u64 = accesses.iter().map(|a| a.gap + 1).sum();
        let measured_fraction = accesses.len() as f64 / total_instr as f64;
        assert!(
            (measured_fraction - profile.memory_fraction).abs() / profile.memory_fraction < 0.15,
            "measured {measured_fraction}, configured {}",
            profile.memory_fraction
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let profile = SpecBenchmark::Bzip2.profile();
        let accesses: Vec<_> = TraceGenerator::new(profile.clone(), 5)
            .take(20_000)
            .collect();
        let writes = accesses.iter().filter(|a| a.is_write).count() as f64;
        let measured = writes / accesses.len() as f64;
        assert!((measured - profile.write_fraction).abs() < 0.05);
    }
}
