//! Workload profiles: weighted mixtures of access patterns plus instruction
//! mix parameters.

use crate::pattern::AccessPattern;
use serde::{Deserialize, Serialize};

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Human-readable name (benchmark name in the figures).
    pub name: String,
    /// Fraction of instructions that are loads/stores (typ. 0.25–0.4).
    pub memory_fraction: f64,
    /// Fraction of memory references that are stores.
    pub write_fraction: f64,
    /// Weighted mixture of address-stream components.
    pub components: Vec<(f64, AccessPattern)>,
}

impl WorkloadProfile {
    /// Mean number of non-memory instructions between memory references,
    /// implied by [`Self::memory_fraction`].
    pub fn mean_gap(&self) -> f64 {
        if self.memory_fraction <= 0.0 {
            0.0
        } else {
            (1.0 - self.memory_fraction) / self.memory_fraction
        }
    }

    /// The exclusive upper bound of addresses this profile can generate.
    pub fn footprint_bytes(&self) -> u64 {
        self.components
            .iter()
            .map(|(_, p)| p.end())
            .max()
            .unwrap_or(0)
    }

    /// Validates that the profile is well-formed.
    ///
    /// # Panics
    ///
    /// Panics if there are no components, a weight is non-positive, or a
    /// fraction is outside `[0, 1]`.
    pub fn assert_valid(&self) {
        assert!(!self.components.is_empty(), "profile needs components");
        assert!(
            self.components.iter().all(|(w, _)| *w > 0.0),
            "weights must be positive"
        );
        assert!((0.0..=1.0).contains(&self.memory_fraction));
        assert!((0.0..=1.0).contains(&self.write_fraction));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            memory_fraction: 0.25,
            write_fraction: 0.3,
            components: vec![
                (
                    1.0,
                    AccessPattern::Sequential {
                        base: 0,
                        bytes: 1 << 20,
                        stride: 8,
                    },
                ),
                (
                    2.0,
                    AccessPattern::RandomUniform {
                        base: 1 << 20,
                        bytes: 1 << 22,
                    },
                ),
            ],
        }
    }

    #[test]
    fn mean_gap_matches_memory_fraction() {
        let p = profile();
        assert!((p.mean_gap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_is_the_union_of_components() {
        let p = profile();
        assert_eq!(p.footprint_bytes(), (1 << 20) + (1 << 22));
    }

    #[test]
    fn validation_passes_for_well_formed_profiles() {
        profile().assert_valid();
    }

    #[test]
    #[should_panic(expected = "components")]
    fn validation_rejects_empty_profiles() {
        let p = WorkloadProfile {
            name: "empty".into(),
            memory_fraction: 0.1,
            write_fraction: 0.1,
            components: vec![],
        };
        p.assert_valid();
    }
}
