//! Per-benchmark workload profiles standing in for the SPEC CPU2006-int
//! subset used in Figures 5, 6 and 8.
//!
//! Each profile is a mixture of a cache-resident "hot" component (registers
//! spilled to stack, top-of-heap structures) and one or more miss-producing
//! components whose size and shape control two things:
//!
//! * the **LLC miss rate**, which sets the ORAM-induced slowdown (memory-bound
//!   benchmarks like `libquantum` and `mcf` suffer 10–17×, compute-bound ones
//!   like `sjeng` and `perlbench` ~2×), and
//! * the **spatial locality of the misses**, which sets how effective the PLB
//!   is (streaming benchmarks need almost no PosMap accesses; pointer-chasing
//!   ones with multi-megabyte working sets are the ones that benefit from
//!   growing the PLB from 8 KB to 128 KB, as `bzip2` and `mcf` do in
//!   Figure 5).
//!
//! The numbers are calibrated to land in the ranges the paper reports, not to
//! reproduce SPEC microarchitecture-accurately; see DESIGN.md for the
//! substitution rationale.

use crate::pattern::AccessPattern;
use crate::profile::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// The SPEC06-int benchmarks that appear in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Astar,
    Bzip2,
    Gcc,
    Gobmk,
    H264ref,
    Hmmer,
    Libquantum,
    Mcf,
    Omnetpp,
    Perlbench,
    Sjeng,
}

impl SpecBenchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub fn all() -> [SpecBenchmark; 11] {
        [
            SpecBenchmark::Astar,
            SpecBenchmark::Bzip2,
            SpecBenchmark::Gcc,
            SpecBenchmark::Gobmk,
            SpecBenchmark::H264ref,
            SpecBenchmark::Hmmer,
            SpecBenchmark::Libquantum,
            SpecBenchmark::Mcf,
            SpecBenchmark::Omnetpp,
            SpecBenchmark::Perlbench,
            SpecBenchmark::Sjeng,
        ]
    }

    /// The short label used in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            SpecBenchmark::Astar => "astar",
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Gobmk => "gob",
            SpecBenchmark::H264ref => "h264",
            SpecBenchmark::Hmmer => "hmmer",
            SpecBenchmark::Libquantum => "libq",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Omnetpp => "omnet",
            SpecBenchmark::Perlbench => "perl",
            SpecBenchmark::Sjeng => "sjeng",
        }
    }

    /// Builds the benchmark's workload profile.
    pub fn profile(&self) -> WorkloadProfile {
        let builder = ProfileBuilder::new(self.label());
        match self {
            // Path-finding over a large grid: mostly cache-resident state,
            // some pointer chasing through the open list, light streaming.
            SpecBenchmark::Astar => builder
                .hot(0.955, 256 << 10)
                .chase(0.030, 16 << 20, 64)
                .seq(0.015, 32 << 20, 8),
            // Burrows-Wheeler compression: multi-megabyte working set with
            // heavy reuse — the PLB-capacity-sensitive benchmark of Figure 5.
            SpecBenchmark::Bzip2 => {
                builder
                    .hot(0.960, 320 << 10)
                    .random(0.030, 3 << 20)
                    .seq(0.010, 64 << 20, 8)
            }
            // Compiler: moderately memory-bound, mixed locality.
            SpecBenchmark::Gcc => builder
                .hot(0.965, 512 << 10)
                .random(0.015, 8 << 20)
                .seq(0.015, 16 << 20, 8)
                .chase(0.005, 32 << 20, 64),
            // Go engine: almost entirely cache resident.
            SpecBenchmark::Gobmk => {
                builder
                    .hot(0.990, 448 << 10)
                    .random(0.007, 4 << 20)
                    .seq(0.003, 8 << 20, 8)
            }
            // Video encoder: streaming reference frames with good locality.
            SpecBenchmark::H264ref => builder
                .hot(0.980, 384 << 10)
                .seq(0.010, 8 << 20, 16)
                .random(0.010, 2 << 20),
            // Profile HMM search: small tables plus streaming scores; likes
            // large ORAM blocks (Figure 8).
            SpecBenchmark::Hmmer => builder.hot(0.970, 256 << 10).seq(0.030, 4 << 20, 8),
            // Quantum simulation: a pure stream over a large amplitude vector;
            // the most memory-bound benchmark (≈17× slowdown under ORAM).
            SpecBenchmark::Libquantum => builder.hot(0.550, 64 << 10).seq(0.450, 32 << 20, 16),
            // Network-flow solver: pointer chasing over multi-megabyte arcs;
            // high miss rate and strong PLB-capacity sensitivity.
            SpecBenchmark::Mcf => builder
                .hot(0.930, 320 << 10)
                .chase(0.040, 6 << 20, 64)
                .random(0.010, 64 << 20)
                .chase(0.020, 96 << 20, 64),
            // Discrete-event simulator: scattered heap objects.
            SpecBenchmark::Omnetpp => builder
                .hot(0.960, 448 << 10)
                .chase(0.025, 32 << 20, 64)
                .random(0.015, 8 << 20),
            // Perl interpreter: mostly resident, occasional hash-table walks.
            SpecBenchmark::Perlbench => builder
                .hot(0.990, 384 << 10)
                .chase(0.006, 16 << 20, 64)
                .seq(0.004, 8 << 20, 8),
            // Chess engine: tiny working set, compute bound.
            SpecBenchmark::Sjeng => {
                builder
                    .hot(0.996, 320 << 10)
                    .random(0.002, 4 << 20)
                    .chase(0.002, 8 << 20, 64)
            }
        }
        .build()
    }
}

/// Incremental profile builder laying components out in disjoint regions.
struct ProfileBuilder {
    name: String,
    next_base: u64,
    components: Vec<(f64, AccessPattern)>,
}

impl ProfileBuilder {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            next_base: 0,
            components: Vec::new(),
        }
    }

    fn region(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        // Keep regions aligned to 1 MB so components never interleave.
        self.next_base += bytes.div_ceil(1 << 20) * (1 << 20);
        base
    }

    fn hot(mut self, weight: f64, bytes: u64) -> Self {
        let base = self.region(bytes);
        self.components
            .push((weight, AccessPattern::RandomUniform { base, bytes }));
        self
    }

    fn random(mut self, weight: f64, bytes: u64) -> Self {
        let base = self.region(bytes);
        self.components
            .push((weight, AccessPattern::RandomUniform { base, bytes }));
        self
    }

    fn seq(mut self, weight: f64, bytes: u64, stride: u64) -> Self {
        let base = self.region(bytes);
        self.components.push((
            weight,
            AccessPattern::Sequential {
                base,
                bytes,
                stride,
            },
        ));
        self
    }

    fn chase(mut self, weight: f64, bytes: u64, object_bytes: u64) -> Self {
        let base = self.region(bytes);
        self.components.push((
            weight,
            AccessPattern::PointerChase {
                base,
                bytes,
                object_bytes,
            },
        ));
        self
    }

    fn build(self) -> WorkloadProfile {
        let profile = WorkloadProfile {
            name: self.name,
            memory_fraction: 0.30,
            write_fraction: 0.30,
            components: self.components,
        };
        profile.assert_valid();
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_valid_profile() {
        for bench in SpecBenchmark::all() {
            let p = bench.profile();
            p.assert_valid();
            assert_eq!(p.name, bench.label());
            assert!(p.footprint_bytes() > 1 << 20);
        }
    }

    #[test]
    fn component_regions_do_not_overlap() {
        for bench in SpecBenchmark::all() {
            let p = bench.profile();
            let mut regions: Vec<(u64, u64)> = p
                .components
                .iter()
                .map(|(_, pat)| match *pat {
                    AccessPattern::Sequential { base, bytes, .. }
                    | AccessPattern::Strided { base, bytes, .. }
                    | AccessPattern::RandomUniform { base, bytes }
                    | AccessPattern::HotSet { base, bytes, .. }
                    | AccessPattern::PointerChase { base, bytes, .. } => (base, base + bytes),
                })
                .collect();
            regions.sort_unstable();
            for w in regions.windows(2) {
                assert!(w[0].1 <= w[1].0, "{bench:?}: overlapping regions {w:?}");
            }
        }
    }

    #[test]
    fn memory_bound_benchmarks_have_heavier_miss_components() {
        // The weight not spent on the (cache-resident) hot component is a
        // proxy for memory-boundedness; libquantum and mcf must exceed sjeng
        // and perlbench by a wide margin.
        let cold_weight = |b: SpecBenchmark| {
            let p = b.profile();
            let total: f64 = p.components.iter().map(|(w, _)| w).sum();
            let hot = p.components[0].0;
            (total - hot) / total
        };
        assert!(cold_weight(SpecBenchmark::Libquantum) > 10.0 * cold_weight(SpecBenchmark::Sjeng));
        assert!(cold_weight(SpecBenchmark::Mcf) > 5.0 * cold_weight(SpecBenchmark::Perlbench));
        assert!(cold_weight(SpecBenchmark::Libquantum) > cold_weight(SpecBenchmark::Gobmk));
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            SpecBenchmark::all().iter().map(|b| b.label()).collect();
        assert_eq!(labels.len(), 11);
    }
}
