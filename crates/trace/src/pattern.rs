//! Primitive address-stream generators.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A primitive access pattern confined to a region of the address space.
///
/// Regions are expressed as `(base, bytes)`; generated addresses fall in
/// `[base, base + bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// A forward streaming scan that wraps at the end of the region
    /// (libquantum-style).
    Sequential {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
        /// Bytes advanced per access.
        stride: u64,
    },
    /// A strided scan (column walks, structure-of-array traversals).
    Strided {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
        /// Stride between consecutive accesses in bytes.
        stride: u64,
    },
    /// Uniformly random addresses within the region (hash tables, mcf-style
    /// pointer soup once the working set exceeds the LLC).
    RandomUniform {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
    },
    /// A random walk over a small hot set with occasional excursions into the
    /// full region; models temporal reuse.
    HotSet {
        /// Region base address.
        base: u64,
        /// Full region size in bytes.
        bytes: u64,
        /// Hot subset size in bytes.
        hot_bytes: u64,
        /// Probability an access stays in the hot subset.
        hot_probability: f64,
    },
    /// A pseudo pointer chase: the next address is a deterministic
    /// pseudo-random function of the current one (defeats spatial locality
    /// entirely, like linked-list traversal in mcf/omnetpp).
    PointerChase {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
        /// Size of the objects being chased (addresses are object-aligned).
        object_bytes: u64,
    },
}

impl AccessPattern {
    /// The exclusive upper bound of addresses this pattern can generate.
    pub fn end(&self) -> u64 {
        match *self {
            AccessPattern::Sequential { base, bytes, .. }
            | AccessPattern::Strided { base, bytes, .. }
            | AccessPattern::RandomUniform { base, bytes }
            | AccessPattern::HotSet { base, bytes, .. }
            | AccessPattern::PointerChase { base, bytes, .. } => base + bytes,
        }
    }
}

/// Mutable per-pattern cursor state.
#[derive(Debug, Clone, Default)]
pub struct PatternState {
    cursor: u64,
}

impl PatternState {
    /// Initialises the state (random starting point for chase/stride
    /// patterns so different seeds explore different phases).
    pub fn new(pattern: &AccessPattern, rng: &mut StdRng) -> Self {
        let cursor = match *pattern {
            AccessPattern::Sequential { bytes, .. } | AccessPattern::Strided { bytes, .. } => {
                rng.gen_range(0..bytes.max(1))
            }
            AccessPattern::PointerChase { bytes, .. } => rng.gen_range(0..bytes.max(1)),
            _ => 0,
        };
        Self { cursor }
    }

    /// Produces the next address of the stream.
    pub fn next_addr(&mut self, pattern: &AccessPattern, rng: &mut StdRng) -> u64 {
        match *pattern {
            AccessPattern::Sequential {
                base,
                bytes,
                stride,
            }
            | AccessPattern::Strided {
                base,
                bytes,
                stride,
            } => {
                let addr = base + self.cursor;
                self.cursor = (self.cursor + stride) % bytes.max(1);
                addr
            }
            AccessPattern::RandomUniform { base, bytes } => base + rng.gen_range(0..bytes.max(1)),
            AccessPattern::HotSet {
                base,
                bytes,
                hot_bytes,
                hot_probability,
            } => {
                if rng.gen_bool(hot_probability) {
                    base + rng.gen_range(0..hot_bytes.max(1))
                } else {
                    base + rng.gen_range(0..bytes.max(1))
                }
            }
            AccessPattern::PointerChase {
                base,
                bytes,
                object_bytes,
            } => {
                let objects = (bytes / object_bytes.max(1)).max(1);
                // A fixed large, odd index increment gives a full-period cycle
                // through every object with no spatial locality between
                // consecutive accesses — the memory behaviour of a linked
                // list laid out by a long-running allocator.
                let idx = self.cursor / object_bytes.max(1);
                let hop = (0x9e37_79b9_7f4a_7c15u64 % objects) | 1;
                let next_idx = (idx + hop) % objects;
                self.cursor = next_idx * object_bytes;
                base + self.cursor
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn sequential_advances_by_stride_and_wraps() {
        let p = AccessPattern::Sequential {
            base: 1000,
            bytes: 64,
            stride: 16,
        };
        let mut r = rng();
        let mut s = PatternState { cursor: 0 };
        let addrs: Vec<u64> = (0..6).map(|_| s.next_addr(&p, &mut r)).collect();
        assert_eq!(addrs, vec![1000, 1016, 1032, 1048, 1000, 1016]);
    }

    #[test]
    fn random_uniform_stays_in_region() {
        let p = AccessPattern::RandomUniform {
            base: 4096,
            bytes: 1024,
        };
        let mut r = rng();
        let mut s = PatternState::default();
        for _ in 0..1000 {
            let a = s.next_addr(&p, &mut r);
            assert!((4096..5120).contains(&a));
        }
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        let p = AccessPattern::HotSet {
            base: 0,
            bytes: 1 << 20,
            hot_bytes: 4096,
            hot_probability: 0.9,
        };
        let mut r = rng();
        let mut s = PatternState::default();
        let hot_hits = (0..10_000)
            .filter(|_| s.next_addr(&p, &mut r) < 4096)
            .count();
        assert!(hot_hits > 8500, "hot hits {hot_hits}");
    }

    #[test]
    fn pointer_chase_is_deterministic_and_object_aligned() {
        let p = AccessPattern::PointerChase {
            base: 0,
            bytes: 1 << 16,
            object_bytes: 64,
        };
        let mut r1 = rng();
        let mut r2 = rng();
        let mut s1 = PatternState::new(&p, &mut r1);
        let mut s2 = PatternState::new(&p, &mut r2);
        for _ in 0..100 {
            let a = s1.next_addr(&p, &mut r1);
            let b = s2.next_addr(&p, &mut r2);
            assert_eq!(a, b);
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn pointer_chase_has_poor_spatial_locality() {
        let p = AccessPattern::PointerChase {
            base: 0,
            bytes: 1 << 22,
            object_bytes: 64,
        };
        let mut r = rng();
        let mut s = PatternState::new(&p, &mut r);
        let mut near = 0;
        let mut prev = s.next_addr(&p, &mut r);
        for _ in 0..2000 {
            let a = s.next_addr(&p, &mut r);
            if a.abs_diff(prev) < 4096 {
                near += 1;
            }
            prev = a;
        }
        assert!(near < 100, "chase should rarely stay within a page: {near}");
    }
}
