//! Protocol robustness against a live server.
//!
//! Every test here feeds a running [`NetServer`] hostile or broken input —
//! truncated frames, garbage headers, mid-frame disconnects, lying length
//! prefixes — and checks the contract from `oram_net::wire`: the server
//! answers with a typed error frame or closes cleanly, *never* panics
//! (pinned by `panic_count()` at the end of each test), and keeps serving
//! well-formed traffic afterwards.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use freecursive::{OramBuilder, SchemePoint};
use oram_net::wire::{
    encode_header, read_frame, write_frame, KIND_BATCH, KIND_HELLO, KIND_READ, KIND_R_ERROR,
    MAX_BATCH_ITEMS, MAX_FRAME_BODY, PROTOCOL_VERSION,
};
use oram_net::{ErrorCode, NetClient, NetServer, ServerConfig, TenantSpec, WireOp, WireResponse};

const BLOCK_BYTES: usize = 16;
const BLOCKS: u64 = 64;

/// A small 2-shard service behind a TCP server on an ephemeral port.
fn spawn_server(config: ServerConfig) -> NetServer {
    let service = OramBuilder::for_scheme(SchemePoint::Insecure)
        .num_blocks(BLOCKS)
        .block_bytes(BLOCK_BYTES)
        .shards(2)
        .seed(7)
        .build_service()
        .expect("service");
    NetServer::spawn(service, config, "127.0.0.1:0").expect("spawn")
}

fn default_config() -> ServerConfig {
    ServerConfig::single_tenant(BLOCKS, 256)
}

/// Raw socket with a read timeout so a misbehaving server cannot hang the
/// test suite.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
}

/// Reads one response frame, expecting a typed error with `code`.
fn expect_error_frame(stream: &mut TcpStream, code: ErrorCode) {
    let (header, body) = read_frame(stream)
        .expect("read frame")
        .expect("server should answer, not close silently");
    assert_eq!(header.kind, KIND_R_ERROR, "expected an error frame");
    match oram_net::wire::decode_response(header.kind, &body).expect("decodable") {
        WireResponse::Error(e) => assert_eq!(e.code, code, "detail: {}", e.detail),
        other => panic!("expected an error response, got {other:?}"),
    }
}

/// True if the next read shows the server closed the connection.  A reset
/// counts: closing with unread bytes still in the server's receive buffer
/// (e.g. trailing garbage after the offending header) surfaces to the
/// client as RST rather than FIN, and both end the connection.
fn closed(stream: &mut TcpStream) -> bool {
    let mut byte = [0u8; 1];
    match stream.read(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => matches!(
            e.kind(),
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
        ),
    }
}

/// A good connection still round-trips: the canary run after every abuse.
fn assert_still_serving(server: &NetServer) {
    let mut client = NetClient::connect(server.local_addr(), "default").expect("connect");
    client.write(1, vec![0x5A; BLOCK_BYTES]).expect("write");
    assert_eq!(client.read(1).expect("read"), vec![0x5A; BLOCK_BYTES]);
}

#[test]
fn garbage_magic_gets_typed_error_then_close() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    expect_error_frame(&mut stream, ErrorCode::BadMagic);
    assert!(closed(&mut stream), "fatal errors close the connection");
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn wrong_version_gets_typed_error_then_close() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    let mut header = encode_header(KIND_READ, 1, 8);
    header[2] = PROTOCOL_VERSION + 1;
    stream.write_all(&header).unwrap();
    stream.write_all(&0u64.to_le_bytes()).unwrap();
    expect_error_frame(&mut stream, ErrorCode::BadVersion);
    assert!(closed(&mut stream));
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    // Claim a body just past the cap; the server must answer from the
    // header alone (the body never arrives).
    let too_big = u32::try_from(MAX_FRAME_BODY + 1).expect("fits u32");
    let mut header = encode_header(KIND_READ, 9, 0);
    header[12..16].copy_from_slice(&too_big.to_le_bytes());
    stream.write_all(&header).unwrap();
    expect_error_frame(&mut stream, ErrorCode::Oversized);
    assert!(closed(&mut stream));
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn unknown_opcode_is_recoverable() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    stream.write_all(&encode_header(0x7E, 4, 0)).unwrap();
    expect_error_frame(&mut stream, ErrorCode::UnknownOp);
    // Recoverable: the same connection can still say hello and work.
    let (kind, body) = oram_net::wire::encode_request(&oram_net::WireRequest::Hello {
        tenant: "default".to_string(),
    });
    write_frame(&mut stream, kind, 5, &body).unwrap();
    let (header, _body) = read_frame(&mut stream).unwrap().expect("hello answer");
    assert_eq!(header.kind, oram_net::wire::KIND_R_HELLO);
    assert_eq!(header.request_id, 5);
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn truncated_header_then_disconnect_is_a_clean_close() {
    let server = spawn_server(default_config());
    for cut in [1, 7, 15] {
        let mut stream = raw_connect(server.local_addr());
        let header = encode_header(KIND_READ, 2, 8);
        stream.write_all(&header[..cut]).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // The server just drops the torn connection; no panic, no hang.
        assert!(closed(&mut stream));
    }
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn mid_body_disconnect_is_a_clean_close() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    // Header promises 8 bytes; send 3 and vanish.
    stream.write_all(&encode_header(KIND_READ, 3, 8)).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    assert!(closed(&mut stream));
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn malformed_bodies_are_recoverable_typed_errors() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());

    // READ with a short body.
    write_frame(&mut stream, KIND_READ, 1, &[1, 2, 3]).unwrap();
    expect_error_frame(&mut stream, ErrorCode::Malformed);

    // HELLO whose tenant_len overruns the body.
    let mut lying_hello = 200u16.to_le_bytes().to_vec();
    lying_hello.extend_from_slice(b"short");
    write_frame(&mut stream, KIND_HELLO, 2, &lying_hello).unwrap();
    expect_error_frame(&mut stream, ErrorCode::Malformed);

    // BATCH whose count promises more items than the body holds.
    let mut lying_batch = 5u32.to_le_bytes().to_vec();
    lying_batch.push(KIND_READ);
    lying_batch.extend_from_slice(&0u64.to_le_bytes());
    write_frame(&mut stream, KIND_BATCH, 3, &lying_batch).unwrap();
    expect_error_frame(&mut stream, ErrorCode::Malformed);

    // BATCH past the item cap.
    let huge_batch = (MAX_BATCH_ITEMS + 1).to_le_bytes().to_vec();
    write_frame(&mut stream, KIND_BATCH, 4, &huge_batch).unwrap();
    expect_error_frame(&mut stream, ErrorCode::BatchTooLarge);

    // The same connection still works after all of that.
    let (kind, body) = oram_net::wire::encode_request(&oram_net::WireRequest::Hello {
        tenant: "default".to_string(),
    });
    write_frame(&mut stream, kind, 9, &body).unwrap();
    let (header, _body) = read_frame(&mut stream).unwrap().expect("hello answer");
    assert_eq!(header.kind, oram_net::wire::KIND_R_HELLO);

    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn seeded_garbage_blobs_never_panic_the_server() {
    let server = spawn_server(default_config());
    // Deterministic xorshift junk: some blobs will happen to start with
    // plausible bytes, which is the point.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..32 {
        let mut stream = raw_connect(server.local_addr());
        let len = 1 + usize::try_from(next() % 256).expect("small");
        let mut blob = Vec::with_capacity(len);
        while blob.len() < len {
            blob.extend_from_slice(&next().to_le_bytes());
        }
        blob.truncate(len);
        if round % 4 == 0 {
            // Lead with real magic so the fuzz reaches deeper layers.
            blob[0] = b'O';
            if blob.len() > 1 {
                blob[1] = b'N';
            }
        }
        let _ = stream.write_all(&blob);
        let _ = stream.shutdown(Shutdown::Write);
        // Drain whatever the server answers until it closes; content
        // doesn't matter, surviving does.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn data_requests_before_hello_are_refused() {
    let server = spawn_server(default_config());
    let mut stream = raw_connect(server.local_addr());
    write_frame(&mut stream, KIND_READ, 1, &0u64.to_le_bytes()).unwrap();
    expect_error_frame(&mut stream, ErrorCode::NoHello);
    assert_still_serving(&server);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn unknown_tenants_are_refused_by_name() {
    let server = spawn_server(default_config());
    match NetClient::connect(server.local_addr(), "nobody") {
        Err(oram_net::ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnknownTenant);
        }
        Err(other) => panic!("expected an UnknownTenant error, got {other:?}"),
        Ok(_) => panic!("expected an UnknownTenant error, got a session"),
    }
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn tenant_namespaces_are_disjoint() {
    let server = spawn_server(ServerConfig {
        tenants: vec![
            TenantSpec {
                name: "alpha".to_string(),
                blocks: 8,
            },
            TenantSpec {
                name: "beta".to_string(),
                blocks: 8,
            },
        ],
        max_inflight: 64,
    });
    let mut alpha = NetClient::connect(server.local_addr(), "alpha").unwrap();
    let mut beta = NetClient::connect(server.local_addr(), "beta").unwrap();
    assert_eq!(alpha.session().num_blocks, 8);

    // Same tenant-relative address, different tenants: no crosstalk.
    alpha.write(3, vec![0xAA; BLOCK_BYTES]).unwrap();
    beta.write(3, vec![0xBB; BLOCK_BYTES]).unwrap();
    assert_eq!(alpha.read(3).unwrap(), vec![0xAA; BLOCK_BYTES]);
    assert_eq!(beta.read(3).unwrap(), vec![0xBB; BLOCK_BYTES]);

    // A tenant cannot name blocks past its range, even though the global
    // space is larger.
    match alpha.read(8) {
        Err(oram_net::ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::AddrOutOfRange);
        }
        other => panic!("expected AddrOutOfRange, got {other:?}"),
    }
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn write_size_mismatch_is_typed() {
    let server = spawn_server(default_config());
    let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
    for bad_len in [0, BLOCK_BYTES - 1, BLOCK_BYTES + 1] {
        match client.write(0, vec![0; bad_len]) {
            Err(oram_net::ClientError::Server(e)) => {
                assert_eq!(e.code, ErrorCode::SizeMismatch);
            }
            other => panic!("expected SizeMismatch for {bad_len} bytes, got {other:?}"),
        }
    }
    // The connection survives recoverable errors.
    client.write(0, vec![1; BLOCK_BYTES]).unwrap();
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn quota_rejects_whole_batches_over_the_cap() {
    let server = spawn_server(ServerConfig::single_tenant(BLOCKS, 4));
    let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
    assert_eq!(client.session().max_inflight, 4);

    // Four items fit the quota exactly.
    let ok: Vec<WireOp> = (0..4).map(|i| WireOp::Read { addr: i }).collect();
    assert_eq!(client.batch(ok).unwrap().len(), 4);

    // Five can never be admitted: refused without touching the ORAM.
    let too_many: Vec<WireOp> = (0..5).map(|i| WireOp::Read { addr: i }).collect();
    match client.batch(too_many) {
        Err(oram_net::ClientError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::QuotaExceeded);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    let stats = server.tenant_stats("default").expect("tenant exists");
    assert_eq!(stats.quota_rejections, 1);
    assert_eq!(stats.requests, 4, "the refused batch never counted");
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn pipelined_requests_answer_in_order_with_matching_ids() {
    let server = spawn_server(default_config());
    let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
    // Queue a window of writes then reads without receiving anything.
    let mut expected = Vec::new();
    for i in 0..8u64 {
        let data = vec![u8::try_from(i).expect("small") + 1; BLOCK_BYTES];
        let id = client
            .send_request(&oram_net::WireRequest::Write {
                addr: i,
                data: data.clone(),
            })
            .unwrap();
        expected.push((id, None));
        let id = client
            .send_request(&oram_net::WireRequest::Read { addr: i })
            .unwrap();
        expected.push((id, Some(data)));
    }
    for (want_id, want_data) in expected {
        let (got_id, response) = client.recv_response().unwrap();
        assert_eq!(got_id, want_id, "responses arrive in request order");
        match (want_data, response) {
            (None, WireResponse::Done) => {}
            (Some(want), WireResponse::Data(got)) => assert_eq!(got, want),
            (want, got) => panic!("request {want_id}: wanted {want:?}, got {got:?}"),
        }
    }
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn per_tenant_stats_count_operations_and_errors() {
    let server = spawn_server(default_config());
    let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
    client.write(0, vec![7; BLOCK_BYTES]).unwrap();
    client.read(0).unwrap();
    client.read_remove(0).unwrap();
    client
        .batch(vec![
            WireOp::Read { addr: 1 },
            WireOp::Write {
                addr: 1,
                data: vec![9; BLOCK_BYTES],
            },
        ])
        .unwrap();
    let _ = client.read(BLOCKS + 5); // AddrOutOfRange → errors += 1

    let stats = client.stats().unwrap();
    assert_eq!(stats.requests, 5, "3 singles + 2 batch items");
    assert_eq!(stats.reads, 2);
    assert_eq!(stats.writes, 2);
    assert_eq!(stats.read_removes, 1);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.errors, 1);
    assert_eq!(stats.quota_rejections, 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);

    // The server-side view agrees.
    let server_view = server.tenant_stats("default").expect("tenant exists");
    assert_eq!(server_view.requests, stats.requests);
    assert_eq!(server_view.errors, stats.errors);
    assert_eq!(server.panic_count(), 0);
}

#[test]
fn shutdown_tears_down_while_connections_are_open() {
    let server = spawn_server(default_config());
    let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
    client.write(0, vec![1; BLOCK_BYTES]).unwrap();
    let addr = server.local_addr();
    server.shutdown().expect("clean shutdown");
    // The port is no longer served.
    assert!(
        client.read(0).is_err(),
        "connection should be dead after shutdown"
    );
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
            || closed(&mut raw_connect(addr)),
        "listener should be gone"
    );
}
