//! Differential check: the TCP path is a transparent wrapper.
//!
//! Two identically-seeded ORAM services run side by side — one behind a
//! [`NetServer`] driven through [`NetClient`] over a real socket, one
//! driven directly through the in-process `OramClient`.  The same seeded
//! mixed workload (reads, writes, read-removes, batches) goes to both;
//! every response must be byte-identical.  Any framing, translation, or
//! ordering bug in the network layer shows up as a divergence here.

use freecursive::{Oram, OramBuilder, OramService, Request, SchemePoint};
use oram_net::{NetClient, NetServer, ServerConfig, WireOp, WireResult};

const BLOCK_BYTES: usize = 32;
const BLOCKS: u64 = 128;
const SEED: u64 = 0xD1FF_0001;
const STEPS: usize = 400;

fn build_service() -> OramService {
    // A real (PLB-enabled) scheme, small enough for the test budget: the
    // wire layer must be transparent over the production stack, not just
    // the insecure baseline.
    OramBuilder::for_scheme(SchemePoint::PicX32)
        .num_blocks(BLOCKS)
        .block_bytes(BLOCK_BYTES)
        .shards(2)
        .seed(SEED)
        .build_service()
        .expect("service")
}

/// Deterministic xorshift stream driving both sides identically.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn addr(&mut self) -> u64 {
        self.next() % BLOCKS
    }

    fn block(&mut self) -> Vec<u8> {
        let mut data = Vec::with_capacity(BLOCK_BYTES);
        while data.len() < BLOCK_BYTES {
            data.extend_from_slice(&self.next().to_le_bytes());
        }
        data.truncate(BLOCK_BYTES);
        data
    }
}

/// One scripted step, applied identically to both sides.
enum Step {
    Read(u64),
    Write(u64, Vec<u8>),
    ReadRemove(u64),
    Batch(Vec<WireOp>),
}

fn script() -> Vec<Step> {
    let mut g = Gen(0xACE5_5EED);
    let mut steps = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        steps.push(match g.next() % 10 {
            0..=3 => Step::Read(g.addr()),
            4..=6 => Step::Write(g.addr(), g.block()),
            7 => Step::ReadRemove(g.addr()),
            _ => {
                let len = 1 + usize::try_from(g.next() % 8).expect("small");
                let items = (0..len)
                    .map(|_| match g.next() % 3 {
                        0 => WireOp::Read { addr: g.addr() },
                        1 => WireOp::Write {
                            addr: g.addr(),
                            data: g.block(),
                        },
                        _ => WireOp::ReadRemove { addr: g.addr() },
                    })
                    .collect();
                Step::Batch(items)
            }
        });
    }
    steps
}

#[test]
fn tcp_responses_are_byte_identical_to_in_process_responses() {
    // Side A: service behind TCP, one tenant covering every block, so
    // tenant-relative and global addresses coincide.
    let server = NetServer::spawn(
        build_service(),
        ServerConfig::single_tenant(BLOCKS, 1024),
        "127.0.0.1:0",
    )
    .expect("spawn");
    let mut tcp = NetClient::connect(server.local_addr(), "default").expect("connect");

    // Side B: the same service driven in-process.
    let reference_service = build_service();
    let mut reference = reference_service.client();

    for (step_index, step) in script().into_iter().enumerate() {
        match step {
            Step::Read(addr) => {
                let over_tcp = tcp.read(addr).expect("tcp read");
                let direct = reference
                    .access(Request::Read { addr })
                    .expect("direct read")
                    .data
                    .expect("reads carry data");
                assert_eq!(over_tcp, direct, "step {step_index}: read {addr} diverged");
            }
            Step::Write(addr, data) => {
                tcp.write(addr, data.clone()).expect("tcp write");
                let direct = reference
                    .access(Request::Write { addr, data })
                    .expect("direct write");
                assert_eq!(direct.data, None, "writes return no data");
            }
            Step::ReadRemove(addr) => {
                let over_tcp = tcp.read_remove(addr).expect("tcp read_remove");
                let direct = reference
                    .access(Request::ReadRemove { addr })
                    .expect("direct read_remove")
                    .data
                    .expect("read_removes carry data");
                assert_eq!(
                    over_tcp, direct,
                    "step {step_index}: read_remove {addr} diverged"
                );
            }
            Step::Batch(items) => {
                let requests: Vec<Request> = items
                    .iter()
                    .map(|op| match op {
                        WireOp::Read { addr } => Request::Read { addr: *addr },
                        WireOp::Write { addr, data } => Request::Write {
                            addr: *addr,
                            data: data.clone(),
                        },
                        WireOp::ReadRemove { addr } => Request::ReadRemove { addr: *addr },
                    })
                    .collect();
                let over_tcp = tcp.batch(items).expect("tcp batch");
                let direct = reference
                    .access_batch_owned(requests)
                    .expect("direct batch");
                assert_eq!(over_tcp.len(), direct.len());
                for (item_index, (wire, response)) in over_tcp.iter().zip(direct.iter()).enumerate()
                {
                    match (wire, &response.data) {
                        (WireResult::Data(a), Some(b)) => assert_eq!(
                            a, b,
                            "step {step_index} item {item_index}: batch data diverged"
                        ),
                        (WireResult::Done, None) => {}
                        (wire, direct) => panic!(
                            "step {step_index} item {item_index}: \
                             shape mismatch {wire:?} vs {direct:?}"
                        ),
                    }
                }
            }
        }
    }

    assert_eq!(server.panic_count(), 0);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn tenant_offset_translation_is_transparent() {
    // Side A: two tenants; "beta" starts at global base 32.  Side B: the
    // raw service addressed globally.  Writing beta-relative addr k must
    // land exactly at global 32 + k.
    let server = NetServer::spawn(
        build_service(),
        ServerConfig {
            tenants: vec![
                oram_net::TenantSpec {
                    name: "alpha".to_string(),
                    blocks: 32,
                },
                oram_net::TenantSpec {
                    name: "beta".to_string(),
                    blocks: 64,
                },
            ],
            max_inflight: 256,
        },
        "127.0.0.1:0",
    )
    .expect("spawn");
    let mut beta = NetClient::connect(server.local_addr(), "beta").expect("connect");

    let reference_service = build_service();
    let mut reference = reference_service.client();

    let mut g = Gen(42);
    for _ in 0..32 {
        let addr = g.next() % 64;
        let data = g.block();
        beta.write(addr, data.clone()).expect("tcp write");
        reference
            .access(Request::Write {
                addr: 32 + addr,
                data,
            })
            .expect("direct write");
    }
    for addr in 0..64 {
        let over_tcp = beta.read(addr).expect("tcp read");
        let direct = reference
            .access(Request::Read { addr: 32 + addr })
            .expect("direct read")
            .data
            .expect("reads carry data");
        assert_eq!(over_tcp, direct, "beta-relative {addr} diverged");
    }

    assert_eq!(server.panic_count(), 0);
    server.shutdown().expect("clean shutdown");
}
