//! `oram-net`: a std-only TCP front end for the ORAM service.
//!
//! Three layers, bottom up:
//!
//! * [`wire`] — the length-prefixed binary protocol: a 16-byte versioned
//!   frame header with a request id for pipelining, request/response body
//!   grammars, and typed error frames.  Pure codecs, no sockets.
//! * [`server`] — [`NetServer`] accepts N connections and multiplexes
//!   them onto the shard workers of one `freecursive::OramService`, with
//!   per-tenant address-space namespaces, per-tenant stats, and an
//!   in-flight quota for backpressure.
//! * [`client`] — [`NetClient`], a blocking client with both synchronous
//!   round-trip calls and a split send/receive API for pipelining.
//!
//! # Example
//!
//! ```
//! use freecursive::{OramBuilder, SchemePoint};
//! use oram_net::{NetClient, NetServer, ServerConfig};
//!
//! let service = OramBuilder::for_scheme(SchemePoint::Insecure)
//!     .num_blocks(64)
//!     .block_bytes(16)
//!     .shards(2)
//!     .build_service()
//!     .unwrap();
//! let server = NetServer::spawn(
//!     service,
//!     ServerConfig::single_tenant(64, 256),
//!     "127.0.0.1:0",
//! )
//! .unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr(), "default").unwrap();
//! client.write(3, vec![0xAB; 16]).unwrap();
//! assert_eq!(client.read(3).unwrap(), vec![0xAB; 16]);
//!
//! server.shutdown().unwrap();
//! ```
//!
//! # Security caveat
//!
//! The ORAM hides *which* block a request touches from an adversary
//! watching the storage backend.  This TCP layer makes no attempt to hide
//! request *timing*, sizes, or per-tenant rates from a network observer —
//! see ROADMAP item 2 (timing protection) before treating the wire as an
//! oblivious channel.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientError, NetClient, SessionInfo};
pub use server::{NetServer, ServerConfig, TenantSpec};
pub use wire::{ErrorCode, TenantStats, WireError, WireOp, WireRequest, WireResponse, WireResult};
