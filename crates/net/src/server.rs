//! The TCP server: accepts connections, speaks the wire protocol, and
//! multiplexes tenants onto the shard workers of one [`OramService`].
//!
//! # Tenant model
//!
//! The server carves the service's global address space into contiguous,
//! disjoint per-tenant ranges, in the order tenants appear in
//! [`ServerConfig::tenants`].  A connection binds to a tenant with a HELLO
//! frame; from then on every address it sends is **tenant-relative**
//! (`0..blocks`) and translated by adding the tenant's base.  There is no
//! way to express another tenant's blocks on the wire, so isolation is by
//! construction rather than by an access-control check.
//!
//! # Quota / backpressure
//!
//! Each tenant has an in-flight request budget ([`ServerConfig::max_inflight`],
//! counted in batch items across all of the tenant's connections).  A request
//! that would exceed it is refused with a [`ErrorCode::QuotaExceeded`] error
//! frame *without touching the ORAM*, so one tenant flooding its connections
//! cannot monopolise the shard workers.  The client is expected to back off
//! and retry.
//!
//! # Failure model
//!
//! Every per-connection handler runs under `catch_unwind`: a panic closes
//! that connection and increments [`NetServer::panic_count`], but the
//! server keeps accepting.  Malformed frames are answered per the severity
//! split documented in [`crate::wire`] — recoverable errors keep the
//! connection, fatal ones (unframeable streams) close it after a typed
//! error frame.

use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use freecursive::{Oram, OramClient, OramService, Request, Response};

use crate::wire::{
    decode_header, decode_request, encode_response, write_frame, ErrorCode, TenantStats, WireError,
    WireOp, WireRequest, WireResponse, WireResult, FRAME_HEADER_LEN, PROTOCOL_VERSION,
};

/// How often blocked reads wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One tenant's slice of the address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Name presented in HELLO frames.  Unique, non-empty.
    pub name: String,
    /// Capacity in blocks; the tenant addresses `0..blocks`.
    pub blocks: u64,
}

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Tenants in address-space order: the first starts at global block 0,
    /// each subsequent one immediately after its predecessor.
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant in-flight budget, in batch items, across all of the
    /// tenant's connections.
    pub max_inflight: u64,
}

impl ServerConfig {
    /// A single tenant named `"default"` covering `blocks` blocks.
    pub fn single_tenant(blocks: u64, max_inflight: u64) -> ServerConfig {
        ServerConfig {
            tenants: vec![TenantSpec {
                name: "default".to_string(),
                blocks,
            }],
            max_inflight,
        }
    }
}

/// Cumulative per-tenant counters, updated lock-free by handler threads.
#[derive(Default)]
struct TenantCounters {
    requests: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    read_removes: AtomicU64,
    batches: AtomicU64,
    errors: AtomicU64,
    quota_rejections: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl TenantCounters {
    fn snapshot(&self) -> TenantStats {
        TenantStats {
            requests: self.requests.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            read_removes: self.read_removes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// A tenant at runtime: its address-space slice, quota gate, and counters.
struct TenantState {
    /// Global block address where this tenant's range starts.
    base: u64,
    /// Range length; tenant-relative addresses are `0..blocks`.
    blocks: u64,
    /// Items currently in flight across the tenant's connections.
    inflight: AtomicU64,
    /// The quota those items are counted against.
    max_inflight: u64,
    counters: TenantCounters,
}

impl TenantState {
    /// Reserves `cost` in-flight items, refusing rather than blocking if
    /// the quota would be exceeded.
    fn try_acquire(&self, cost: u64) -> bool {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(cost);
            if next > self.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    fn release(&self, cost: u64) {
        self.inflight.fetch_sub(cost, Ordering::AcqRel);
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    tenants: HashMap<String, TenantState>,
    block_bytes: usize,
    max_inflight: u64,
    shutting_down: AtomicBool,
    panics: AtomicU64,
}

/// A running TCP front end over one [`OramService`].
///
/// Owns the service: dropping or [`NetServer::shutdown`]-ing the server
/// tears down the ORAM shard workers too.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    service: Option<OramService>,
}

impl NetServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and starts
    /// accepting connections, serving them from `service`'s shard workers.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for an inconsistent config (duplicate
    /// or empty tenant names, ranges exceeding the service's capacity, a
    /// zero quota); otherwise whatever the bind fails with.
    pub fn spawn(
        service: OramService,
        config: ServerConfig,
        bind: impl ToSocketAddrs,
    ) -> io::Result<NetServer> {
        let client = service.client();
        let shared = Arc::new(Shared {
            tenants: plan_tenants(&config, client.num_blocks())?,
            block_bytes: client.block_bytes(),
            max_inflight: config.max_inflight,
            shutting_down: AtomicBool::new(false),
            panics: AtomicU64::new(0),
        });
        let listener = TcpListener::bind(bind)?;
        let local_addr = listener.local_addr()?;
        let handlers = Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("oram-net-accept".to_string())
            .spawn(move || {
                accept_loop(listener, accept_shared, accept_handlers, client);
            })?;

        Ok(NetServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            handlers,
            service: Some(service),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many connection handlers have panicked since the server
    /// started.  A healthy server reports 0 regardless of what clients
    /// send — the malformed-frame test suite pins this.
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// A snapshot of `tenant`'s counters, or `None` for an unknown name.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.shared
            .tenants
            .get(tenant)
            .map(|t| t.counters.snapshot())
    }

    /// Stops accepting, drains the connection handlers, and shuts the
    /// underlying [`OramService`] down.
    ///
    /// # Errors
    ///
    /// Propagates the service's shutdown error (e.g. a shard worker that
    /// panicked earlier); the network side is torn down either way.
    pub fn shutdown(mut self) -> Result<(), freecursive::FreecursiveError> {
        self.teardown_network();
        match self.service.take() {
            Some(service) => service.shutdown().map(|_| ()),
            None => Ok(()),
        }
    }

    fn teardown_network(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // The accept thread blocks in accept(); a throwaway connection to
        // ourselves wakes it so it can observe the flag.
        if let Ok(stream) = TcpStream::connect(self.local_addr) {
            drop(stream);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let drained = {
            let mut guard = self.handlers.lock().expect("handler registry poisoned");
            std::mem::take(&mut *guard)
        };
        for handle in drained {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.teardown_network();
        // The service's own Drop joins the shard workers.
    }
}

/// Validates the tenant plan and lays the ranges out back to back.
fn plan_tenants(
    config: &ServerConfig,
    num_blocks: u64,
) -> io::Result<HashMap<String, TenantState>> {
    let invalid = |detail: String| io::Error::new(io::ErrorKind::InvalidInput, detail);
    if config.tenants.is_empty() {
        return Err(invalid("server config has no tenants".to_string()));
    }
    if config.max_inflight == 0 {
        return Err(invalid(
            "max_inflight of 0 would refuse every request".to_string(),
        ));
    }
    let mut tenants = HashMap::with_capacity(config.tenants.len());
    let mut base = 0u64;
    for spec in &config.tenants {
        if spec.name.is_empty() {
            return Err(invalid("tenant names must be non-empty".to_string()));
        }
        if spec.blocks == 0 {
            return Err(invalid(format!("tenant {:?} has zero blocks", spec.name)));
        }
        let end = base
            .checked_add(spec.blocks)
            .ok_or_else(|| invalid(format!("tenant ranges overflow u64 at {:?}", spec.name)))?;
        if end > num_blocks {
            return Err(invalid(format!(
                "tenant ranges need {end} blocks but the service has {num_blocks}"
            )));
        }
        let state = TenantState {
            base,
            blocks: spec.blocks,
            inflight: AtomicU64::new(0),
            max_inflight: config.max_inflight,
            counters: TenantCounters::default(),
        };
        if tenants.insert(spec.name.clone(), state).is_some() {
            return Err(invalid(format!("duplicate tenant name {:?}", spec.name)));
        }
        base = end;
    }
    Ok(tenants)
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    client: OramClient,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if shared.shutting_down.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let conn_shared = Arc::clone(&shared);
        let conn_client = client.clone();
        let spawned = std::thread::Builder::new()
            .name("oram-net-conn".to_string())
            .spawn(move || {
                let shared = conn_shared;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    serve_connection(&stream, &shared, conn_client);
                }));
                if result.is_err() {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                }
            });
        if let Ok(handle) = spawned {
            handlers
                .lock()
                .expect("handler registry poisoned")
                .push(handle);
        }
    }
}

/// What the interruptible reader observed.
enum ReadOutcome {
    /// The buffer is full.
    Full,
    /// EOF before the first byte: the peer closed cleanly between frames.
    CleanClose,
    /// EOF inside the buffer, a transport error, or server shutdown: stop
    /// serving without treating the stream as well-formed.
    Abort,
}

/// `read_exact` that wakes every [`POLL_INTERVAL`] to honour shutdown.
/// Expects `stream` to already carry that read timeout.
fn read_exact_interruptible(
    stream: &mut &TcpStream,
    buf: &mut [u8],
    shared: &Shared,
) -> ReadOutcome {
    let mut got = 0;
    while got < buf.len() {
        if shared.shutting_down.load(Ordering::Acquire) {
            return ReadOutcome::Abort;
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return ReadOutcome::CleanClose,
            Ok(0) => return ReadOutcome::Abort,
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Abort,
        }
    }
    ReadOutcome::Full
}

/// Serves one connection until close, shutdown, or a fatal protocol error.
fn serve_connection(stream: &TcpStream, shared: &Shared, mut client: OramClient) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut reader = stream;
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_stream);
    // The tenant this connection bound to with HELLO, if any yet.
    let mut tenant: Option<&TenantState> = None;

    loop {
        let mut header_bytes = [0u8; FRAME_HEADER_LEN];
        match read_exact_interruptible(&mut reader, &mut header_bytes, shared) {
            ReadOutcome::Full => {}
            ReadOutcome::CleanClose | ReadOutcome::Abort => return,
        }
        let header = match decode_header(&header_bytes) {
            Ok(h) => h,
            Err(e) => {
                // Header-level violations are all fatal: answer and close.
                let request_id =
                    u64::from_le_bytes(header_bytes[4..12].try_into().expect("8-byte slice"));
                send_reply(&mut writer, request_id, &WireResponse::Error(e), tenant);
                return;
            }
        };
        let mut body = vec![0u8; header.body_len as usize];
        match read_exact_interruptible(&mut reader, &mut body, shared) {
            ReadOutcome::Full => {}
            // EOF inside a frame is a torn close; nothing to answer.
            ReadOutcome::CleanClose | ReadOutcome::Abort => return,
        }
        if let Some(t) = tenant {
            let frame_len = u64::try_from(FRAME_HEADER_LEN + body.len()).expect("fits u64");
            t.counters.bytes_in.fetch_add(frame_len, Ordering::Relaxed);
        }

        let response = match decode_request(header.kind, &body) {
            Ok(WireRequest::Hello { tenant: name }) => match shared.tenants.get(&name) {
                Some(state) => {
                    tenant = Some(state);
                    WireResponse::HelloOk {
                        protocol: PROTOCOL_VERSION,
                        block_bytes: u32::try_from(shared.block_bytes)
                            .expect("block sizes are small"),
                        num_blocks: state.blocks,
                        max_inflight: shared.max_inflight,
                    }
                }
                None => WireResponse::Error(WireError::new(
                    ErrorCode::UnknownTenant,
                    format!("no tenant named {name:?}"),
                )),
            },
            Ok(request) => match tenant {
                Some(state) => handle_data_request(&mut client, shared, state, request),
                None => WireResponse::Error(WireError::new(
                    ErrorCode::NoHello,
                    "send HELLO before data-plane requests",
                )),
            },
            Err(e) => WireResponse::Error(e),
        };

        let fatal = matches!(&response, WireResponse::Error(e) if e.code.is_fatal());
        if !send_reply(&mut writer, header.request_id, &response, tenant) {
            return;
        }
        if fatal {
            return;
        }
    }
}

/// Encodes and writes a reply, flushing so pipelined clients make
/// progress, and maintains the tenant's error/byte counters.  Returns
/// `false` when the connection is beyond use.
fn send_reply(
    writer: &mut BufWriter<TcpStream>,
    request_id: u64,
    response: &WireResponse,
    tenant: Option<&TenantState>,
) -> bool {
    let (kind, body) = encode_response(response);
    if let Some(t) = tenant {
        if matches!(response, WireResponse::Error(_)) {
            t.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let frame_len = u64::try_from(FRAME_HEADER_LEN + body.len()).expect("fits u64");
        t.counters.bytes_out.fetch_add(frame_len, Ordering::Relaxed);
    }
    write_frame(writer, kind, request_id, &body).is_ok() && writer.flush().is_ok()
}

/// Validates, admits (quota), executes, and renders one data-plane request.
fn handle_data_request(
    client: &mut OramClient,
    shared: &Shared,
    tenant: &TenantState,
    request: WireRequest,
) -> WireResponse {
    // Translate into global-address Requests, validating as we go.
    let (ops, is_batch) = match request {
        WireRequest::Stats => return WireResponse::Stats(tenant.counters.snapshot()),
        WireRequest::Read { addr } => (vec![WireOp::Read { addr }], false),
        WireRequest::Write { addr, data } => (vec![WireOp::Write { addr, data }], false),
        WireRequest::ReadRemove { addr } => (vec![WireOp::ReadRemove { addr }], false),
        WireRequest::Batch { items } => (items, true),
        WireRequest::Hello { .. } => unreachable!("hello handled by the caller"),
    };
    let mut requests = Vec::with_capacity(ops.len());
    for op in ops {
        match translate_op(op, tenant, shared.block_bytes) {
            Ok(r) => requests.push(r),
            Err(e) => return WireResponse::Error(e),
        }
    }

    let cost = u64::try_from(requests.len()).expect("batch caps fit u64");
    if !tenant.try_acquire(cost) {
        tenant
            .counters
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        return WireResponse::Error(WireError::new(
            ErrorCode::QuotaExceeded,
            format!(
                "request of {cost} items would exceed the {}-item in-flight quota",
                tenant.max_inflight
            ),
        ));
    }
    count_admitted(tenant, &requests, is_batch);
    let outcome = client.access_batch_owned(requests);
    tenant.release(cost);

    match outcome {
        Ok(responses) => render_responses(responses, is_batch),
        Err(e) => WireResponse::Error(WireError::new(ErrorCode::Backend, e.to_string())),
    }
}

/// Maps a tenant-relative wire op onto a global-address [`Request`].
fn translate_op(
    op: WireOp,
    tenant: &TenantState,
    block_bytes: usize,
) -> Result<Request, WireError> {
    let translate = |addr: u64| -> Result<u64, WireError> {
        if addr < tenant.blocks {
            Ok(tenant.base + addr)
        } else {
            Err(WireError::new(
                ErrorCode::AddrOutOfRange,
                format!(
                    "address {addr} outside the tenant's {} blocks",
                    tenant.blocks
                ),
            ))
        }
    };
    Ok(match op {
        WireOp::Read { addr } => Request::Read {
            addr: translate(addr)?,
        },
        WireOp::ReadRemove { addr } => Request::ReadRemove {
            addr: translate(addr)?,
        },
        WireOp::Write { addr, data } => {
            if data.len() != block_bytes {
                return Err(WireError::new(
                    ErrorCode::SizeMismatch,
                    format!(
                        "write payload of {} bytes, blocks are {block_bytes}",
                        data.len()
                    ),
                ));
            }
            Request::Write {
                addr: translate(addr)?,
                data,
            }
        }
    })
}

fn count_admitted(tenant: &TenantState, requests: &[Request], is_batch: bool) {
    let c = &tenant.counters;
    let total = u64::try_from(requests.len()).expect("batch caps fit u64");
    c.requests.fetch_add(total, Ordering::Relaxed);
    if is_batch {
        c.batches.fetch_add(1, Ordering::Relaxed);
    }
    for r in requests {
        match r {
            Request::Read { .. } => c.reads.fetch_add(1, Ordering::Relaxed),
            Request::Write { .. } => c.writes.fetch_add(1, Ordering::Relaxed),
            Request::ReadRemove { .. } => c.read_removes.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Renders ORAM responses back into wire shape: a BATCH answers with
/// per-item results, single ops with bare DATA/DONE.
fn render_responses(responses: Vec<Response>, is_batch: bool) -> WireResponse {
    let mut results = Vec::with_capacity(responses.len());
    for response in responses {
        results.push(match response.data {
            Some(data) => WireResult::Data(data),
            None => WireResult::Done,
        });
    }
    if is_batch {
        WireResponse::Batch(results)
    } else {
        match results.pop() {
            Some(WireResult::Data(data)) => WireResponse::Data(data),
            Some(WireResult::Done) => WireResponse::Done,
            None => WireResponse::Error(WireError::new(
                ErrorCode::Internal,
                "backend returned no response for a single request",
            )),
        }
    }
}
