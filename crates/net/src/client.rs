//! A blocking TCP client for the wire protocol.
//!
//! [`NetClient::connect`] dials the server, performs the HELLO handshake,
//! and exposes synchronous [`read`](NetClient::read) /
//! [`write`](NetClient::write) / [`batch`](NetClient::batch) calls whose
//! shapes mirror the in-process `OramClient` — the differential test
//! suite leans on that symmetry.
//!
//! For pipelining, the split [`send_request`](NetClient::send_request) /
//! [`recv_response`](NetClient::recv_response) pair lets a caller queue
//! any number of requests before collecting responses; the server answers
//! a connection's requests in arrival order and echoes each request id.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, TenantStats, WireError, WireOp,
    WireRequest, WireResponse, WireResult,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the server closed the connection).
    Io(io::Error),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// The server broke protocol: undecodable frame, mismatched request
    /// id, or a response shape that does not fit the request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Capabilities the server advertised in its HELLO response.
#[derive(Debug, Clone, Copy)]
pub struct SessionInfo {
    /// Server protocol version.
    pub protocol: u8,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// This tenant's capacity (addresses `0..num_blocks`).
    pub num_blocks: u64,
    /// This tenant's in-flight quota.
    pub max_inflight: u64,
}

/// A connected, HELLO-bound protocol client.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    info: SessionInfo,
    next_id: u64,
}

impl NetClient {
    /// Connects and binds to `tenant`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`crate::wire::ErrorCode::UnknownTenant`] for an
    /// unconfigured tenant; transport/protocol failures as usual.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = NetClient {
            reader,
            writer,
            info: SessionInfo {
                protocol: 0,
                block_bytes: 0,
                num_blocks: 0,
                max_inflight: 0,
            },
            next_id: 0,
        };
        let id = client.send_request(&WireRequest::Hello {
            tenant: tenant.to_string(),
        })?;
        match client.recv_expected(id)? {
            WireResponse::HelloOk {
                protocol,
                block_bytes,
                num_blocks,
                max_inflight,
            } => {
                client.info = SessionInfo {
                    protocol,
                    block_bytes,
                    num_blocks,
                    max_inflight,
                };
                Ok(client)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// What the server advertised at handshake time.
    pub fn session(&self) -> SessionInfo {
        self.info
    }

    /// Encodes and sends one request, returning its id.  Does not wait:
    /// callers may pipeline several sends before receiving.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn send_request(&mut self, request: &WireRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let (kind, body) = encode_request(request);
        write_frame(&mut self.writer, kind, id, &body)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Receives the next response frame as `(request_id, response)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] with [`io::ErrorKind::UnexpectedEof`] if the
    /// server closed (e.g. after a fatal error frame it already sent);
    /// [`ClientError::Protocol`] for an undecodable frame.
    pub fn recv_response(&mut self) -> Result<(u64, WireResponse), ClientError> {
        let (header, body) = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let response = decode_response(header.kind, &body)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok((header.request_id, response))
    }

    /// One blocking round trip; checks the echoed id and unwraps error
    /// frames into [`ClientError::Server`].
    fn call(&mut self, request: &WireRequest) -> Result<WireResponse, ClientError> {
        let id = self.send_request(request)?;
        self.recv_expected(id)
    }

    fn recv_expected(&mut self, id: u64) -> Result<WireResponse, ClientError> {
        let (got_id, response) = self.recv_response()?;
        if got_id != id {
            return Err(ClientError::Protocol(format!(
                "response for request {got_id}, expected {id}"
            )));
        }
        match response {
            WireResponse::Error(e) => Err(ClientError::Server(e)),
            other => Ok(other),
        }
    }

    /// Reads one block (tenant-relative address).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read(&mut self, addr: u64) -> Result<Vec<u8>, ClientError> {
        match self.call(&WireRequest::Read { addr })? {
            WireResponse::Data(data) => Ok(data),
            other => Err(unexpected("Data", &other)),
        }
    }

    /// Overwrites one block.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; short or long payloads come back as
    /// [`crate::wire::ErrorCode::SizeMismatch`].
    pub fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), ClientError> {
        match self.call(&WireRequest::Write { addr, data })? {
            WireResponse::Done => Ok(()),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Reads and zeroes one block.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn read_remove(&mut self, addr: u64) -> Result<Vec<u8>, ClientError> {
        match self.call(&WireRequest::ReadRemove { addr })? {
            WireResponse::Data(data) => Ok(data),
            other => Err(unexpected("Data", &other)),
        }
    }

    /// Executes an ordered batch, returning per-item results.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; batches are admitted atomically against the
    /// tenant quota, so an oversized batch fails as a whole with
    /// [`crate::wire::ErrorCode::QuotaExceeded`].
    pub fn batch(&mut self, items: Vec<WireOp>) -> Result<Vec<WireResult>, ClientError> {
        match self.call(&WireRequest::Batch { items })? {
            WireResponse::Batch(results) => Ok(results),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Fetches this tenant's counters.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<TenantStats, ClientError> {
        match self.call(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Flushes and half-closes the write side so the server sees a clean
    /// close; the connection is unusable afterwards.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn close(mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }
}

fn unexpected(wanted: &str, got: &WireResponse) -> ClientError {
    let shape = match got {
        WireResponse::HelloOk { .. } => "HelloOk",
        WireResponse::Data(_) => "Data",
        WireResponse::Done => "Done",
        WireResponse::Batch(_) => "Batch",
        WireResponse::Stats(_) => "Stats",
        WireResponse::Error(_) => "Error",
    };
    ClientError::Protocol(format!("expected a {wanted} response, got {shape}"))
}
