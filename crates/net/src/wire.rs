//! The wire protocol: length-prefixed binary frames with a versioned
//! header, a request id for pipelining, and typed error frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! frame:  magic "ON" (2) ‖ version u8 ‖ kind u8 ‖ request_id u64 ‖
//!         body_len u32 ‖ body (body_len bytes)           — all LE
//! ```
//!
//! The 16-byte header is fixed; `kind` selects the body grammar (request
//! kinds in `0x01..=0x7F`, response kinds in `0x80..=0xFF`).  `request_id`
//! is chosen by the client and echoed verbatim in the response, so a client
//! may pipeline any number of requests before reading a response; the
//! server answers each connection's requests in arrival order.
//!
//! ```text
//! body(HELLO)       = tenant_len u16 ‖ tenant (UTF-8)
//! body(READ)        = addr u64
//! body(WRITE)       = addr u64 ‖ data (rest of body; must be block_bytes)
//! body(READ_REMOVE) = addr u64
//! body(BATCH)       = count u32 ‖ count × item
//!     item          = op u8 (0x02 read / 0x03 write / 0x04 read-remove) ‖
//!                     addr u64 ‖ [data_len u32 ‖ data]      (write only)
//! body(STATS)       = (empty)
//!
//! body(R_HELLO)     = protocol u8 ‖ block_bytes u32 ‖ num_blocks u64 ‖
//!                     max_inflight u64
//! body(R_DATA)      = data (block_bytes)
//! body(R_DONE)      = (empty)
//! body(R_BATCH)     = count u32 ‖ count × item
//!     item          = kind u8 (0x82 data / 0x83 done) ‖ [data_len u32 ‖ data]
//! body(R_STATS)     = 9 × u64 (see [`TenantStats`], field order as declared)
//! body(R_ERROR)     = code u16 ‖ detail_len u16 ‖ detail (UTF-8)
//! ```
//!
//! # Error discipline
//!
//! A malformed frame is *always* answered with a typed `R_ERROR` frame —
//! never a panic, never a hang.  Errors split into two severities:
//!
//! * **Fatal** ([`ErrorCode::is_fatal`]): the byte stream itself can no
//!   longer be trusted (wrong magic, unsupported version, a length prefix
//!   past [`MAX_FRAME_BODY`]).  The server sends the error frame and closes
//!   the connection — resynchronising an untrusted stream is guesswork.
//! * **Recoverable**: the frame was well-delimited but wrong (unknown op,
//!   undecodable body, bad address, quota).  The server answers the error
//!   and keeps serving the connection; pipelined requests behind the bad
//!   one are unaffected.
//!
//! Addresses on the wire are **tenant-relative**: the server maps them into
//! the tenant's disjoint slice of the global ORAM address space (see
//! `crate::server`), so no tenant can name another tenant's blocks.

use std::io::{self, Read, Write};

/// Magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 2] = *b"ON";

/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed frame header length: magic + version + kind + request_id +
/// body_len.
pub const FRAME_HEADER_LEN: usize = 2 + 1 + 1 + 8 + 4;

/// Upper bound on one frame's body.  Defends the server against memory
/// exhaustion from a hostile length prefix: anything larger is answered
/// with [`ErrorCode::Oversized`] and the connection is closed without the
/// body ever being allocated.  4 MiB comfortably holds the largest legal
/// frame ([`MAX_BATCH_ITEMS`] writes of a 4 KiB Phantom block would not
/// fit, but batches that large should be split anyway).
pub const MAX_FRAME_BODY: usize = 4 << 20;

/// Upper bound on items in one BATCH frame.
pub const MAX_BATCH_ITEMS: u32 = 4096;

/// Request frame kinds.
pub const KIND_HELLO: u8 = 0x01;
/// See [`KIND_HELLO`].
pub const KIND_READ: u8 = 0x02;
/// See [`KIND_HELLO`].
pub const KIND_WRITE: u8 = 0x03;
/// See [`KIND_HELLO`].
pub const KIND_READ_REMOVE: u8 = 0x04;
/// See [`KIND_HELLO`].
pub const KIND_BATCH: u8 = 0x05;
/// See [`KIND_HELLO`].
pub const KIND_STATS: u8 = 0x06;

/// Response frame kinds.
pub const KIND_R_HELLO: u8 = 0x81;
/// See [`KIND_R_HELLO`].
pub const KIND_R_DATA: u8 = 0x82;
/// See [`KIND_R_HELLO`].
pub const KIND_R_DONE: u8 = 0x83;
/// See [`KIND_R_HELLO`].
pub const KIND_R_BATCH: u8 = 0x85;
/// See [`KIND_R_HELLO`].
pub const KIND_R_STATS: u8 = 0x86;
/// See [`KIND_R_HELLO`].
pub const KIND_R_ERROR: u8 = 0xFF;

/// Typed error codes carried by `R_ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The frame did not start with [`WIRE_MAGIC`].  Fatal.
    BadMagic,
    /// The frame's version byte is not [`PROTOCOL_VERSION`].  Fatal.
    BadVersion,
    /// The body length prefix exceeds [`MAX_FRAME_BODY`].  Fatal.
    Oversized,
    /// The frame kind is not a known request.
    UnknownOp,
    /// The body does not decode under its kind's grammar.
    Malformed,
    /// A data-plane request arrived before a successful HELLO.
    NoHello,
    /// HELLO named a tenant this server does not serve.
    UnknownTenant,
    /// An address is outside the tenant's namespace.
    AddrOutOfRange,
    /// A write payload's length is not the block size.
    SizeMismatch,
    /// A BATCH frame has more than [`MAX_BATCH_ITEMS`] items.
    BatchTooLarge,
    /// Admitting the request would exceed the tenant's in-flight quota;
    /// back off and retry.
    QuotaExceeded,
    /// The ORAM behind the server failed the request; the detail string
    /// carries the [`freecursive::FreecursiveError`] rendering.
    Backend,
    /// The connection handler hit an internal error (e.g. a caught panic).
    Internal,
}

impl ErrorCode {
    /// The on-wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::BadMagic => 1,
            ErrorCode::BadVersion => 2,
            ErrorCode::Oversized => 3,
            ErrorCode::UnknownOp => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::NoHello => 6,
            ErrorCode::UnknownTenant => 7,
            ErrorCode::AddrOutOfRange => 8,
            ErrorCode::SizeMismatch => 9,
            ErrorCode::BatchTooLarge => 10,
            ErrorCode::QuotaExceeded => 11,
            ErrorCode::Backend => 12,
            ErrorCode::Internal => 13,
        }
    }

    /// Inverse of [`ErrorCode::as_u16`].
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::UnknownOp,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::NoHello,
            7 => ErrorCode::UnknownTenant,
            8 => ErrorCode::AddrOutOfRange,
            9 => ErrorCode::SizeMismatch,
            10 => ErrorCode::BatchTooLarge,
            11 => ErrorCode::QuotaExceeded,
            12 => ErrorCode::Backend,
            13 => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Whether the server closes the connection after reporting this error
    /// (the byte stream can no longer be framed reliably).
    pub fn is_fatal(self) -> bool {
        matches!(
            self,
            ErrorCode::BadMagic | ErrorCode::BadVersion | ErrorCode::Oversized
        )
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadMagic => "bad magic",
            ErrorCode::BadVersion => "bad version",
            ErrorCode::Oversized => "oversized frame",
            ErrorCode::UnknownOp => "unknown op",
            ErrorCode::Malformed => "malformed body",
            ErrorCode::NoHello => "no hello",
            ErrorCode::UnknownTenant => "unknown tenant",
            ErrorCode::AddrOutOfRange => "address out of range",
            ErrorCode::SizeMismatch => "block size mismatch",
            ErrorCode::BatchTooLarge => "batch too large",
            ErrorCode::QuotaExceeded => "quota exceeded",
            ErrorCode::Backend => "backend failure",
            ErrorCode::Internal => "internal error",
        };
        f.write_str(name)
    }
}

/// A protocol-level failure: what an `R_ERROR` frame carries, and what the
/// decoding helpers in this module return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The typed code.
    pub code: ErrorCode,
    /// Human-readable description (kept short; it crosses the wire).
    pub detail: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> WireError {
        WireError {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version byte.
    pub version: u8,
    /// Frame kind.
    pub kind: u8,
    /// Client-chosen id, echoed in the response.
    pub request_id: u64,
    /// Body length in bytes.
    pub body_len: u32,
}

/// Encodes a frame header.
pub fn encode_header(kind: u8, request_id: u64, body_len: u32) -> [u8; FRAME_HEADER_LEN] {
    let mut h = [0u8; FRAME_HEADER_LEN];
    h[0..2].copy_from_slice(&WIRE_MAGIC);
    h[2] = PROTOCOL_VERSION;
    h[3] = kind;
    h[4..12].copy_from_slice(&request_id.to_le_bytes());
    h[12..16].copy_from_slice(&body_len.to_le_bytes());
    h
}

/// Decodes and validates a frame header.
///
/// # Errors
///
/// The fatal [`WireError`]s: [`ErrorCode::BadMagic`],
/// [`ErrorCode::BadVersion`], [`ErrorCode::Oversized`].
pub fn decode_header(h: &[u8; FRAME_HEADER_LEN]) -> Result<FrameHeader, WireError> {
    if h[0..2] != WIRE_MAGIC {
        return Err(WireError::new(
            ErrorCode::BadMagic,
            format!("frame starts {:02x}{:02x}, want \"ON\"", h[0], h[1]),
        ));
    }
    let version = h[2];
    if version != PROTOCOL_VERSION {
        return Err(WireError::new(
            ErrorCode::BadVersion,
            format!("protocol version {version}, this server speaks {PROTOCOL_VERSION}"),
        ));
    }
    let request_id = u64::from_le_bytes(h[4..12].try_into().expect("8-byte slice"));
    let body_len = u32::from_le_bytes(h[12..16].try_into().expect("4-byte slice"));
    if body_len as usize > MAX_FRAME_BODY {
        return Err(WireError::new(
            ErrorCode::Oversized,
            format!("body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte frame cap"),
        ));
    }
    Ok(FrameHeader {
        version,
        kind: h[3],
        request_id,
        body_len,
    })
}

/// Writes one whole frame.
///
/// # Errors
///
/// Propagates I/O errors; `body` longer than [`MAX_FRAME_BODY`] is a
/// caller bug and reported as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, kind: u8, request_id: u64, body: &[u8]) -> io::Result<()> {
    let body_len = u32::try_from(body.len())
        .ok()
        .filter(|&n| n as usize <= MAX_FRAME_BODY)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame body of {} bytes exceeds the cap", body.len()),
            )
        })?;
    w.write_all(&encode_header(kind, request_id, body_len))?;
    w.write_all(body)
}

/// Reads one whole frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean close (EOF exactly at a frame boundary).
/// A close *inside* a frame (header or body) surfaces as
/// [`io::ErrorKind::UnexpectedEof`]; header-level protocol violations
/// surface as [`io::ErrorKind::InvalidData`] wrapping the [`WireError`]
/// (the server's interruptible reader reports these with more nuance —
/// this helper serves clients and tests).
///
/// # Errors
///
/// As described above, plus any transport error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(FrameHeader, Vec<u8>)>> {
    let mut h = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < h.len() {
        match r.read(&mut h[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                ))
            }
            n => got += n,
        }
    }
    let header =
        decode_header(&h).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut body = vec![0u8; header.body_len as usize];
    r.read_exact(&mut body)?;
    Ok(Some((header, body)))
}

/// One operation inside a BATCH frame (addresses tenant-relative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// Return the block's contents.
    Read {
        /// Tenant-relative block address.
        addr: u64,
    },
    /// Overwrite the block.
    Write {
        /// Tenant-relative block address.
        addr: u64,
        /// New contents (must be the server's block size).
        data: Vec<u8>,
    },
    /// Return the block's contents and zero it.
    ReadRemove {
        /// Tenant-relative block address.
        addr: u64,
    },
}

/// A decoded request frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Bind this connection to a tenant namespace.
    Hello {
        /// Tenant name (as configured on the server).
        tenant: String,
    },
    /// Single read.
    Read {
        /// Tenant-relative block address.
        addr: u64,
    },
    /// Single write.
    Write {
        /// Tenant-relative block address.
        addr: u64,
        /// New contents.
        data: Vec<u8>,
    },
    /// Single read-remove.
    ReadRemove {
        /// Tenant-relative block address.
        addr: u64,
    },
    /// Ordered multi-op batch.
    Batch {
        /// The operations, executed in order.
        items: Vec<WireOp>,
    },
    /// Fetch this tenant's counters.
    Stats,
}

/// One result inside an `R_BATCH` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResult {
    /// A read-like op's returned block.
    Data(Vec<u8>),
    /// A write completed.
    Done,
}

/// Per-tenant counters, as served by STATS.  All counters are cumulative
/// since server start (or tenant creation) and cover every connection of
/// the tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Data-plane requests admitted (each batch item counts once).
    pub requests: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Read-removes among them.
    pub read_removes: u64,
    /// BATCH frames admitted.
    pub batches: u64,
    /// Error frames sent (any code, including quota rejections).
    pub errors: u64,
    /// Requests refused with [`ErrorCode::QuotaExceeded`].
    pub quota_rejections: u64,
    /// Frame bytes received on the tenant's connections (post-HELLO).
    pub bytes_in: u64,
    /// Frame bytes sent on the tenant's connections (post-HELLO).
    pub bytes_out: u64,
}

/// A decoded response frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// HELLO accepted; the connection is bound to the tenant.
    HelloOk {
        /// Server protocol version (== frame version today; carried in the
        /// body so future minor revisions can advertise capabilities).
        protocol: u8,
        /// Block size in bytes.
        block_bytes: u32,
        /// The tenant's capacity in blocks (addresses `0..num_blocks`).
        num_blocks: u64,
        /// The tenant's in-flight request quota.
        max_inflight: u64,
    },
    /// A read-like request's block contents.
    Data(Vec<u8>),
    /// A write completed.
    Done,
    /// Per-item results of a BATCH.
    Batch(Vec<WireResult>),
    /// Tenant counters.
    Stats(TenantStats),
    /// Typed failure.
    Error(WireError),
}

// ---------------------------------------------------------------------------
// Body codecs.  Encoders produce (kind, body); decoders take (kind, body).
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a frame body.
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::Malformed,
                    format!(
                        "body truncated: wanted {n} bytes at offset {}, have {}",
                        self.pos,
                        self.buf.len()
                    ),
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::new(
                ErrorCode::Malformed,
                format!(
                    "{} trailing bytes after the body",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

/// Encodes a request into its frame kind and body.
pub fn encode_request(request: &WireRequest) -> (u8, Vec<u8>) {
    match request {
        WireRequest::Hello { tenant } => {
            let name = tenant.as_bytes();
            let mut body = Vec::with_capacity(2 + name.len());
            body.extend_from_slice(&u16::try_from(name.len()).unwrap_or(u16::MAX).to_le_bytes());
            body.extend_from_slice(name);
            (KIND_HELLO, body)
        }
        WireRequest::Read { addr } => (KIND_READ, addr.to_le_bytes().to_vec()),
        WireRequest::Write { addr, data } => {
            let mut body = Vec::with_capacity(8 + data.len());
            body.extend_from_slice(&addr.to_le_bytes());
            body.extend_from_slice(data);
            (KIND_WRITE, body)
        }
        WireRequest::ReadRemove { addr } => (KIND_READ_REMOVE, addr.to_le_bytes().to_vec()),
        WireRequest::Batch { items } => {
            let mut body = Vec::new();
            body.extend_from_slice(&u32::try_from(items.len()).unwrap_or(u32::MAX).to_le_bytes());
            for item in items {
                match item {
                    WireOp::Read { addr } => {
                        body.push(KIND_READ);
                        body.extend_from_slice(&addr.to_le_bytes());
                    }
                    WireOp::Write { addr, data } => {
                        body.push(KIND_WRITE);
                        body.extend_from_slice(&addr.to_le_bytes());
                        body.extend_from_slice(
                            &u32::try_from(data.len()).unwrap_or(u32::MAX).to_le_bytes(),
                        );
                        body.extend_from_slice(data);
                    }
                    WireOp::ReadRemove { addr } => {
                        body.push(KIND_READ_REMOVE);
                        body.extend_from_slice(&addr.to_le_bytes());
                    }
                }
            }
            (KIND_BATCH, body)
        }
        WireRequest::Stats => (KIND_STATS, Vec::new()),
    }
}

/// Decodes a request frame body.
///
/// # Errors
///
/// [`ErrorCode::UnknownOp`] for a kind this server does not serve,
/// [`ErrorCode::Malformed`] for a body that does not decode,
/// [`ErrorCode::BatchTooLarge`] for a batch past [`MAX_BATCH_ITEMS`].
pub fn decode_request(kind: u8, body: &[u8]) -> Result<WireRequest, WireError> {
    let mut r = BodyReader::new(body);
    let request = match kind {
        KIND_HELLO => {
            let len = r.u16()? as usize;
            let name = r.take(len)?;
            let tenant = std::str::from_utf8(name)
                .map_err(|_| WireError::new(ErrorCode::Malformed, "tenant name is not UTF-8"))?
                .to_string();
            WireRequest::Hello { tenant }
        }
        KIND_READ => WireRequest::Read { addr: r.u64()? },
        KIND_WRITE => {
            let addr = r.u64()?;
            let data = r.rest().to_vec();
            WireRequest::Write { addr, data }
        }
        KIND_READ_REMOVE => WireRequest::ReadRemove { addr: r.u64()? },
        KIND_BATCH => {
            let count = r.u32()?;
            if count > MAX_BATCH_ITEMS {
                return Err(WireError::new(
                    ErrorCode::BatchTooLarge,
                    format!("{count} items exceed the {MAX_BATCH_ITEMS}-item batch cap"),
                ));
            }
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let op = r.u8()?;
                let addr = r.u64()?;
                items.push(match op {
                    KIND_READ => WireOp::Read { addr },
                    KIND_WRITE => {
                        let len = r.u32()? as usize;
                        WireOp::Write {
                            addr,
                            data: r.take(len)?.to_vec(),
                        }
                    }
                    KIND_READ_REMOVE => WireOp::ReadRemove { addr },
                    other => {
                        return Err(WireError::new(
                            ErrorCode::Malformed,
                            format!("unknown batch op {other:#04x}"),
                        ))
                    }
                });
            }
            WireRequest::Batch { items }
        }
        KIND_STATS => WireRequest::Stats,
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownOp,
                format!("unknown request kind {other:#04x}"),
            ))
        }
    };
    r.finish()?;
    Ok(request)
}

/// Encodes a response into its frame kind and body.
pub fn encode_response(response: &WireResponse) -> (u8, Vec<u8>) {
    match response {
        WireResponse::HelloOk {
            protocol,
            block_bytes,
            num_blocks,
            max_inflight,
        } => {
            let mut body = Vec::with_capacity(1 + 4 + 8 + 8);
            body.push(*protocol);
            body.extend_from_slice(&block_bytes.to_le_bytes());
            body.extend_from_slice(&num_blocks.to_le_bytes());
            body.extend_from_slice(&max_inflight.to_le_bytes());
            (KIND_R_HELLO, body)
        }
        WireResponse::Data(data) => (KIND_R_DATA, data.clone()),
        WireResponse::Done => (KIND_R_DONE, Vec::new()),
        WireResponse::Batch(items) => {
            let mut body = Vec::new();
            body.extend_from_slice(&u32::try_from(items.len()).unwrap_or(u32::MAX).to_le_bytes());
            for item in items {
                match item {
                    WireResult::Data(data) => {
                        body.push(KIND_R_DATA);
                        body.extend_from_slice(
                            &u32::try_from(data.len()).unwrap_or(u32::MAX).to_le_bytes(),
                        );
                        body.extend_from_slice(data);
                    }
                    WireResult::Done => body.push(KIND_R_DONE),
                }
            }
            (KIND_R_BATCH, body)
        }
        WireResponse::Stats(s) => {
            let mut body = Vec::with_capacity(9 * 8);
            for v in [
                s.requests,
                s.reads,
                s.writes,
                s.read_removes,
                s.batches,
                s.errors,
                s.quota_rejections,
                s.bytes_in,
                s.bytes_out,
            ] {
                body.extend_from_slice(&v.to_le_bytes());
            }
            (KIND_R_STATS, body)
        }
        WireResponse::Error(e) => {
            let detail = e.detail.as_bytes();
            let len = detail.len().min(u16::MAX as usize);
            let mut body = Vec::with_capacity(4 + len);
            body.extend_from_slice(&e.code.as_u16().to_le_bytes());
            body.extend_from_slice(&u16::try_from(len).expect("clamped").to_le_bytes());
            body.extend_from_slice(&detail[..len]);
            (KIND_R_ERROR, body)
        }
    }
}

/// Decodes a response frame body.
///
/// # Errors
///
/// [`ErrorCode::Malformed`] / [`ErrorCode::UnknownOp`] if the frame does
/// not decode (a server this client should stop talking to).
pub fn decode_response(kind: u8, body: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = BodyReader::new(body);
    let response = match kind {
        KIND_R_HELLO => WireResponse::HelloOk {
            protocol: r.u8()?,
            block_bytes: r.u32()?,
            num_blocks: r.u64()?,
            max_inflight: r.u64()?,
        },
        KIND_R_DATA => WireResponse::Data(r.rest().to_vec()),
        KIND_R_DONE => WireResponse::Done,
        KIND_R_BATCH => {
            let count = r.u32()?;
            if count > MAX_BATCH_ITEMS {
                return Err(WireError::new(
                    ErrorCode::Malformed,
                    format!("{count} batch results exceed the item cap"),
                ));
            }
            let mut items = Vec::with_capacity(count as usize);
            for _ in 0..count {
                items.push(match r.u8()? {
                    KIND_R_DATA => {
                        let len = r.u32()? as usize;
                        WireResult::Data(r.take(len)?.to_vec())
                    }
                    KIND_R_DONE => WireResult::Done,
                    other => {
                        return Err(WireError::new(
                            ErrorCode::Malformed,
                            format!("unknown batch result kind {other:#04x}"),
                        ))
                    }
                });
            }
            WireResponse::Batch(items)
        }
        KIND_R_STATS => WireResponse::Stats(TenantStats {
            requests: r.u64()?,
            reads: r.u64()?,
            writes: r.u64()?,
            read_removes: r.u64()?,
            batches: r.u64()?,
            errors: r.u64()?,
            quota_rejections: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
        }),
        KIND_R_ERROR => {
            let code_raw = r.u16()?;
            let code = ErrorCode::from_u16(code_raw).ok_or_else(|| {
                WireError::new(
                    ErrorCode::Malformed,
                    format!("unknown error code {code_raw}"),
                )
            })?;
            let len = r.u16()? as usize;
            let detail = String::from_utf8_lossy(r.take(len)?).into_owned();
            WireResponse::Error(WireError { code, detail })
        }
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownOp,
                format!("unknown response kind {other:#04x}"),
            ))
        }
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: WireRequest) {
        let (kind, body) = encode_request(&request);
        assert_eq!(decode_request(kind, &body).unwrap(), request);
    }

    fn roundtrip_response(response: WireResponse) {
        let (kind, body) = encode_response(&response);
        assert_eq!(decode_response(kind, &body).unwrap(), response);
    }

    #[test]
    fn every_message_shape_roundtrips() {
        roundtrip_request(WireRequest::Hello {
            tenant: "alpha".into(),
        });
        roundtrip_request(WireRequest::Read { addr: 7 });
        roundtrip_request(WireRequest::Write {
            addr: u64::MAX,
            data: vec![0xAB; 64],
        });
        roundtrip_request(WireRequest::ReadRemove { addr: 0 });
        roundtrip_request(WireRequest::Batch {
            items: vec![
                WireOp::Read { addr: 1 },
                WireOp::Write {
                    addr: 2,
                    data: vec![3; 16],
                },
                WireOp::ReadRemove { addr: 3 },
            ],
        });
        roundtrip_request(WireRequest::Batch { items: vec![] });
        roundtrip_request(WireRequest::Stats);

        roundtrip_response(WireResponse::HelloOk {
            protocol: PROTOCOL_VERSION,
            block_bytes: 64,
            num_blocks: 1 << 20,
            max_inflight: 256,
        });
        roundtrip_response(WireResponse::Data(vec![9; 64]));
        roundtrip_response(WireResponse::Done);
        roundtrip_response(WireResponse::Batch(vec![
            WireResult::Data(vec![1; 8]),
            WireResult::Done,
        ]));
        roundtrip_response(WireResponse::Stats(TenantStats {
            requests: 1,
            reads: 2,
            writes: 3,
            read_removes: 4,
            batches: 5,
            errors: 6,
            quota_rejections: 7,
            bytes_in: 8,
            bytes_out: 9,
        }));
        roundtrip_response(WireResponse::Error(WireError::new(
            ErrorCode::QuotaExceeded,
            "back off",
        )));
    }

    #[test]
    fn header_rejects_the_fatal_shapes() {
        let good = encode_header(KIND_READ, 42, 8);
        let h = decode_header(&good).unwrap();
        assert_eq!(h.kind, KIND_READ);
        assert_eq!(h.request_id, 42);
        assert_eq!(h.body_len, 8);

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert_eq!(
            decode_header(&bad_magic).unwrap_err().code,
            ErrorCode::BadMagic
        );

        let mut bad_version = good;
        bad_version[2] = 99;
        assert_eq!(
            decode_header(&bad_version).unwrap_err().code,
            ErrorCode::BadVersion
        );

        let mut oversized = good;
        oversized[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_header(&oversized).unwrap_err().code,
            ErrorCode::Oversized
        );
    }

    #[test]
    fn malformed_bodies_decode_to_typed_errors_not_panics() {
        // Truncated at every prefix of a well-formed WRITE body.
        let (kind, body) = encode_request(&WireRequest::Write {
            addr: 5,
            data: vec![1; 16],
        });
        for cut in 0..8 {
            // A write body shorter than its 8-byte address is malformed
            // (anything >= 8 bytes is a legal shorter payload, caught at
            // the block-size check server-side).
            assert_eq!(
                decode_request(kind, &body[..cut]).unwrap_err().code,
                ErrorCode::Malformed
            );
        }
        // A batch whose count lies about the items present.
        let mut lying = 3u32.to_le_bytes().to_vec();
        lying.push(KIND_READ);
        lying.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            decode_request(KIND_BATCH, &lying).unwrap_err().code,
            ErrorCode::Malformed
        );
        // A batch past the item cap is typed precisely.
        let huge = (MAX_BATCH_ITEMS + 1).to_le_bytes().to_vec();
        assert_eq!(
            decode_request(KIND_BATCH, &huge).unwrap_err().code,
            ErrorCode::BatchTooLarge
        );
        // Trailing bytes after a complete body.
        let mut read = 0u64.to_le_bytes().to_vec();
        read.push(0xEE);
        assert_eq!(
            decode_request(KIND_READ, &read).unwrap_err().code,
            ErrorCode::Malformed
        );
        // Unknown kinds.
        assert_eq!(
            decode_request(0x42, &[]).unwrap_err().code,
            ErrorCode::UnknownOp
        );
        // Non-UTF-8 tenant names.
        let mut hello = 2u16.to_le_bytes().to_vec();
        hello.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_request(KIND_HELLO, &hello).unwrap_err().code,
            ErrorCode::Malformed
        );
    }

    #[test]
    fn frame_io_roundtrips_and_reports_clean_vs_torn_close() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_READ, 7, &0xABu64.to_le_bytes()).unwrap();
        write_frame(&mut buf, KIND_STATS, 8, &[]).unwrap();
        let mut r = &buf[..];
        let (h1, b1) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((h1.kind, h1.request_id), (KIND_READ, 7));
        assert_eq!(b1, 0xABu64.to_le_bytes());
        let (h2, b2) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((h2.kind, h2.request_id), (KIND_STATS, 8));
        assert!(b2.is_empty());
        // Clean close at the boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
        // Torn close mid-header and mid-body.
        let mut torn = &buf[..7];
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        let mut torn = &buf[..FRAME_HEADER_LEN + 3];
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn error_codes_roundtrip_and_classify() {
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::Oversized,
            ErrorCode::UnknownOp,
            ErrorCode::Malformed,
            ErrorCode::NoHello,
            ErrorCode::UnknownTenant,
            ErrorCode::AddrOutOfRange,
            ErrorCode::SizeMismatch,
            ErrorCode::BatchTooLarge,
            ErrorCode::QuotaExceeded,
            ErrorCode::Backend,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
        assert!(ErrorCode::BadMagic.is_fatal());
        assert!(ErrorCode::Oversized.is_fatal());
        assert!(!ErrorCode::QuotaExceeded.is_fatal());
        assert!(!ErrorCode::Backend.is_fatal());
    }
}
