//! The baseline Recursive ORAM frontend (Shi et al. \[30\], as optimised by Ren
//! et al. \[26\]) — the `R_X8` comparison point of the evaluation.
//!
//! Each PosMap level lives in its **own** ORAM tree; a single data access
//! walks the on-chip PosMap, then every PosMap ORAM from the smallest down to
//! ORAM 1, and finally the Data ORAM (§3.2) — `H` full path accesses in
//! total, independent of program locality.  This is the overhead the PLB is
//! designed to remove.

use crate::error::FreecursiveError;
use crate::stats::FrontendStats;
use crate::traits::{Oram, Request, Response};
use path_oram::{
    AccessOp, Durability, EncryptionMode, OramBackend, OramError, OramParams, PathOramBackend,
    StorageKind,
};
use posmap::addressing::RecursionAddressing;
use posmap::onchip::{OnChipEntryKind, OnChipPosMap};
use posmap::UncompressedPosMapBlock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the baseline Recursive ORAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursiveOramConfig {
    /// Number of data blocks (N).
    pub num_blocks: u64,
    /// Data block size in bytes (the LLC line size).
    pub data_block_bytes: usize,
    /// PosMap ORAM block size in bytes; \[26\] uses 32 bytes, giving X = 8.
    pub posmap_block_bytes: usize,
    /// Slots per bucket.
    pub z: usize,
    /// On-chip PosMap capacity in entries.
    pub onchip_entries: u64,
    /// Bucket encryption discipline for every tree.
    pub encryption: EncryptionMode,
    /// RNG seed for deterministic leaf generation.
    pub seed: u64,
    /// Where the per-level trees live; every level shares one storage
    /// directory, distinguished by its level label.
    pub storage: StorageKind,
    /// Write-ahead-log discipline for file-backed trees (see
    /// [`path_oram::wal`]); memory-backed trees ignore it.
    pub durability: Durability,
}

impl RecursiveOramConfig {
    /// The paper's `R_X8` baseline: 32-byte PosMap ORAM blocks (X = 8)
    /// following \[26\].
    pub fn r_x8(num_blocks: u64, data_block_bytes: usize) -> Self {
        Self {
            num_blocks,
            data_block_bytes,
            posmap_block_bytes: 32,
            z: 4,
            onchip_entries: (8 << 10) / 4,
            encryption: EncryptionMode::GlobalSeed,
            seed: 1,
            storage: StorageKind::from_env(),
            durability: Durability::from_env(),
        }
    }

    /// Sets the on-chip PosMap capacity in entries.
    pub fn with_onchip_entries(mut self, entries: u64) -> Self {
        self.onchip_entries = entries;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Leaves per PosMap block (X).
    pub fn x(&self) -> u64 {
        (self.posmap_block_bytes / posmap::uncompressed::LEAF_ENTRY_BYTES) as u64
    }
}

/// The baseline Recursive Path ORAM controller: one ORAM tree per recursion
/// level, uncompressed PosMap blocks, no PLB, no integrity.  Generic over
/// the same [`OramBackend`] seam as [`crate::FreecursiveOram`].
///
/// # Examples
///
/// ```
/// use freecursive::{Oram, OramBuilder, SchemePoint};
///
/// # fn main() -> Result<(), freecursive::FreecursiveError> {
/// let mut oram = OramBuilder::for_scheme(SchemePoint::RX8)
///     .num_blocks(1 << 12)
///     .build_recursive()?;
/// oram.write(5, &vec![0xAA; 64])?;
/// assert_eq!(oram.read(5)?, vec![0xAA; 64]);
/// // Every request walked all H ORAMs.
/// let h = oram.num_levels() as u64;
/// assert_eq!(oram.stats().total_backend_accesses(), 2 * h);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RecursiveOram<B: OramBackend = PathOramBackend> {
    config: RecursiveOramConfig,
    rec: RecursionAddressing,
    /// Index 0 is the Data ORAM; index `i ≥ 1` is PosMap ORAM `i`.
    backends: Vec<B>,
    onchip: OnChipPosMap,
    rng: StdRng,
    stats: FrontendStats,
    /// Scratch: PosMap block payloads fetched during the walk (capacity
    /// reused across requests).
    posmap_buf: Vec<u8>,
}

/// Geometry and key material of recursion level `level`, derived
/// deterministically from the configuration (shared by `new` and `resume`).
fn level_geometry(
    config: &RecursiveOramConfig,
    rec: &RecursionAddressing,
    level: u32,
) -> (OramParams, [u8; 16]) {
    let block_bytes = if level == 0 {
        config.data_block_bytes
    } else {
        config.posmap_block_bytes
    };
    let params = OramParams::new(rec.blocks_at_level(level), block_bytes, config.z);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&config.seed.to_le_bytes());
    key[8..].copy_from_slice(&u64::from(level).to_le_bytes());
    (params, key)
}

impl<B: OramBackend> RecursiveOram<B> {
    /// Builds the controller, allocating one ORAM tree per recursion level.
    ///
    /// # Errors
    ///
    /// Propagates backend construction errors.
    pub fn new(config: RecursiveOramConfig) -> Result<Self, FreecursiveError> {
        let rec = RecursionAddressing::new(config.num_blocks, config.x(), config.onchip_entries);
        let mut backends = Vec::new();
        for level in 0..rec.num_levels() {
            let (params, key) = level_geometry(&config, &rec, level);
            backends.push(B::new_backend_with(
                params,
                config.encryption,
                key,
                config.seed,
                &config.storage,
                config.durability,
                level,
            )?);
        }
        Ok(Self::assemble(config, rec, backends))
    }

    /// Everything `new` does after the per-level backends exist; shared
    /// with the resume path.
    fn assemble(config: RecursiveOramConfig, rec: RecursionAddressing, backends: Vec<B>) -> Self {
        let mut onchip = OnChipPosMap::new(rec.required_onchip_entries(), OnChipEntryKind::Leaf);
        // A deployed ORAM is initialised with every block mapped to a uniform
        // random leaf (§3.1).  Emulate that here: zero-initialised entries
        // would send every first-touch access down path 0, which both leaks
        // and overloads that one path.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_5a17);
        let top_leaves = backends[(rec.num_levels() - 1) as usize]
            .params()
            .num_leaves();
        for i in 0..onchip.len() as u64 {
            onchip.set(i, rng.gen_range(0..top_leaves));
        }
        let posmap_buf = Vec::with_capacity(config.posmap_block_bytes);
        Self {
            rng,
            config,
            rec,
            backends,
            onchip,
            stats: FrontendStats::default(),
            posmap_buf,
        }
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    fn put_config(out: &mut Vec<u8>, config: &RecursiveOramConfig) {
        use path_oram::snapshot::put_u64;
        let RecursiveOramConfig {
            num_blocks,
            data_block_bytes,
            posmap_block_bytes,
            z,
            onchip_entries,
            encryption,
            seed,
            storage,
            durability,
        } = config;
        put_u64(out, *num_blocks);
        put_u64(out, *data_block_bytes as u64);
        put_u64(out, *posmap_block_bytes as u64);
        put_u64(out, *z as u64);
        put_u64(out, *onchip_entries);
        crate::persist::put_encryption(out, *encryption);
        put_u64(out, *seed);
        storage.save(out);
        durability.save(out);
    }

    fn get_config(
        r: &mut path_oram::snapshot::SnapReader<'_>,
        dir: &std::path::Path,
    ) -> Result<RecursiveOramConfig, OramError> {
        Ok(RecursiveOramConfig {
            num_blocks: r.u64()?,
            data_block_bytes: r.u64()? as usize,
            posmap_block_bytes: r.u64()? as usize,
            z: r.u64()? as usize,
            onchip_entries: r.u64()?,
            encryption: crate::persist::get_encryption(r)?,
            seed: r.u64()?,
            storage: StorageKind::load(r, dir)?,
            durability: Durability::load(r)?,
        })
    }

    /// Persists the whole instance into `dir`: configuration, on-chip
    /// PosMap, RNG position, statistics and each level's backend state in a
    /// digest-sealed `oram.state`, plus one set of tree files per recursion
    /// level (labelled by level index).
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Backend`] wrapping storage/snapshot failures.
    pub fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        use path_oram::snapshot::{put_bytes, put_u64};
        std::fs::create_dir_all(dir).map_err(|e| crate::persist::dir_error(dir, e))?;
        let mut payload = Vec::new();
        Self::put_config(&mut payload, &self.config);
        crate::persist::put_rng_state(&mut payload, self.rng.state());
        put_u64(&mut payload, self.onchip.entries().len() as u64);
        for &entry in self.onchip.entries() {
            put_u64(&mut payload, entry);
        }
        crate::persist::put_frontend_stats(&mut payload, &self.stats);
        put_u64(&mut payload, self.backends.len() as u64);
        let mut backend_state = Vec::new();
        for backend in &self.backends {
            backend_state.clear();
            backend.save_state(&mut backend_state)?;
            put_bytes(&mut payload, &backend_state);
        }
        path_oram::snapshot::write_state_file(
            &crate::persist::state_path(dir),
            crate::persist::KIND_RECURSIVE,
            &payload,
        )?;
        for (level, backend) in self.backends.iter().enumerate() {
            backend.persist_tree(dir, level as u32)?;
        }
        Ok(())
    }

    /// Rebuilds an instance from a snapshot directory written by
    /// [`RecursiveOram::persist`].
    ///
    /// # Errors
    ///
    /// As for [`FreecursiveOram::resume`](crate::FreecursiveOram::resume).
    pub fn resume(dir: &std::path::Path) -> Result<Self, FreecursiveError> {
        use path_oram::snapshot::SnapReader;
        let (kind, payload) =
            path_oram::snapshot::read_state_file(&crate::persist::state_path(dir))?;
        if kind != crate::persist::KIND_RECURSIVE {
            return Err(crate::persist::wrong_kind("Recursive ORAM", kind).into());
        }
        let mut r = SnapReader::new(&payload);
        let config = Self::get_config(&mut r, dir)?;
        let rng_state = crate::persist::get_rng_state(&mut r)?;
        let onchip_count = r.len(r.remaining() / 8)?;
        let mut onchip_entries = Vec::with_capacity(onchip_count);
        for _ in 0..onchip_count {
            onchip_entries.push(r.u64()?);
        }
        let stats = crate::persist::get_frontend_stats(&mut r)?;
        let rec = RecursionAddressing::new(config.num_blocks, config.x(), config.onchip_entries);
        let level_count = r.len(r.remaining())?;
        if level_count != rec.num_levels() as usize {
            return Err(OramError::Snapshot {
                detail: format!(
                    "snapshot has {level_count} recursion levels, configuration implies {}",
                    rec.num_levels()
                ),
            }
            .into());
        }
        let mut backends = Vec::with_capacity(level_count);
        for level in 0..rec.num_levels() {
            let state = r.bytes()?;
            let (params, key) = level_geometry(&config, &rec, level);
            backends.push(B::resume_backend(
                params,
                config.encryption,
                key,
                config.seed,
                &config.storage,
                config.durability,
                dir,
                level,
                state,
            )?);
        }
        r.finish()?;
        let mut oram = Self::assemble(config, rec, backends);
        oram.rng = StdRng::from_state(rng_state);
        if !oram.onchip.load_entries(&onchip_entries) {
            return Err(OramError::Snapshot {
                detail: "on-chip posmap size does not match the configuration".into(),
            }
            .into());
        }
        oram.stats = stats;
        Ok(oram)
    }

    /// Number of ORAMs in the recursion (H).
    pub fn num_levels(&self) -> u32 {
        self.rec.num_levels()
    }

    /// The recursion addressing in use.
    pub fn addressing(&self) -> &RecursionAddressing {
        &self.rec
    }

    /// Per-level backends (diagnostics; index 0 is the Data ORAM).
    pub fn backend(&self, level: u32) -> &B {
        &self.backends[level as usize]
    }

    // lint: ct-scope, no-alloc
    fn random_leaf(&mut self, level: u32) -> u64 {
        let leaves = self.backends[level as usize].params().num_leaves();
        self.rng.gen_range(0..leaves)
    }

    fn access_inner(
        &mut self,
        addr: u64,
        op: AccessOp,
        data: Option<&[u8]>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        // lint: allow(secret-branch, range validation of caller input; a malformed address aborts visibly before any memory touch)
        if addr >= self.config.num_blocks {
            return Err(OramError::AddressOutOfRange {
                addr,
                capacity: self.config.num_blocks,
            });
        }
        self.stats.frontend_requests += 1;
        let h = self.rec.num_levels();
        let x = self.rec.x();

        // Root of the walk: the on-chip PosMap holds the leaf of the level
        // H-1 block covering `addr`.
        let top = h - 1;
        let top_addr = self.rec.posmap_block_addr(top, addr);
        let mut cur_leaf = self.onchip.get(top_addr);
        let mut new_leaf = self.random_leaf(top);
        self.onchip.set(top_addr, new_leaf);

        // Walk PosMap ORAMs H-1 .. 1 (a "page table walk", §3.2).
        for level in (1..=top).rev() {
            let a_i = self.rec.posmap_block_addr(level, addr);
            let fetched = self.backends[level as usize].access_into(
                AccessOp::ReadRmv,
                a_i,
                cur_leaf,
                0,
                None,
                &mut self.posmap_buf,
            )?;
            assert!(fetched, "backend readrmv returned no data");
            let bytes = &self.posmap_buf;
            let mut block = if bytes.iter().all(|&b| b == 0) {
                // A never-written PosMap block: in a deployed system its
                // entries would have been initialised to random leaves; do
                // that now so children are spread over the whole tree.
                let mut fresh = UncompressedPosMapBlock::new(x as usize);
                let child_leaves = self.backends[(level - 1) as usize].params().num_leaves();
                for j in 0..x as usize {
                    fresh.set_leaf(j, self.rng.gen_range(0..child_leaves));
                }
                fresh
            } else {
                UncompressedPosMapBlock::from_bytes(bytes, x as usize)
            };
            let entry = self.rec.entry_index(level, addr);
            let child_cur_leaf = block.leaf(entry);
            let child_new_leaf = self.random_leaf(level - 1);
            block.set_leaf(entry, child_new_leaf);
            let serialized = block.to_bytes(self.config.posmap_block_bytes);
            self.backends[level as usize].access(
                AccessOp::Append,
                a_i,
                0,
                new_leaf,
                Some(&serialized),
            )?;
            let access_bytes = self.backends[level as usize].params().access_bytes();
            self.stats.posmap_backend_accesses += 1;
            self.stats.posmap_bytes_moved += access_bytes;
            self.stats.appends += 1;
            cur_leaf = child_cur_leaf;
            new_leaf = child_new_leaf;
        }

        // Finally the Data ORAM access.
        let result = self.backends[0].access(op, addr, cur_leaf, new_leaf, data)?;
        self.stats.data_backend_accesses += 1;
        self.stats.data_bytes_moved += self.backends[0].params().access_bytes();
        let mut backend_totals = path_oram::BackendStats::default();
        for backend in &self.backends {
            backend_totals.accumulate(backend.stats());
        }
        self.stats.backend = backend_totals;
        Ok(result)
    }
    // lint: end

    /// Rejects write payloads of the wrong length before any tree is walked.
    fn check_write_size(&self, data: &[u8]) -> Result<(), FreecursiveError> {
        if data.len() != self.config.data_block_bytes {
            return Err(OramError::BlockSizeMismatch {
                expected: self.config.data_block_bytes,
                actual: data.len(),
            }
            .into());
        }
        Ok(())
    }

    /// Dispatches one borrowed request — the single implementation behind
    /// both [`Oram::access`] and [`Oram::access_batch`], so the two paths
    /// cannot diverge.
    fn access_ref(&mut self, request: &Request) -> Result<Response, FreecursiveError> {
        let response = match request {
            Request::Read { addr } => Response {
                addr: *addr,
                data: Some(
                    self.access_inner(*addr, AccessOp::Read, None)?
                        .expect("read returns data"),
                ),
            },
            Request::Write { addr, data } => {
                self.check_write_size(data)?;
                self.access_inner(*addr, AccessOp::Write, Some(data))?;
                Response {
                    addr: *addr,
                    data: None,
                }
            }
            // The data-ORAM `readrmv` removes the block outright; with no
            // PMMAC counters to keep consistent, the backend's implicit
            // zero-initialisation makes later reads return zeros, which is
            // exactly the read-remove contract.
            Request::ReadRemove { addr } => Response {
                addr: *addr,
                data: Some(
                    self.access_inner(*addr, AccessOp::ReadRmv, None)?
                        .expect("readrmv returns data"),
                ),
            },
        };
        Ok(response)
    }
}

impl<B: OramBackend> Oram for RecursiveOram<B> {
    fn block_bytes(&self) -> usize {
        self.config.data_block_bytes
    }

    fn num_blocks(&self) -> u64 {
        self.config.num_blocks
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        self.access_ref(&request)
    }

    fn access_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, FreecursiveError> {
        // One backend batch window per level for the whole batch: each
        // level's ORAM dedupes the upper tree buckets shared by the batch's
        // paths (read/sealed once per batch, not once per access).  The
        // windows are bracketed entirely inside this call — closed even when
        // an access fails, since earlier accesses' deferred writebacks must
        // still reach the stores; an access error stays the primary failure.
        for backend in &mut self.backends {
            backend.begin_batch();
        }
        let result: Result<Vec<Response>, FreecursiveError> = requests
            .iter()
            .enumerate()
            .map(|(index, request)| {
                self.access_ref(request)
                    .map_err(|e| e.with_batch_index(index))
            })
            .collect();
        let mut flushed = Ok(());
        for backend in &mut self.backends {
            let end = backend.end_batch();
            if flushed.is_ok() {
                flushed = end;
            }
        }
        let responses = result?;
        flushed?;
        Ok(responses)
    }

    fn access_batch_owned(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        // The by-ref override already borrows write payloads without
        // cloning, so the owned path needs no separate implementation.
        self.access_batch(&requests)
    }

    fn read(&mut self, addr: u64) -> Result<Vec<u8>, FreecursiveError> {
        Ok(self
            .access_inner(addr, AccessOp::Read, None)?
            .expect("read returns data"))
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), FreecursiveError> {
        self.check_write_size(data)?;
        self.access_inner(addr, AccessOp::Write, Some(data))?;
        Ok(())
    }

    fn read_remove(&mut self, addr: u64) -> Result<Vec<u8>, FreecursiveError> {
        Ok(self
            .access_inner(addr, AccessOp::ReadRmv, None)?
            .expect("readrmv returns data"))
    }

    fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FrontendStats::default();
        for b in &mut self.backends {
            b.reset_stats();
        }
    }

    fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        RecursiveOram::persist(self, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_oram() -> RecursiveOram {
        // Small on-chip PosMap to force several levels of recursion.
        crate::builder::OramBuilder::for_scheme(crate::scheme::SchemePoint::RX8)
            .num_blocks(1 << 12)
            .block_bytes(64)
            .onchip_entries(16)
            .build_recursive()
            .unwrap()
    }

    #[test]
    fn recursion_depth_matches_formula() {
        let oram = small_oram();
        // N = 2^12, X = 8, p = 16: H = ceil(log(2^12/16)/log 8) + 1 = 3 + 1.
        assert_eq!(oram.num_levels(), 4);
    }

    #[test]
    fn write_read_roundtrip_across_many_blocks() {
        let mut oram = small_oram();
        for addr in (0..64u64).step_by(7) {
            let data = vec![addr as u8; 64];
            oram.write(addr, &data).unwrap();
        }
        for addr in (0..64u64).step_by(7) {
            assert_eq!(oram.read(addr).unwrap(), vec![addr as u8; 64]);
        }
    }

    #[test]
    fn every_request_walks_all_levels() {
        let mut oram = small_oram();
        let h = u64::from(oram.num_levels());
        for addr in 0..20u64 {
            oram.read(addr).unwrap();
        }
        assert_eq!(oram.stats().frontend_requests, 20);
        assert_eq!(oram.stats().data_backend_accesses, 20);
        assert_eq!(oram.stats().posmap_backend_accesses, 20 * (h - 1));
        assert_eq!(oram.stats().backend_accesses_per_request(), Some(h as f64));
    }

    #[test]
    fn posmap_bandwidth_fraction_is_substantial() {
        // The motivation for the whole paper (Figure 3): with small blocks a
        // large fraction of bytes moved belongs to PosMap ORAMs.
        let mut oram = small_oram();
        for addr in 0..50u64 {
            oram.read(addr % 100).unwrap();
        }
        let frac = oram.stats().posmap_bandwidth_fraction().unwrap();
        assert!(frac > 0.2, "posmap fraction {frac}");
    }

    #[test]
    fn random_workload_is_consistent_with_reference_model() {
        let mut oram = small_oram();
        let n = 256u64;
        let mut reference: Vec<Option<Vec<u8>>> = vec![None; n as usize];
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..1500u32 {
            let addr = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                let mut data = vec![0u8; 64];
                rng.fill(&mut data[..]);
                data[0] = i as u8;
                oram.write(addr, &data).unwrap();
                reference[addr as usize] = Some(data);
            } else {
                let got = oram.read(addr).unwrap();
                match &reference[addr as usize] {
                    Some(expected) => assert_eq!(&got, expected),
                    None => assert_eq!(got, vec![0u8; 64]),
                }
            }
        }
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let mut oram = small_oram();
        assert!(matches!(
            oram.read(1 << 12),
            Err(FreecursiveError::Backend(
                OramError::AddressOutOfRange { .. }
            ))
        ));
    }

    #[test]
    fn read_remove_returns_old_contents_and_zeroes_the_block() {
        let mut oram = small_oram();
        oram.write(11, &[0xCD; 64]).unwrap();
        assert_eq!(oram.read_remove(11).unwrap(), vec![0xCD; 64]);
        assert_eq!(oram.read(11).unwrap(), vec![0u8; 64]);
    }
}
