//! Configuration for the Freecursive ORAM controller.
//!
//! The paper names its design points with the letters **P** (PLB), **I**
//! (integrity / PMMAC) and **C** (compressed PosMap) followed by the PosMap
//! block fan-out X (§7.1.4).  The presets below reproduce those points:
//!
//! | Preset       | PLB | PMMAC | Compressed | X (64 B blocks) |
//! |--------------|-----|-------|------------|-----------------|
//! | `R_X8`       | –   | –     | –          | 8 (baseline Recursive ORAM) |
//! | `P_X16`      | ✓   | –     | –          | 16 |
//! | `PC_X32`     | ✓   | –     | ✓          | 32 |
//! | `PI_X8`      | ✓   | ✓     | –          | 8 (flat 64-bit counters) |
//! | `PIC_X32`    | ✓   | ✓     | ✓          | 32 |
//!
//! The preset constructors below are the raw material of
//! [`crate::OramBuilder`]; external code should construct design points
//! through the builder (`OramBuilder::for_scheme(SchemePoint::PicX32)`)
//! rather than calling the presets directly.

use crate::error::ConfigError;
use path_oram::{Durability, EncryptionMode, StorageKind};
use posmap::compressed::{CompressedPosMapBlock, DEFAULT_ALPHA, DEFAULT_BETA};
use serde::{Deserialize, Serialize};

/// How PosMap blocks represent the leaves of the blocks they cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PosMapFormat {
    /// X raw leaf labels per block (4 bytes each); leaves drawn uniformly at
    /// random on every remap.  The baseline format (§3.2).
    UncompressedLeaves,
    /// X flat 64-bit access counters per block; leaves derived via the PRF.
    /// Required by PMMAC when compression is disabled (§6.2.2, PI_X8).
    FlatCounters,
    /// The compressed format of §5.2: an α-bit group counter plus X β-bit
    /// individual counters; leaves derived via the PRF.
    Compressed {
        /// Group-counter width in bits.
        alpha: u32,
        /// Individual-counter width in bits.
        beta: u32,
    },
}

impl PosMapFormat {
    /// The default compressed format (α = 64, β = 14, §5.3).
    pub fn compressed_default() -> Self {
        PosMapFormat::Compressed {
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
        }
    }

    /// Whether leaves are derived from counters through the PRF (rather than
    /// stored explicitly).
    pub fn uses_prf(&self) -> bool {
        !matches!(self, PosMapFormat::UncompressedLeaves)
    }

    /// Largest power-of-two X that fits in a PosMap block of `block_bytes`
    /// bytes under this format (the paper restricts X to powers of two to
    /// keep address translation simple, §5.3 footnote).
    pub fn max_x(&self, block_bytes: usize) -> u64 {
        let raw = match self {
            PosMapFormat::UncompressedLeaves => block_bytes / 4,
            PosMapFormat::FlatCounters => block_bytes / 8,
            PosMapFormat::Compressed { alpha, beta } => {
                CompressedPosMapBlock::max_x_for_block(block_bytes, *alpha, *beta)
            }
        };
        if raw == 0 {
            0
        } else {
            1u64 << (63 - (raw as u64).leading_zeros())
        }
    }
}

/// Full configuration of a Freecursive ORAM controller instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreecursiveConfig {
    /// Number of data blocks the ORAM must hold (N).
    pub num_blocks: u64,
    /// Data block size in bytes (B), typically the LLC line size.
    pub block_bytes: usize,
    /// Slots per bucket (Z).
    pub z: usize,
    /// PosMap block format.
    pub posmap_format: PosMapFormat,
    /// Explicit X override; `None` derives the largest power-of-two X that
    /// fits the block.
    pub x_override: Option<u64>,
    /// Enable PMMAC integrity verification (§6).
    pub pmmac: bool,
    /// PLB capacity in bytes.  Clamped at construction to at least four
    /// blocks per way: the recursion walk parks in-flight PosMap blocks in
    /// the PLB, so the functional frontend cannot run PLB-less (the no-PLB
    /// comparison point is the separate-tree `R_X8` design).
    pub plb_capacity_bytes: usize,
    /// PLB associativity (1 = direct-mapped, the paper's default §7.1.3).
    pub plb_associativity: usize,
    /// On-chip PosMap capacity in entries.
    pub onchip_entries: u64,
    /// Bucket encryption discipline.
    pub encryption: EncryptionMode,
    /// Stash capacity in blocks.
    pub stash_capacity: usize,
    /// Seed for deterministic key and leaf generation.
    pub seed: u64,
    /// Where the unified tree lives (in-memory arena or file-backed store).
    /// Defaults to the ambient [`StorageKind::from_env`] resolution, so the
    /// `ORAM_STORAGE=file` test leg covers every construction site.
    pub storage: StorageKind,
    /// Write-ahead-log discipline for file-backed trees (see
    /// [`path_oram::wal`]): `None` (no log, the default), `Batch(n)` or
    /// `Strict`.  Defaults to the ambient [`Durability::from_env`]
    /// resolution (`ORAM_DURABILITY=strict|batch:<n>`), so the
    /// crash-recovery CI leg can switch every construction site at once.
    /// Memory-backed trees ignore it.
    pub durability: Durability,
}

impl Default for FreecursiveConfig {
    fn default() -> Self {
        Self::pc_x32(1 << 20, 64)
    }
}

impl FreecursiveConfig {
    fn base(num_blocks: u64, block_bytes: usize) -> Self {
        Self {
            num_blocks,
            block_bytes,
            z: 4,
            posmap_format: PosMapFormat::compressed_default(),
            x_override: None,
            pmmac: false,
            plb_capacity_bytes: 64 << 10,
            plb_associativity: 1,
            onchip_entries: (8 << 10) / 8,
            encryption: EncryptionMode::GlobalSeed,
            stash_capacity: path_oram::params::DEFAULT_STASH_CAPACITY,
            seed: 1,
            storage: StorageKind::from_env(),
            durability: Durability::from_env(),
        }
    }

    /// The paper's `PC_X32` design point: PLB + compressed PosMap, no
    /// integrity (§7.1.4).
    pub fn pc_x32(num_blocks: u64, block_bytes: usize) -> Self {
        Self::base(num_blocks, block_bytes)
    }

    /// The paper's `P_X16` design point: PLB with uncompressed PosMap blocks.
    pub fn p_x16(num_blocks: u64, block_bytes: usize) -> Self {
        Self {
            posmap_format: PosMapFormat::UncompressedLeaves,
            ..Self::base(num_blocks, block_bytes)
        }
    }

    /// The paper's `PI_X8` design point: PLB + PMMAC with flat 64-bit
    /// counters (no compression).
    pub fn pi_x8(num_blocks: u64, block_bytes: usize) -> Self {
        Self {
            posmap_format: PosMapFormat::FlatCounters,
            pmmac: true,
            ..Self::base(num_blocks, block_bytes)
        }
    }

    /// The paper's `PIC_X32` design point: PLB + compressed PosMap + PMMAC —
    /// the complete Freecursive ORAM.
    pub fn pic_x32(num_blocks: u64, block_bytes: usize) -> Self {
        Self {
            pmmac: true,
            ..Self::base(num_blocks, block_bytes)
        }
    }

    /// Sets the PLB capacity in bytes.
    pub fn with_plb_capacity(mut self, bytes: usize) -> Self {
        self.plb_capacity_bytes = bytes;
        self
    }

    /// Sets the on-chip PosMap capacity in entries.
    pub fn with_onchip_entries(mut self, entries: u64) -> Self {
        self.onchip_entries = entries;
        self
    }

    /// Sets the RNG/key seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the bucket encryption mode.
    pub fn with_encryption(mut self, mode: EncryptionMode) -> Self {
        self.encryption = mode;
        self
    }

    /// Overrides X explicitly.
    pub fn with_x(mut self, x: u64) -> Self {
        self.x_override = Some(x);
        self
    }

    /// Sets the write-ahead-log discipline for file-backed trees.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// The PosMap fan-out X in effect.
    pub fn x(&self) -> u64 {
        self.x_override
            .unwrap_or_else(|| self.posmap_format.max_x(self.block_bytes))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when parameters are inconsistent: PMMAC with
    /// the uncompressed-leaf format, an X that does not fit the block, or
    /// degenerate sizes.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_blocks == 0 || self.block_bytes == 0 || self.z == 0 {
            return Err(ConfigError::Degenerate);
        }
        if self.pmmac && self.posmap_format == PosMapFormat::UncompressedLeaves {
            return Err(ConfigError::PmmacNeedsCounters);
        }
        let x = self.x();
        if x < 2 {
            return Err(ConfigError::XTooSmall { x });
        }
        let max = self.posmap_format.max_x(self.block_bytes);
        if x > max {
            return Err(ConfigError::XTooLarge { x, max });
        }
        if self.onchip_entries == 0 {
            return Err(ConfigError::Degenerate);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OramBuilder;
    use crate::scheme::SchemePoint;

    fn preset(scheme: SchemePoint, n: u64, block: usize) -> FreecursiveConfig {
        OramBuilder::for_scheme(scheme)
            .num_blocks(n)
            .block_bytes(block)
            .freecursive_config()
            .unwrap()
    }

    #[test]
    fn presets_match_paper_x_values_for_64_byte_blocks() {
        assert_eq!(preset(SchemePoint::PX16, 1 << 20, 64).x(), 16);
        assert_eq!(preset(SchemePoint::PcX32, 1 << 20, 64).x(), 32);
        assert_eq!(preset(SchemePoint::PiX8, 1 << 20, 64).x(), 8);
        assert_eq!(preset(SchemePoint::PicX32, 1 << 20, 64).x(), 32);
    }

    #[test]
    fn compressed_x_doubles_with_128_byte_blocks() {
        // PC_X64 in §7.1.5.
        assert_eq!(preset(SchemePoint::PcX32, 1 << 20, 128).x(), 64);
    }

    #[test]
    fn validation_accepts_presets() {
        for scheme in [
            SchemePoint::PX16,
            SchemePoint::PcX32,
            SchemePoint::PiX8,
            SchemePoint::PicX32,
        ] {
            let cfg = preset(scheme, 1 << 16, 64);
            assert!(cfg.validate().is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn pmmac_with_uncompressed_leaves_is_rejected() {
        let cfg = FreecursiveConfig {
            pmmac: true,
            ..preset(SchemePoint::PX16, 1 << 16, 64)
        };
        assert_eq!(cfg.validate(), Err(ConfigError::PmmacNeedsCounters));
    }

    #[test]
    fn oversized_x_override_is_rejected() {
        let cfg = preset(SchemePoint::PcX32, 1 << 16, 64).with_x(1 << 20);
        assert!(matches!(cfg.validate(), Err(ConfigError::XTooLarge { .. })));
    }

    #[test]
    fn format_prf_usage() {
        assert!(!PosMapFormat::UncompressedLeaves.uses_prf());
        assert!(PosMapFormat::FlatCounters.uses_prf());
        assert!(PosMapFormat::compressed_default().uses_prf());
    }
}
