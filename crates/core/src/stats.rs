//! Frontend statistics: the quantities the paper's figures are built from.

use path_oram::BackendStats;
use posmap::PlbStats;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a Freecursive (or baseline Recursive) frontend.
///
/// The evaluation figures are all derived from these: Figure 6/8 from the
/// backend-access counts (latency), Figure 7 from the byte counters, §6.3
/// from the hash counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Requests received from the LLC (each is one `read` or `write`).
    pub frontend_requests: u64,
    /// Backend path accesses made for the data block itself (level 0).
    pub data_backend_accesses: u64,
    /// Backend path accesses made for PosMap blocks (levels ≥ 1), including
    /// the baseline design's PosMap-ORAM accesses.
    pub posmap_backend_accesses: u64,
    /// Backend path accesses made to remap sibling blocks after a group
    /// counter overflow (§5.2.2).
    pub group_remap_accesses: u64,
    /// Number of group-counter overflow events.
    pub group_remaps: u64,
    /// Appends issued (PLB evictions and block-of-interest write-backs).
    pub appends: u64,
    /// Bytes moved to/from untrusted memory for data-block path accesses.
    pub data_bytes_moved: u64,
    /// Bytes moved for PosMap-related path accesses (PosMap blocks and group
    /// remaps).  The white regions of Figures 7 and 8.
    pub posmap_bytes_moved: u64,
    /// MAC verifications performed (PMMAC).
    pub macs_verified: u64,
    /// MAC computations performed for write-back (PMMAC).
    pub macs_computed: u64,
    /// Hashes a Merkle-tree scheme (\[25\]) would have needed over the same
    /// trace: one per bucket on every path touched.  Basis of the ≥68×
    /// hash-bandwidth claim (§6.3).
    pub merkle_equivalent_hashes: u64,
    /// Integrity violations detected.
    pub integrity_violations: u64,
    /// PLB statistics (zero for the baseline design).
    pub plb: PlbStats,
    /// Backend counters mirrored after every request, so callers holding an
    /// `Oram` trait object can see the tree machinery's work — including the
    /// `buckets_decrypted`/`buckets_encrypted` crypto counters — without
    /// reaching through to a concrete backend.  For frontends owning several
    /// trees (the recursive baseline) this is the sum over all of them.
    pub backend: BackendStats,
}

impl FrontendStats {
    /// Total backend path accesses of any kind.
    pub fn total_backend_accesses(&self) -> u64 {
        self.data_backend_accesses + self.posmap_backend_accesses + self.group_remap_accesses
    }

    /// Total bytes moved to/from untrusted memory.
    pub fn total_bytes_moved(&self) -> u64 {
        self.data_bytes_moved + self.posmap_bytes_moved
    }

    /// Fraction of moved bytes attributable to PosMap management (the metric
    /// of Figure 3 and the white regions of Figure 7).
    pub fn posmap_bandwidth_fraction(&self) -> Option<f64> {
        let total = self.total_bytes_moved();
        if total == 0 {
            None
        } else {
            Some(self.posmap_bytes_moved as f64 / total as f64)
        }
    }

    /// Average bytes moved per frontend request (the y-axis of Figure 7).
    pub fn bytes_per_request(&self) -> Option<f64> {
        if self.frontend_requests == 0 {
            None
        } else {
            Some(self.total_bytes_moved() as f64 / self.frontend_requests as f64)
        }
    }

    /// Average backend accesses per frontend request (1.0 means recursion is
    /// free; the baseline design sits at H).
    pub fn backend_accesses_per_request(&self) -> Option<f64> {
        if self.frontend_requests == 0 {
            None
        } else {
            Some(self.total_backend_accesses() as f64 / self.frontend_requests as f64)
        }
    }

    /// Ratio of Merkle-equivalent hashes to PMMAC hashes over the same trace
    /// (the §6.3 hash-bandwidth reduction), or `None` if PMMAC was off.
    pub fn hash_reduction_factor(&self) -> Option<f64> {
        let pmmac = self.macs_verified + self.macs_computed;
        if pmmac == 0 {
            None
        } else {
            Some(self.merkle_equivalent_hashes as f64 / pmmac as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_empty_stats() {
        let s = FrontendStats::default();
        assert_eq!(s.posmap_bandwidth_fraction(), None);
        assert_eq!(s.bytes_per_request(), None);
        assert_eq!(s.backend_accesses_per_request(), None);
        assert_eq!(s.hash_reduction_factor(), None);
    }

    #[test]
    fn derived_metrics_compute_expected_ratios() {
        let s = FrontendStats {
            frontend_requests: 10,
            data_backend_accesses: 10,
            posmap_backend_accesses: 30,
            data_bytes_moved: 1000,
            posmap_bytes_moved: 3000,
            macs_verified: 20,
            macs_computed: 20,
            merkle_equivalent_hashes: 4000,
            ..FrontendStats::default()
        };
        assert_eq!(s.total_backend_accesses(), 40);
        assert_eq!(s.posmap_bandwidth_fraction(), Some(0.75));
        assert_eq!(s.bytes_per_request(), Some(400.0));
        assert_eq!(s.backend_accesses_per_request(), Some(4.0));
        assert_eq!(s.hash_reduction_factor(), Some(100.0));
    }
}
