//! Frontend statistics: the quantities the paper's figures are built from.

use path_oram::BackendStats;
use posmap::PlbStats;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a Freecursive (or baseline Recursive) frontend.
///
/// The evaluation figures are all derived from these: Figure 6/8 from the
/// backend-access counts (latency), Figure 7 from the byte counters, §6.3
/// from the hash counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrontendStats {
    /// Requests received from the LLC (each is one `read` or `write`).
    pub frontend_requests: u64,
    /// Backend path accesses made for the data block itself (level 0).
    pub data_backend_accesses: u64,
    /// Backend path accesses made for PosMap blocks (levels ≥ 1), including
    /// the baseline design's PosMap-ORAM accesses.
    pub posmap_backend_accesses: u64,
    /// Backend path accesses made to remap sibling blocks after a group
    /// counter overflow (§5.2.2).
    pub group_remap_accesses: u64,
    /// Number of group-counter overflow events.
    pub group_remaps: u64,
    /// Appends issued (PLB evictions and block-of-interest write-backs).
    pub appends: u64,
    /// Bytes moved to/from untrusted memory for data-block path accesses.
    pub data_bytes_moved: u64,
    /// Bytes moved for PosMap-related path accesses (PosMap blocks and group
    /// remaps).  The white regions of Figures 7 and 8.
    pub posmap_bytes_moved: u64,
    /// MAC verifications performed (PMMAC).
    pub macs_verified: u64,
    /// MAC computations performed for write-back (PMMAC).
    pub macs_computed: u64,
    /// Hashes a Merkle-tree scheme (\[25\]) would have needed over the same
    /// trace: one per bucket on every path touched.  Basis of the ≥68×
    /// hash-bandwidth claim (§6.3).
    pub merkle_equivalent_hashes: u64,
    /// Integrity violations detected.
    pub integrity_violations: u64,
    /// PLB statistics (zero for the baseline design).
    pub plb: PlbStats,
    /// Backend counters mirrored after every request, so callers holding an
    /// `Oram` trait object can see the tree machinery's work — including the
    /// `buckets_decrypted`/`buckets_encrypted` crypto counters — without
    /// reaching through to a concrete backend.  For frontends owning several
    /// trees (the recursive baseline) this is the sum over all of them.
    pub backend: BackendStats,
}

impl FrontendStats {
    /// Adds another frontend's counters into this one.  Count fields sum;
    /// the backend's `max_stash_occupancy` merges as a maximum (the worst
    /// stash seen across the merged instances).
    pub fn merge_from(&mut self, other: &FrontendStats) {
        self.frontend_requests += other.frontend_requests;
        self.data_backend_accesses += other.data_backend_accesses;
        self.posmap_backend_accesses += other.posmap_backend_accesses;
        self.group_remap_accesses += other.group_remap_accesses;
        self.group_remaps += other.group_remaps;
        self.appends += other.appends;
        self.data_bytes_moved += other.data_bytes_moved;
        self.posmap_bytes_moved += other.posmap_bytes_moved;
        self.macs_verified += other.macs_verified;
        self.macs_computed += other.macs_computed;
        self.merkle_equivalent_hashes += other.merkle_equivalent_hashes;
        self.integrity_violations += other.integrity_violations;
        self.plb.accumulate(&other.plb);
        self.backend.accumulate(&other.backend);
    }

    /// Merges any number of per-instance stats into one aggregate view —
    /// what [`crate::ShardedOram`]'s `stats()` and the service's merged
    /// stats report.  All derived metrics (`bytes_per_request`, hit rates, …)
    /// remain meaningful on the merged struct because they are ratios of
    /// summed counters.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a FrontendStats>) -> FrontendStats {
        let mut total = FrontendStats::default();
        for part in parts {
            total.merge_from(part);
        }
        total
    }

    /// Folds the change between two snapshots of **one** instance's stats
    /// into this merged view: count fields add the `after - before`
    /// difference, the backend's `max_stash_occupancy` folds the new
    /// maximum.  This keeps a merged view current in `O(1)` (instead of a
    /// full re-merge over every instance) on single-access paths.
    ///
    /// `before` and `after` must be snapshots of the *same* instance with
    /// no stats reset in between — between resets every counter is
    /// monotone, which is what makes the subtraction and the max-fold
    /// sound.
    pub fn apply_delta(&mut self, before: &FrontendStats, after: &FrontendStats) {
        // Build the `after - before` diff and feed it through `merge_from`,
        // so all summing (and the max-fold for `max_stash_occupancy`) lives
        // in exactly one place.  The struct literals are deliberately
        // exhaustive — no `..Default::default()` — so adding a counter to
        // any stats struct fails to compile here until the subtraction is
        // written, keeping this in lockstep with `merge_from`.
        let diff = FrontendStats {
            frontend_requests: after.frontend_requests - before.frontend_requests,
            data_backend_accesses: after.data_backend_accesses - before.data_backend_accesses,
            posmap_backend_accesses: after.posmap_backend_accesses - before.posmap_backend_accesses,
            group_remap_accesses: after.group_remap_accesses - before.group_remap_accesses,
            group_remaps: after.group_remaps - before.group_remaps,
            appends: after.appends - before.appends,
            data_bytes_moved: after.data_bytes_moved - before.data_bytes_moved,
            posmap_bytes_moved: after.posmap_bytes_moved - before.posmap_bytes_moved,
            macs_verified: after.macs_verified - before.macs_verified,
            macs_computed: after.macs_computed - before.macs_computed,
            merkle_equivalent_hashes: after.merkle_equivalent_hashes
                - before.merkle_equivalent_hashes,
            integrity_violations: after.integrity_violations - before.integrity_violations,
            plb: PlbStats {
                hits: after.plb.hits - before.plb.hits,
                misses: after.plb.misses - before.plb.misses,
                evictions: after.plb.evictions - before.plb.evictions,
            },
            backend: path_oram::BackendStats {
                path_accesses: after.backend.path_accesses - before.backend.path_accesses,
                appends: after.backend.appends - before.backend.appends,
                bytes_read: after.backend.bytes_read - before.backend.bytes_read,
                bytes_written: after.backend.bytes_written - before.backend.bytes_written,
                real_blocks_fetched: after.backend.real_blocks_fetched
                    - before.backend.real_blocks_fetched,
                buckets_decrypted: after.backend.buckets_decrypted
                    - before.backend.buckets_decrypted,
                buckets_encrypted: after.backend.buckets_encrypted
                    - before.backend.buckets_encrypted,
                blocks_evicted: after.backend.blocks_evicted - before.backend.blocks_evicted,
                dummies_written: after.backend.dummies_written - before.backend.dummies_written,
                // Not a difference: `merge_from` folds maxima, so handing
                // it the new high-water mark is exactly right.
                max_stash_occupancy: after.backend.max_stash_occupancy,
            },
        };
        self.merge_from(&diff);
    }

    /// Total backend path accesses of any kind.
    pub fn total_backend_accesses(&self) -> u64 {
        self.data_backend_accesses + self.posmap_backend_accesses + self.group_remap_accesses
    }

    /// Total bytes moved to/from untrusted memory.
    pub fn total_bytes_moved(&self) -> u64 {
        self.data_bytes_moved + self.posmap_bytes_moved
    }

    /// Fraction of moved bytes attributable to PosMap management (the metric
    /// of Figure 3 and the white regions of Figure 7).
    pub fn posmap_bandwidth_fraction(&self) -> Option<f64> {
        let total = self.total_bytes_moved();
        if total == 0 {
            None
        } else {
            Some(self.posmap_bytes_moved as f64 / total as f64)
        }
    }

    /// Average bytes moved per frontend request (the y-axis of Figure 7).
    pub fn bytes_per_request(&self) -> Option<f64> {
        if self.frontend_requests == 0 {
            None
        } else {
            Some(self.total_bytes_moved() as f64 / self.frontend_requests as f64)
        }
    }

    /// Average backend accesses per frontend request (1.0 means recursion is
    /// free; the baseline design sits at H).
    pub fn backend_accesses_per_request(&self) -> Option<f64> {
        if self.frontend_requests == 0 {
            None
        } else {
            Some(self.total_backend_accesses() as f64 / self.frontend_requests as f64)
        }
    }

    /// Ratio of Merkle-equivalent hashes to PMMAC hashes over the same trace
    /// (the §6.3 hash-bandwidth reduction), or `None` if PMMAC was off.
    pub fn hash_reduction_factor(&self) -> Option<f64> {
        let pmmac = self.macs_verified + self.macs_computed;
        if pmmac == 0 {
            None
        } else {
            Some(self.merkle_equivalent_hashes as f64 / pmmac as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_empty_stats() {
        let s = FrontendStats::default();
        assert_eq!(s.posmap_bandwidth_fraction(), None);
        assert_eq!(s.bytes_per_request(), None);
        assert_eq!(s.backend_accesses_per_request(), None);
        assert_eq!(s.hash_reduction_factor(), None);
    }

    #[test]
    fn merged_stats_sum_counts_and_max_stash() {
        let a = FrontendStats {
            frontend_requests: 10,
            data_bytes_moved: 100,
            backend: path_oram::BackendStats {
                path_accesses: 5,
                max_stash_occupancy: 7,
                ..Default::default()
            },
            plb: PlbStats {
                hits: 3,
                misses: 1,
                evictions: 0,
            },
            ..FrontendStats::default()
        };
        let b = FrontendStats {
            frontend_requests: 4,
            data_bytes_moved: 60,
            backend: path_oram::BackendStats {
                path_accesses: 2,
                max_stash_occupancy: 11,
                ..Default::default()
            },
            plb: PlbStats {
                hits: 1,
                misses: 2,
                evictions: 1,
            },
            ..FrontendStats::default()
        };
        let merged = FrontendStats::merged([&a, &b]);
        assert_eq!(merged.frontend_requests, 14);
        assert_eq!(merged.data_bytes_moved, 160);
        assert_eq!(merged.backend.path_accesses, 7);
        assert_eq!(merged.backend.max_stash_occupancy, 11);
        assert_eq!(merged.plb.hits, 4);
        assert_eq!(merged.plb.misses, 3);
        assert_eq!(merged.plb.evictions, 1);
        // Merging nothing is the identity.
        assert_eq!(FrontendStats::merged([]), FrontendStats::default());
    }

    #[test]
    fn derived_metrics_compute_expected_ratios() {
        let s = FrontendStats {
            frontend_requests: 10,
            data_backend_accesses: 10,
            posmap_backend_accesses: 30,
            data_bytes_moved: 1000,
            posmap_bytes_moved: 3000,
            macs_verified: 20,
            macs_computed: 20,
            merkle_equivalent_hashes: 4000,
            ..FrontendStats::default()
        };
        assert_eq!(s.total_backend_accesses(), 40);
        assert_eq!(s.posmap_bandwidth_fraction(), Some(0.75));
        assert_eq!(s.bytes_per_request(), Some(400.0));
        assert_eq!(s.backend_accesses_per_request(), Some(4.0));
        assert_eq!(s.hash_reduction_factor(), Some(100.0));
    }
}
