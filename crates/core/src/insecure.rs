//! The `Insecure` design point as a functional [`Oram`] implementation: a
//! flat memory with no position map, no PLB and no integrity — the
//! denominator of every slowdown the evaluation reports.
//!
//! Built on [`path_oram::InsecureBackend`] so the "no ORAM" baseline goes
//! through the exact same backend seam as the real designs, which keeps the
//! [`crate::OramBuilder`] dispatch uniform and gives tests an apples-to-apples
//! contents oracle.

use crate::error::FreecursiveError;
use crate::stats::FrontendStats;
use crate::traits::{Oram, Request, Response};
use path_oram::{AccessOp, InsecureBackend, OramBackend, OramError, OramParams};

/// A flat, non-oblivious memory implementing the [`Oram`] contract.
#[derive(Debug, Clone)]
pub struct InsecureOram {
    backend: InsecureBackend,
    num_blocks: u64,
    block_bytes: usize,
    stats: FrontendStats,
}

impl InsecureOram {
    /// Creates a flat memory of `num_blocks` blocks of `block_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FreecursiveError::Config`] if either size is zero.
    pub fn new(num_blocks: u64, block_bytes: usize) -> Result<Self, FreecursiveError> {
        if num_blocks == 0 || block_bytes == 0 {
            return Err(crate::error::ConfigError::Degenerate.into());
        }
        let params = OramParams::new(num_blocks, block_bytes, 1);
        Ok(Self {
            backend: InsecureBackend::new(params),
            num_blocks,
            block_bytes,
            stats: FrontendStats::default(),
        })
    }

    /// The flat backend (diagnostics).
    pub fn backend(&self) -> &InsecureBackend {
        &self.backend
    }

    /// Persists the flat memory into `dir` (one digest-sealed state file;
    /// there are no tree files).  Mostly useful so sharded composites with
    /// `Insecure` shards can persist uniformly.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Backend`] wrapping storage failures.
    pub fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        use path_oram::snapshot::{put_bytes, put_u64};
        use path_oram::OramBackend as _;
        std::fs::create_dir_all(dir).map_err(|e| crate::persist::dir_error(dir, e))?;
        let mut payload = Vec::new();
        put_u64(&mut payload, self.num_blocks);
        put_u64(&mut payload, self.block_bytes as u64);
        crate::persist::put_frontend_stats(&mut payload, &self.stats);
        let mut backend_state = Vec::new();
        self.backend.save_state(&mut backend_state)?;
        put_bytes(&mut payload, &backend_state);
        path_oram::snapshot::write_state_file(
            &crate::persist::state_path(dir),
            crate::persist::KIND_INSECURE,
            &payload,
        )?;
        Ok(())
    }

    /// Rebuilds an instance from a snapshot directory written by
    /// [`InsecureOram::persist`].
    ///
    /// # Errors
    ///
    /// As for [`crate::FreecursiveOram::resume`].
    pub fn resume(dir: &std::path::Path) -> Result<Self, FreecursiveError> {
        use path_oram::snapshot::SnapReader;
        use path_oram::{OramBackend as _, StorageKind};
        let (kind, payload) =
            path_oram::snapshot::read_state_file(&crate::persist::state_path(dir))?;
        if kind != crate::persist::KIND_INSECURE {
            return Err(crate::persist::wrong_kind("Insecure ORAM", kind).into());
        }
        let mut r = SnapReader::new(&payload);
        let num_blocks = r.u64()?;
        let block_bytes = r.u64()? as usize;
        let stats = crate::persist::get_frontend_stats(&mut r)?;
        let backend_state = r.bytes()?.to_vec();
        r.finish()?;
        let mut oram = Self::new(num_blocks, block_bytes)?;
        oram.backend = InsecureBackend::resume_backend(
            OramParams::new(num_blocks, block_bytes, 1),
            path_oram::EncryptionMode::None,
            [0u8; 16],
            0,
            &StorageKind::Mem,
            path_oram::Durability::None,
            dir,
            0,
            &backend_state,
        )?;
        oram.stats = stats;
        Ok(oram)
    }

    fn check_addr(&self, addr: u64) -> Result<(), FreecursiveError> {
        if addr >= self.num_blocks {
            return Err(OramError::AddressOutOfRange {
                addr,
                capacity: self.num_blocks,
            }
            .into());
        }
        Ok(())
    }

    fn count(&mut self) {
        self.stats.frontend_requests += 1;
        self.stats.data_backend_accesses += 1;
        self.stats.data_bytes_moved += self.block_bytes as u64;
        self.stats.backend = self.backend.stats().clone();
    }
}

impl Oram for InsecureOram {
    fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        self.check_addr(request.addr())?;
        let response = match request {
            Request::Read { addr } => {
                let data = self
                    .backend
                    .access(AccessOp::Read, addr, 0, 0, None)?
                    .expect("read returns data");
                Response {
                    addr,
                    data: Some(data),
                }
            }
            Request::Write { addr, data } => {
                self.backend
                    .access(AccessOp::Write, addr, 0, 0, Some(&data))?;
                Response { addr, data: None }
            }
            Request::ReadRemove { addr } => {
                let data = self
                    .backend
                    .access(AccessOp::ReadRmv, addr, 0, 0, None)?
                    .expect("readrmv returns data");
                Response {
                    addr,
                    data: Some(data),
                }
            }
        };
        self.count();
        Ok(response)
    }

    fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FrontendStats::default();
        self.backend.reset_stats();
    }

    fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        InsecureOram::persist(self, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_roundtrip_and_read_remove() {
        let mut m = InsecureOram::new(64, 16).unwrap();
        assert_eq!(m.read(5).unwrap(), vec![0u8; 16]);
        m.write(5, &[9u8; 16]).unwrap();
        assert_eq!(m.read(5).unwrap(), vec![9u8; 16]);
        assert_eq!(m.read_remove(5).unwrap(), vec![9u8; 16]);
        assert_eq!(m.read(5).unwrap(), vec![0u8; 16]);
        assert_eq!(m.stats().frontend_requests, 5);
    }

    #[test]
    fn bounds_and_sizes_are_enforced() {
        let mut m = InsecureOram::new(8, 16).unwrap();
        assert!(m.read(8).is_err());
        assert!(m.write(0, &[0u8; 15]).is_err());
        assert!(InsecureOram::new(0, 16).is_err());
    }
}
