//! Shared plumbing for whole-instance snapshot/restore.
//!
//! Every frontend persists into one directory: a digest-sealed
//! `oram.state` file (see [`path_oram::snapshot`] for the framing) holding
//! the controller's trusted state — configuration, PosMap/PLB contents, RNG
//! stream position, statistics, and the backend's controller-side bytes —
//! plus the tree files the backend's store writes next to it.  This module
//! holds the kind tags that dispatch `OramBuilder::resume`, and the
//! field-by-field serialisation helpers for the structs shared across
//! frontends (the `serde` dependency is a no-op shim in this offline
//! workspace, so everything is written by hand against
//! [`path_oram::snapshot`]).

use crate::config::PosMapFormat;
use crate::stats::FrontendStats;
use path_oram::snapshot::{put_u32, put_u64, put_u8, SnapReader};
use path_oram::{BackendStats, EncryptionMode, OramError};
use posmap::PlbStats;
use std::path::{Path, PathBuf};

/// File name of the state file inside a snapshot directory.
pub(crate) const STATE_FILE: &str = "oram.state";

/// Snapshot kind tag: a [`crate::FreecursiveOram`] instance.
pub(crate) const KIND_FREECURSIVE: u8 = 1;
/// Snapshot kind tag: a [`crate::RecursiveOram`] instance.
pub(crate) const KIND_RECURSIVE: u8 = 2;
/// Snapshot kind tag: an [`crate::InsecureOram`] instance.
pub(crate) const KIND_INSECURE: u8 = 3;
/// Snapshot kind tag: a [`crate::ShardedOram`] composite (per-shard
/// snapshots live in `shard<i>/` subdirectories).
pub(crate) const KIND_SHARDED: u8 = 4;

/// Path of the state file inside `dir`.
pub(crate) fn state_path(dir: &Path) -> PathBuf {
    dir.join(STATE_FILE)
}

/// The error for a state file whose kind tag names a different frontend.
pub(crate) fn wrong_kind(expected: &str, found: u8) -> OramError {
    OramError::Snapshot {
        detail: format!("snapshot is not a {expected} instance (kind tag {found})"),
    }
}

pub(crate) fn put_encryption(out: &mut Vec<u8>, mode: EncryptionMode) {
    put_u8(
        out,
        match mode {
            EncryptionMode::None => 0,
            EncryptionMode::PerBucketSeed => 1,
            EncryptionMode::GlobalSeed => 2,
        },
    );
}

pub(crate) fn get_encryption(r: &mut SnapReader<'_>) -> Result<EncryptionMode, OramError> {
    Ok(match r.u8()? {
        0 => EncryptionMode::None,
        1 => EncryptionMode::PerBucketSeed,
        2 => EncryptionMode::GlobalSeed,
        other => {
            return Err(OramError::Snapshot {
                detail: format!("unknown encryption mode tag {other}"),
            })
        }
    })
}

pub(crate) fn put_posmap_format(out: &mut Vec<u8>, format: PosMapFormat) {
    match format {
        PosMapFormat::UncompressedLeaves => put_u8(out, 0),
        PosMapFormat::FlatCounters => put_u8(out, 1),
        PosMapFormat::Compressed { alpha, beta } => {
            put_u8(out, 2);
            put_u32(out, alpha);
            put_u32(out, beta);
        }
    }
}

pub(crate) fn get_posmap_format(r: &mut SnapReader<'_>) -> Result<PosMapFormat, OramError> {
    Ok(match r.u8()? {
        0 => PosMapFormat::UncompressedLeaves,
        1 => PosMapFormat::FlatCounters,
        2 => PosMapFormat::Compressed {
            alpha: r.u32()?,
            beta: r.u32()?,
        },
        other => {
            return Err(OramError::Snapshot {
                detail: format!("unknown posmap format tag {other}"),
            })
        }
    })
}

pub(crate) fn put_rng_state(out: &mut Vec<u8>, state: [u64; 4]) {
    for word in state {
        put_u64(out, word);
    }
}

pub(crate) fn get_rng_state(r: &mut SnapReader<'_>) -> Result<[u64; 4], OramError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

pub(crate) fn put_plb_stats(out: &mut Vec<u8>, stats: &PlbStats) {
    let PlbStats {
        hits,
        misses,
        evictions,
    } = stats;
    put_u64(out, *hits);
    put_u64(out, *misses);
    put_u64(out, *evictions);
}

pub(crate) fn get_plb_stats(r: &mut SnapReader<'_>) -> Result<PlbStats, OramError> {
    Ok(PlbStats {
        hits: r.u64()?,
        misses: r.u64()?,
        evictions: r.u64()?,
    })
}

/// Serialises [`FrontendStats`] (exhaustive destructuring, so a new counter
/// fails to compile here until it is persisted too).
pub(crate) fn put_frontend_stats(out: &mut Vec<u8>, stats: &FrontendStats) {
    let FrontendStats {
        frontend_requests,
        data_backend_accesses,
        posmap_backend_accesses,
        group_remap_accesses,
        group_remaps,
        appends,
        data_bytes_moved,
        posmap_bytes_moved,
        macs_verified,
        macs_computed,
        merkle_equivalent_hashes,
        integrity_violations,
        plb,
        backend,
    } = stats;
    put_u64(out, *frontend_requests);
    put_u64(out, *data_backend_accesses);
    put_u64(out, *posmap_backend_accesses);
    put_u64(out, *group_remap_accesses);
    put_u64(out, *group_remaps);
    put_u64(out, *appends);
    put_u64(out, *data_bytes_moved);
    put_u64(out, *posmap_bytes_moved);
    put_u64(out, *macs_verified);
    put_u64(out, *macs_computed);
    put_u64(out, *merkle_equivalent_hashes);
    put_u64(out, *integrity_violations);
    put_plb_stats(out, plb);
    backend.save(out);
}

pub(crate) fn get_frontend_stats(r: &mut SnapReader<'_>) -> Result<FrontendStats, OramError> {
    Ok(FrontendStats {
        frontend_requests: r.u64()?,
        data_backend_accesses: r.u64()?,
        posmap_backend_accesses: r.u64()?,
        group_remap_accesses: r.u64()?,
        group_remaps: r.u64()?,
        appends: r.u64()?,
        data_bytes_moved: r.u64()?,
        posmap_bytes_moved: r.u64()?,
        macs_verified: r.u64()?,
        macs_computed: r.u64()?,
        merkle_equivalent_hashes: r.u64()?,
        integrity_violations: r.u64()?,
        plb: get_plb_stats(r)?,
        backend: BackendStats::load(r)?,
    })
}

/// Wraps a filesystem error while creating a snapshot directory.
pub(crate) fn dir_error(dir: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("creating snapshot directory {}: {e}", dir.display()),
    }
}
