//! [`OramService`] / [`OramClient`]: a concurrent, worker-thread-per-shard
//! runtime over the sharded composite.
//!
//! [`crate::ShardedOram`] executes its shards on the caller's thread;
//! this module puts each shard on its *own* worker thread behind an
//! [`std::sync::mpsc`] channel, so cross-shard batches execute in parallel
//! and many cheaply-clonable [`OramClient`]s can drive the same deployment
//! concurrently (std `thread` + `mpsc` only — the workspace carries no
//! async runtime or thread-pool dependency).
//!
//! ```text
//! OramClient ──┐                 ┌─ worker 0 ── Box<dyn Oram> (shard 0)
//! OramClient ──┼─ mpsc channels ─┼─ worker 1 ── Box<dyn Oram> (shard 1)
//! OramClient ──┘                 └─ worker 2 ── Box<dyn Oram> (shard 2)
//! ```
//!
//! # Ordering and consistency
//!
//! Each worker serves its job queue strictly in order, and each sender's
//! jobs arrive in submission order, so all requests a *single client*
//! issues to a given shard take effect in submission order — which, since
//! a block lives on exactly one shard, means per-client-per-address
//! sequential consistency.  Requests from *different* clients interleave
//! at channel granularity with no global order; clients sharing addresses
//! must coordinate externally (the usual sharded-store contract).
//!
//! # Pipelining
//!
//! [`OramClient::submit`] returns a [`PendingBatch`] without blocking, so a
//! client can keep several batches in flight and overlap its own work with
//! shard execution; [`PendingBatch::wait`] collects the responses.  The
//! sync [`OramClient::access_batch`]/[`Oram::access`] paths are submit +
//! wait.  Workers execute each sub-batch through their shard's
//! `access_batch`, so batched submission composes the thread-level
//! parallelism here with the per-shard batch dedup window (see
//! `docs/ARCHITECTURE.md` at the workspace root).
//!
//! # Failure model
//!
//! A worker that panics mid-request replies with
//! [`FreecursiveError::Service`] (carrying the panic message) and retires —
//! its shard's state can no longer be trusted.  Every later interaction
//! with that shard fails fast with [`FreecursiveError::Service`]: clients
//! never hang on a dead worker, because a retired worker's channel
//! disconnects (sends fail) and its dropped reply senders wake any waiter
//! (receives fail).  Worker retirement is additionally published through a
//! per-shard liveness table (cleared *before* the retirement is announced),
//! which [`OramClient::submit`] pre-checks for every shard a batch touches
//! before dispatching anything — so a cross-shard batch that would hit an
//! already-dead shard fails *side-effect-free* instead of mutating the
//! live shards first.  There are no locks anywhere in the runtime, so
//! there is no poisoning to handle beyond this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::FreecursiveError;
use crate::sharded::{validate_shard_geometry, PartitionedBatch, ShardRouter};
use crate::stats::FrontendStats;
use crate::traits::{Oram, Request, Response};

/// One unit of work for a shard worker.
enum Job {
    /// Execute a sub-batch (intra-shard addresses) and reply with the
    /// responses or the failure.
    Batch {
        requests: Vec<Request>,
        reply: Sender<BatchReply>,
    },
    /// Reply with a snapshot of the shard's statistics.
    Stats { reply: Sender<Box<FrontendStats>> },
    /// Reset the shard's statistics counters.
    ResetStats,
    /// Stop serving and hand the shard back.
    Shutdown { reply: Sender<Box<dyn Oram>> },
}

/// Renders a panic payload the way the default hook would.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-shard worker loop: owns the shard, serves jobs in order, retires
/// on panic or shutdown.  `alive` is this worker's slot in the service-wide
/// liveness table; the worker clears it **before** announcing its
/// retirement (panic reply, shutdown reply, or channel disconnect), so any
/// client that has observed the retirement sees the flag down on its next
/// [`OramClient::submit`] pre-check.
fn worker_loop(
    shard_index: usize,
    mut shard: Box<dyn Oram>,
    jobs: Receiver<Job>,
    alive: &AtomicBool,
) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Batch { requests, reply } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| shard.access_batch_owned(requests)));
                match outcome {
                    Ok(result) => {
                        // A send failure means the client gave up waiting;
                        // the work is done either way.
                        let _ = reply.send(result);
                    }
                    Err(payload) => {
                        // The shard's state is suspect after an unwind
                        // through its access path: retire.  Flag first,
                        // reply second — a client holding this error must
                        // deterministically fail the liveness pre-check on
                        // its next submit.  Disconnecting the channel (the
                        // return below) fails racing submissions too.
                        alive.store(false, Ordering::Release);
                        let _ = reply.send(Err(FreecursiveError::Service {
                            detail: format!(
                                "shard {shard_index} worker panicked: {}",
                                panic_detail(payload.as_ref())
                            ),
                        }));
                        return;
                    }
                }
            }
            Job::Stats { reply } => {
                let _ = reply.send(Box::new(shard.stats().clone()));
            }
            Job::ResetStats => shard.reset_stats(),
            Job::Shutdown { reply } => {
                alive.store(false, Ordering::Release);
                let _ = reply.send(shard);
                return;
            }
        }
    }
    // The service dropped every sender: an orderly teardown.
    alive.store(false, Ordering::Release);
}

/// A dead-worker error for shard `shard`.
fn worker_gone(shard: usize) -> FreecursiveError {
    FreecursiveError::Service {
        detail: format!("shard {shard} worker is gone (panicked or shut down)"),
    }
}

/// What a worker sends back for one sub-batch.
type BatchReply = Result<Vec<Response>, FreecursiveError>;

/// A handle on a batch in flight: receipts for every shard the batch
/// touches.  Obtained from [`OramClient::submit`], resolved by
/// [`PendingBatch::wait`].  Dropping it abandons the responses (the work
/// still executes).
#[derive(Debug)]
pub struct PendingBatch {
    router: ShardRouter,
    /// `(shard, receiver)` for every shard with a non-empty sub-batch.
    receipts: Vec<(usize, Receiver<BatchReply>)>,
    plan: Vec<Vec<usize>>,
    total: usize,
}

impl PendingBatch {
    /// Blocks until every shard has answered and reassembles the responses
    /// in request order.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Batch`] with the *global* request index if a
    /// shard reported a request failure; [`FreecursiveError::Service`] if a
    /// worker died before answering.
    pub fn wait(self) -> Result<Vec<Response>, FreecursiveError> {
        let mut per_shard: Vec<Vec<Response>> =
            (0..self.router.num_shards()).map(|_| Vec::new()).collect();
        let mut first_error: Option<FreecursiveError> = None;
        for (shard, receiver) in self.receipts {
            // Drain every receipt even after an error so no worker blocks
            // on a reply channel... (mpsc sends never block, but draining
            // keeps error selection deterministic: lowest shard wins).
            match receiver.recv() {
                Ok(Ok(responses)) => per_shard[shard] = responses,
                Ok(Err(e)) => {
                    let mapped = match e {
                        FreecursiveError::Batch { index, source } => FreecursiveError::Batch {
                            index: self.plan[shard][index],
                            source,
                        },
                        other => other,
                    };
                    first_error.get_or_insert(mapped);
                }
                Err(_) => {
                    first_error.get_or_insert(worker_gone(shard));
                }
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(self.router.reassemble(&self.plan, per_shard, self.total))
    }
}

/// A cheaply-clonable handle for submitting requests to an [`OramService`].
///
/// Clones share the service's channels: clone one per thread and drive the
/// same deployment concurrently.  The client implements [`Oram`], so
/// anything programmed against the trait — including
/// `cache_sim::FunctionalOramMemory` — can run over a sharded service
/// unchanged; see [`OramClient::stats`] for the one caveat (stats are a
/// fetched snapshot, not a live view).
#[derive(Debug, Clone)]
pub struct OramClient {
    senders: Vec<Sender<Job>>,
    /// One liveness flag per worker, shared with the worker threads: `true`
    /// until the worker retires (panic or shutdown).  [`OramClient::submit`]
    /// pre-checks every shard a batch touches against this table before
    /// dispatching anything, so a batch that would hit an already-dead
    /// shard fails without mutating the live ones.
    alive: Arc<[AtomicBool]>,
    router: ShardRouter,
    /// Snapshot filled by [`OramClient::fetch_stats`]; what [`Oram::stats`]
    /// returns between fetches.
    cached_stats: FrontendStats,
}

impl OramClient {
    /// The routing rule in effect.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards behind this client.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Whether `shard`'s worker was still serving at the last announcement
    /// it made: `false` once the worker has panicked or been shut down.  A
    /// `true` is inherently a snapshot — the worker can die right after —
    /// but a `false` is final (retired workers never come back).
    pub fn is_worker_live(&self, shard: usize) -> bool {
        self.alive[shard].load(Ordering::Acquire)
    }

    /// Submits a batch without waiting: the batch is validated, split by
    /// shard, staged, and only then fanned out to every worker it touches;
    /// the returned [`PendingBatch`] collects the responses.  Workers on
    /// different shards execute their sub-batches in parallel.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Batch`] (with the global index) if a request is
    /// malformed — validation runs before anything is sent, so nothing is
    /// submitted.  [`FreecursiveError::Service`] if a touched worker is
    /// gone.  Liveness is pre-checked for *every* touched shard after
    /// staging and before the first send — the same
    /// validate-before-dispatch discipline [`ShardRouter::partition`]
    /// applies to malformed requests — so a batch that routes to a shard
    /// whose death has already been announced (its panic reply was
    /// delivered, or the service shut down) fails side-effect-free: no
    /// sub-batch reaches any worker.  The one remaining window is a worker
    /// dying *concurrently with this very fan-out*, where the send to the
    /// freshly-dead worker fails after earlier live shards were already
    /// fed; that error means "state on the surviving shards may have
    /// changed" and the detail string says so.
    pub fn submit(&self, requests: Vec<Request>) -> Result<PendingBatch, FreecursiveError> {
        let total = requests.len();
        let PartitionedBatch { per_shard, plan } = self.router.partition(requests)?;
        // Stage first: everything fallible about the batch itself has
        // already run (partition validated every request), so after the
        // liveness pre-check below the only thing left to do is send.
        let staged: Vec<(usize, Vec<Request>)> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, sub_batch)| !sub_batch.is_empty())
            .collect();
        for (shard, _) in &staged {
            if !self.is_worker_live(*shard) {
                return Err(worker_gone(*shard));
            }
        }
        let mut receipts = Vec::with_capacity(staged.len());
        for (shard, sub_batch) in staged {
            let (reply, receiver) = std::sync::mpsc::channel();
            self.senders[shard]
                .send(Job::Batch {
                    requests: sub_batch,
                    reply,
                })
                .map_err(|_| FreecursiveError::Service {
                    detail: format!(
                        "shard {shard} worker died during fan-out; sub-batches already \
                         dispatched to earlier shards still execute"
                    ),
                })?;
            receipts.push((shard, receiver));
        }
        Ok(PendingBatch {
            router: self.router,
            receipts,
            plan,
            total,
        })
    }

    /// Fetches and merges fresh per-shard statistics, updating the snapshot
    /// that [`Oram::stats`] serves.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Service`] if any worker is gone.
    pub fn fetch_stats(&mut self) -> Result<FrontendStats, FreecursiveError> {
        let mut receipts = Vec::new();
        for (shard, sender) in self.senders.iter().enumerate() {
            let (reply, receiver) = std::sync::mpsc::channel();
            sender
                .send(Job::Stats { reply })
                .map_err(|_| worker_gone(shard))?;
            receipts.push((shard, receiver));
        }
        let mut parts = Vec::with_capacity(receipts.len());
        for (shard, receiver) in receipts {
            parts.push(*receiver.recv().map_err(|_| worker_gone(shard))?);
        }
        self.cached_stats = FrontendStats::merged(parts.iter());
        Ok(self.cached_stats.clone())
    }
}

impl Oram for OramClient {
    fn block_bytes(&self) -> usize {
        self.router.block_bytes()
    }

    fn num_blocks(&self) -> u64 {
        self.router.num_blocks()
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        let mut responses = self
            .submit(vec![request])
            .and_then(PendingBatch::wait)
            .map_err(|e| match e {
                // A single request is its own batch; unwrap the index layer
                // so the error shape matches every other `Oram::access`.
                FreecursiveError::Batch { source, .. } => *source,
                other => other,
            })?;
        Ok(responses.pop().expect("one request yields one response"))
    }

    fn access_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, FreecursiveError> {
        self.access_batch_owned(requests.to_vec())
    }

    fn access_batch_owned(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        self.submit(requests)?.wait()
    }

    /// The statistics snapshot from the last [`OramClient::fetch_stats`]
    /// (empty until the first fetch) — a channel round-trip per read would
    /// be wrong for a `&self` getter, so refreshing is explicit.
    fn stats(&self) -> &FrontendStats {
        &self.cached_stats
    }

    fn reset_stats(&mut self) {
        for sender in &self.senders {
            // A dead worker has no stats left to reset; nothing to surface.
            let _ = sender.send(Job::ResetStats);
        }
        self.cached_stats = FrontendStats::default();
    }
}

/// A running sharded oblivious-memory deployment: one worker thread per
/// shard, driven through [`OramClient`] handles.
///
/// Construct with [`crate::OramBuilder::build_service`] (which builds the
/// shards from one validated configuration) or [`OramService::from_shards`]
/// over pre-built instances.  Dropping the service shuts the workers down;
/// [`OramService::shutdown`] does the same explicitly and hands the shard
/// instances back (e.g. for a final contents sweep).  Outstanding client
/// clones outlive the service but fail fast with
/// [`FreecursiveError::Service`] once it is gone.
#[derive(Debug)]
pub struct OramService {
    handles: Vec<JoinHandle<()>>,
    client: OramClient,
}

impl OramService {
    /// Spawns one worker thread per shard.  The shard set must be
    /// geometrically uniform, as for [`crate::ShardedOram::new`].
    ///
    /// # Errors
    ///
    /// As for [`crate::ShardedOram::new`].
    pub fn from_shards(shards: Vec<Box<dyn Oram>>) -> Result<Self, FreecursiveError> {
        let router = validate_shard_geometry(&shards)?;
        let alive: Arc<[AtomicBool]> = (0..shards.len()).map(|_| AtomicBool::new(true)).collect();
        let mut handles = Vec::with_capacity(shards.len());
        let mut senders = Vec::with_capacity(shards.len());
        for (shard_index, shard) in shards.into_iter().enumerate() {
            let (sender, receiver) = std::sync::mpsc::channel();
            let table = Arc::clone(&alive);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("oram-shard-{shard_index}"))
                    .spawn(move || worker_loop(shard_index, shard, receiver, &table[shard_index]))
                    .map_err(|e| FreecursiveError::Service {
                        detail: format!("failed to spawn shard {shard_index} worker: {e}"),
                    })?,
            );
            senders.push(sender);
        }
        Ok(Self {
            handles,
            client: OramClient {
                senders,
                alive,
                router,
                cached_stats: FrontendStats::default(),
            },
        })
    }

    /// Number of shards (and worker threads).
    pub fn num_shards(&self) -> usize {
        self.handles.len()
    }

    /// A new client handle onto this service.
    pub fn client(&self) -> OramClient {
        self.client.clone()
    }

    /// Stops the workers and returns the shard instances in shard order
    /// (pending jobs already in the queues are served first).
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Service`] if any worker had already died (the
    /// remaining workers are still shut down and joined first — no
    /// resources leak on the error path).
    pub fn shutdown(mut self) -> Result<Vec<Box<dyn Oram>>, FreecursiveError> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<Vec<Box<dyn Oram>>, FreecursiveError> {
        let mut receipts = Vec::new();
        for (shard, sender) in self.client.senders.iter().enumerate() {
            let (reply, receiver) = std::sync::mpsc::channel();
            // A send failure just means this worker is already gone; the
            // recv pass below notices the dropped reply sender.
            let _ = sender.send(Job::Shutdown { reply });
            receipts.push((shard, receiver));
        }
        let mut shards = Vec::new();
        let mut first_error = None;
        for (shard, receiver) in receipts {
            match receiver.recv() {
                Ok(oram) => shards.push(oram),
                Err(_) => {
                    first_error.get_or_insert(worker_gone(shard));
                }
            }
        }
        for handle in self.handles.drain(..) {
            // Workers have all exited (shutdown served or already dead);
            // a worker that panicked still joins — the unwind was caught.
            let _ = handle.join();
        }
        match first_error {
            None => Ok(shards),
            Some(e) => Err(e),
        }
    }
}

impl Drop for OramService {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OramBuilder;
    use crate::scheme::SchemePoint;

    fn service(shards: u64, total_blocks: u64) -> OramService {
        OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(total_blocks)
            .block_bytes(16)
            .shards(shards)
            .build_service()
            .unwrap()
    }

    #[test]
    fn sync_roundtrip_through_the_service() {
        let service = service(4, 64);
        let mut client = service.client();
        for addr in 0..64u64 {
            client.write(addr, &[addr as u8; 16]).unwrap();
        }
        for addr in 0..64u64 {
            assert_eq!(client.read(addr).unwrap(), vec![addr as u8; 16]);
        }
        let stats = client.fetch_stats().unwrap();
        assert_eq!(stats.frontend_requests, 128);
    }

    #[test]
    fn pipelined_batches_from_one_client_take_effect_in_order() {
        let service = service(2, 16);
        let client = service.client();
        // Two overlapping in-flight batches writing then reading the same
        // addresses: same-client-same-shard ordering makes this definite.
        let writes = client
            .submit(
                (0..16u64)
                    .map(|addr| Request::Write {
                        addr,
                        data: vec![addr as u8 ^ 0x5A; 16],
                    })
                    .collect(),
            )
            .unwrap();
        let reads = client
            .submit((0..16u64).map(|addr| Request::Read { addr }).collect())
            .unwrap();
        writes.wait().unwrap();
        let responses = reads.wait().unwrap();
        for (addr, response) in responses.iter().enumerate() {
            assert_eq!(response.addr, addr as u64);
            assert_eq!(response.data(), Some(&[addr as u8 ^ 0x5A; 16][..]));
        }
    }

    #[test]
    fn single_access_errors_are_not_batch_wrapped() {
        let service = service(2, 16);
        let mut client = service.client();
        let err = client.read(16).unwrap_err();
        assert!(matches!(err, FreecursiveError::Backend(_)), "{err:?}");
        let err = client
            .access_batch(&[Request::Read { addr: 0 }, Request::Read { addr: 99 }])
            .unwrap_err();
        assert!(matches!(err, FreecursiveError::Batch { index: 1, .. }));
    }

    #[test]
    fn shutdown_returns_the_shards_and_fails_late_clients_fast() {
        let service = service(2, 16);
        let mut client = service.client();
        client.write(3, &[7; 16]).unwrap();
        let mut shards = service.shutdown().unwrap();
        assert_eq!(shards.len(), 2);
        // Address 3 lives on shard 1 at intra-shard address 1.
        assert_eq!(shards[1].read(1).unwrap(), vec![7u8; 16]);
        // The surviving client fails fast, not hangs.
        assert!(matches!(
            client.read(0),
            Err(FreecursiveError::Service { .. })
        ));
        assert!(matches!(
            client.fetch_stats(),
            Err(FreecursiveError::Service { .. })
        ));
    }
}
