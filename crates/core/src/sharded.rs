//! [`ShardedOram`]: an address-partitioned composite over `N` independent
//! ORAM instances that itself implements [`Oram`].
//!
//! Sharding is the scale-out move for an oblivious memory: each shard is a
//! complete, independent ORAM (its own tree, stash, PosMap, and keys), so a
//! deployment can grow capacity and — through [`crate::OramService`] —
//! throughput by adding shards, while the per-shard security argument is
//! exactly the single-instance one.
//!
//! # Routing rule
//!
//! A global address `a` is served by shard `a mod N` at intra-shard address
//! `a div N` (low-bits routing).  Taking the *low* bits spreads sequential
//! scans — the common locality pattern — round-robin across shards, so a
//! streaming workload drives all shards instead of hammering one.
//!
//! # What sharding does and does not leak
//!
//! Within a shard, the untrusted-memory trace is the unmodified Path ORAM
//! trace: accesses to the same shard remain computationally
//! indistinguishable, exactly as in the single-instance argument (§2 of the
//! paper).  Across shards, however, **the choice of shard is visible** to
//! anyone who can observe which shard's memory is touched, and that choice
//! is a deterministic function of the address's low `log2(N)` bits.  Two
//! request sequences that differ in their per-shard request *counts* are
//! therefore distinguishable.  This is inherent to deterministic
//! address-partitioned sharding; deployments that need to hide even the
//! shard distribution must pre-randomize the address space (e.g. apply a
//! fixed secret permutation to addresses before they reach the router) or
//! pad per-shard request counts.  The composite makes no attempt to hide
//! the shard sequence — it composes per-shard obliviousness, nothing more.
//!
//! # Batch semantics
//!
//! [`ShardedOram::access_batch`] is deterministic: the batch is split by
//! shard preserving arrival order within each shard, sub-batches execute
//! shard 0 first, then shard 1, …, and responses are reassembled in request
//! order.  Because requests to *different* addresses commute (and requests
//! to the same address always land on the same shard, in order), the
//! result is byte-identical to sequential execution.  Each shard runs its
//! sub-batch through its own frontend's `access_batch`, so the backend's
//! batch dedup window (shared upper-level buckets read and sealed once per
//! window — see `docs/ARCHITECTURE.md` at the workspace root) applies per
//! shard.  On error the global
//! index of the failing request is reported via
//! [`FreecursiveError::Batch`]; addresses and write sizes are validated
//! up front, before any shard executes, so malformed batches fail without
//! side effects.
//!
//! One contract deviation, stated plainly: the single-instance
//! [`Oram::access_batch`] promises that requests *after* the failing one
//! are not executed.  A distributed batch can only keep that promise per
//! shard: if shard 1 fails at runtime (stash overflow, integrity
//! violation), shard 0's whole sub-batch — including requests whose global
//! index is *after* the failing one — has already executed, and the
//! service path runs sub-batches in parallel besides.  Do not retry a
//! failed batch from the reported index.  In this crate's threat model the
//! distinction is mostly academic — the runtime errors that can strike
//! mid-batch are halt-the-machine conditions, not retry-and-continue ones —
//! but callers porting prefix-retry logic from a single instance must know
//! it does not carry over.

use crate::error::FreecursiveError;
use crate::stats::FrontendStats;
use crate::traits::{Oram, Request, Response};
use path_oram::OramError;

/// The pure address-partitioning logic shared by [`ShardedOram`] and the
/// [`crate::OramService`] client: shard selection, address rewriting, batch
/// partitioning and response reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: u64,
    num_blocks: u64,
    block_bytes: usize,
}

/// A batch split by shard: per-shard request vectors (intra-shard
/// addresses, arrival order preserved) plus the plan mapping each per-shard
/// position back to its global batch index.
#[derive(Debug)]
pub struct PartitionedBatch {
    /// `per_shard[s]` is the sub-batch for shard `s`, already rewritten to
    /// intra-shard addresses.
    pub per_shard: Vec<Vec<Request>>,
    /// `plan[s][j]` is the global batch index of `per_shard[s][j]`.
    pub plan: Vec<Vec<usize>>,
}

impl ShardRouter {
    /// A router over `num_shards` shards serving `num_blocks` global
    /// addresses of `block_bytes` each.
    pub fn new(num_shards: u64, num_blocks: u64, block_bytes: usize) -> Self {
        debug_assert!(num_shards > 0);
        Self {
            num_shards,
            num_blocks,
            block_bytes,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u64 {
        self.num_shards
    }

    /// Global capacity in blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// The shard serving global address `addr` (its low bits mod N).
    pub fn shard_of(&self, addr: u64) -> usize {
        usize::try_from(addr % self.num_shards).expect("shard index bounded by N fits usize")
    }

    /// The intra-shard address of global address `addr`.
    pub fn inner_addr(&self, addr: u64) -> u64 {
        addr / self.num_shards
    }

    /// Inverse of the routing rule: the global address served by `shard` at
    /// intra-shard address `inner`.
    pub fn global_addr(&self, shard: usize, inner: u64) -> u64 {
        inner * self.num_shards + shard as u64
    }

    /// Validates a request against the *global* address space and block
    /// size, so malformed requests are rejected before they reach a shard
    /// (whose padded capacity could otherwise mask an out-of-range global
    /// address).
    pub fn validate(&self, request: &Request) -> Result<(), FreecursiveError> {
        let addr = request.addr();
        if addr >= self.num_blocks {
            return Err(OramError::AddressOutOfRange {
                addr,
                capacity: self.num_blocks,
            }
            .into());
        }
        if let Request::Write { data, .. } = request {
            if data.len() != self.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.block_bytes,
                    actual: data.len(),
                }
                .into());
            }
        }
        Ok(())
    }

    /// Rewrites a (validated) request to its intra-shard address, returning
    /// the owning shard.
    pub fn rewrite(&self, request: Request) -> (usize, Request) {
        let shard = self.shard_of(request.addr());
        let inner = self.inner_addr(request.addr());
        let rewritten = match request {
            Request::Read { .. } => Request::Read { addr: inner },
            Request::Write { data, .. } => Request::Write { addr: inner, data },
            Request::ReadRemove { .. } => Request::ReadRemove { addr: inner },
        };
        (shard, rewritten)
    }

    /// Splits a batch by shard, validating every request first (so a
    /// malformed batch fails — with the global index — before any shard
    /// executes anything).  Write payloads are moved, never cloned.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Batch`] wrapping the validation failure of the
    /// first malformed request.
    pub fn partition(&self, requests: Vec<Request>) -> Result<PartitionedBatch, FreecursiveError> {
        for (index, request) in requests.iter().enumerate() {
            self.validate(request)
                .map_err(|e| e.with_batch_index(index))?;
        }
        let shards = self.num_shards as usize;
        let mut per_shard: Vec<Vec<Request>> = (0..shards).map(|_| Vec::new()).collect();
        let mut plan: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for (index, request) in requests.into_iter().enumerate() {
            let (shard, rewritten) = self.rewrite(request);
            per_shard[shard].push(rewritten);
            plan[shard].push(index);
        }
        Ok(PartitionedBatch { per_shard, plan })
    }

    /// Reassembles per-shard response vectors into global request order,
    /// rewriting intra-shard addresses back to global ones.  `plan` must be
    /// the partition plan the sub-batches were produced from.
    pub fn reassemble(
        &self,
        plan: &[Vec<usize>],
        per_shard: Vec<Vec<Response>>,
        total: usize,
    ) -> Vec<Response> {
        let mut out: Vec<Option<Response>> = (0..total).map(|_| None).collect();
        for (shard, responses) in per_shard.into_iter().enumerate() {
            for (j, mut response) in responses.into_iter().enumerate() {
                response.addr = self.global_addr(shard, response.addr);
                out[plan[shard][j]] = Some(response);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every batch position has exactly one response"))
            .collect()
    }
}

/// Checks that a shard set is non-empty and geometrically uniform (equal
/// per-shard capacity and block size — what the low-bits routing rule
/// requires), returning the router over it.  Shared by [`ShardedOram::new`]
/// and [`crate::OramService::from_shards`].
///
/// # Errors
///
/// [`crate::ConfigError::Degenerate`] for an empty set,
/// [`FreecursiveError::Service`] describing the first geometry mismatch.
pub(crate) fn validate_shard_geometry<O: Oram>(
    shards: &[O],
) -> Result<ShardRouter, FreecursiveError> {
    let first = shards
        .first()
        .ok_or(crate::error::ConfigError::Degenerate)?;
    let per_shard = first.num_blocks();
    let block_bytes = first.block_bytes();
    for shard in shards {
        if shard.num_blocks() != per_shard || shard.block_bytes() != block_bytes {
            return Err(FreecursiveError::Service {
                detail: format!(
                    "shard geometry mismatch: expected {per_shard} blocks x {block_bytes} B, \
                     found {} blocks x {} B",
                    shard.num_blocks(),
                    shard.block_bytes()
                ),
            });
        }
    }
    Ok(ShardRouter::new(
        shards.len() as u64,
        shards.len() as u64 * per_shard,
        block_bytes,
    ))
}

/// An address-partitioned composite of `N` independent ORAM shards,
/// implementing [`Oram`] itself — drop-in for a single instance wherever
/// the trait is accepted (see the [module documentation](self) for the
/// routing rule and the leakage caveat).
///
/// The composite executes on the caller's thread; for thread-per-shard
/// parallel execution wrap the same shards in a [`crate::OramService`].
///
/// [`Oram::stats`] returns the *merged* view over all shards (counts sum,
/// `max_stash_occupancy` maxes); [`ShardedOram::shard_stats`] exposes the
/// per-shard breakdown.
#[derive(Debug)]
pub struct ShardedOram<O: Oram = Box<dyn Oram>> {
    shards: Vec<O>,
    router: ShardRouter,
    /// Merged stats view, rebuilt after every state-changing call so
    /// `stats(&self)` can hand out a reference.
    merged: FrontendStats,
}

impl<O: Oram> ShardedOram<O> {
    /// Composes pre-built shards.  All shards must agree on block size and
    /// per-shard capacity (equal-size shards are what the low-bits routing
    /// rule requires); the global capacity is `shards.len() *
    /// per_shard_blocks`.
    ///
    /// Most callers want [`crate::OramBuilder::build_sharded`] instead,
    /// which builds the shards from one validated configuration.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Config`] ([`crate::ConfigError::Degenerate`]) if
    /// `shards` is empty, or [`FreecursiveError::Service`] describing the
    /// mismatch if the shards disagree on geometry.
    pub fn new(shards: Vec<O>) -> Result<Self, FreecursiveError> {
        let router = validate_shard_geometry(&shards)?;
        let mut composite = Self {
            shards,
            router,
            merged: FrontendStats::default(),
        };
        composite.remerge();
        Ok(composite)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing rule in effect.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Per-shard statistics, indexed by shard.
    pub fn shard_stats(&self) -> Vec<&FrontendStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Unwraps the composite into its shards.
    pub fn into_shards(self) -> Vec<O> {
        self.shards
    }

    fn remerge(&mut self) {
        self.merged = FrontendStats::merged(self.shards.iter().map(|s| s.stats()));
    }
}

impl<O: Oram> Oram for ShardedOram<O> {
    fn block_bytes(&self) -> usize {
        self.router.block_bytes()
    }

    fn num_blocks(&self) -> u64 {
        self.router.num_blocks()
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        self.router.validate(&request)?;
        let (shard, rewritten) = self.router.rewrite(request);
        let global = self.router.global_addr(shard, rewritten.addr());
        // Keep the merged view current in O(1): fold in only the served
        // shard's delta instead of re-merging every shard per access.
        let before = self.shards[shard].stats().clone();
        let result = self.shards[shard].access(rewritten);
        self.merged.apply_delta(&before, self.shards[shard].stats());
        let mut response = result?;
        response.addr = global;
        Ok(response)
    }

    fn access_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, FreecursiveError> {
        self.access_batch_owned(requests.to_vec())
    }

    fn access_batch_owned(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        let total = requests.len();
        let PartitionedBatch { per_shard, plan } = self.router.partition(requests)?;
        let mut responses = Vec::with_capacity(self.shards.len());
        for (shard, sub_batch) in per_shard.into_iter().enumerate() {
            let result = self.shards[shard].access_batch_owned(sub_batch);
            match result {
                Ok(r) => responses.push(r),
                Err(e) => {
                    self.remerge();
                    // Map the shard-local batch index back to the global one.
                    return Err(match e {
                        FreecursiveError::Batch { index, source } => FreecursiveError::Batch {
                            index: plan[shard][index],
                            source,
                        },
                        other => other,
                    });
                }
            }
        }
        self.remerge();
        Ok(self.router.reassemble(&plan, responses, total))
    }

    fn read_into(&mut self, addr: u64, out: &mut Vec<u8>) -> Result<(), FreecursiveError> {
        self.router.validate(&Request::Read { addr })?;
        let shard = self.router.shard_of(addr);
        let inner = self.router.inner_addr(addr);
        let before = self.shards[shard].stats().clone();
        let result = self.shards[shard].read_into(inner, out);
        self.merged.apply_delta(&before, self.shards[shard].stats());
        result
    }

    fn stats(&self) -> &FrontendStats {
        &self.merged
    }

    fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
        self.remerge();
    }

    fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        // A composite snapshot: a top-level manifest recording the shard
        // count, plus one complete per-shard snapshot in `shard<i>/`.
        // `OramBuilder::resume` reassembles the composite from those.
        // Durability is likewise per shard: with a logged mode each
        // file-backed shard keeps its own WAL inside its `shard<i>/`
        // subdirectory, so shards checkpoint and recover independently.
        use path_oram::snapshot::put_u64;
        std::fs::create_dir_all(dir).map_err(|e| crate::persist::dir_error(dir, e))?;
        let mut payload = Vec::new();
        put_u64(&mut payload, self.shards.len() as u64);
        path_oram::snapshot::write_state_file(
            &crate::persist::state_path(dir),
            crate::persist::KIND_SHARDED,
            &payload,
        )?;
        for (index, shard) in self.shards.iter().enumerate() {
            shard.persist(&dir.join(format!("shard{index}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OramBuilder;
    use crate::scheme::SchemePoint;

    fn sharded(n_shards: u64, total_blocks: u64) -> ShardedOram {
        OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(total_blocks)
            .block_bytes(16)
            .shards(n_shards)
            .build_sharded()
            .unwrap()
    }

    #[test]
    fn routing_is_low_bits_and_invertible() {
        let r = ShardRouter::new(4, 1024, 64);
        for addr in [0u64, 1, 2, 3, 4, 7, 1023] {
            let shard = r.shard_of(addr);
            let inner = r.inner_addr(addr);
            assert_eq!(shard as u64, addr % 4);
            assert_eq!(inner, addr / 4);
            assert_eq!(r.global_addr(shard, inner), addr);
        }
        // Sequential addresses round-robin across shards.
        let shards: Vec<usize> = (0..8).map(|a| r.shard_of(a)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn partition_preserves_order_and_moves_payloads() {
        let r = ShardRouter::new(2, 8, 4);
        let batch = vec![
            Request::Read { addr: 0 },
            Request::Write {
                addr: 1,
                data: vec![1; 4],
            },
            Request::Read { addr: 2 },
            Request::ReadRemove { addr: 3 },
        ];
        let PartitionedBatch { per_shard, plan } = r.partition(batch).unwrap();
        assert_eq!(
            per_shard[0],
            vec![Request::Read { addr: 0 }, Request::Read { addr: 1 }]
        );
        assert_eq!(
            per_shard[1],
            vec![
                Request::Write {
                    addr: 0,
                    data: vec![1; 4]
                },
                Request::ReadRemove { addr: 1 }
            ]
        );
        assert_eq!(plan, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn partition_rejects_malformed_requests_with_the_global_index() {
        let r = ShardRouter::new(2, 8, 4);
        let err = r
            .partition(vec![
                Request::Read { addr: 0 },
                Request::Read { addr: 8 }, // out of global range
            ])
            .unwrap_err();
        assert!(matches!(err, FreecursiveError::Batch { index: 1, .. }));
        let err = r
            .partition(vec![Request::Write {
                addr: 0,
                data: vec![0; 3], // wrong block size
            }])
            .unwrap_err();
        assert!(matches!(err, FreecursiveError::Batch { index: 0, .. }));
    }

    #[test]
    fn sharded_composite_roundtrips_across_shards() {
        let mut oram = sharded(4, 64);
        assert_eq!(oram.num_blocks(), 64);
        assert_eq!(oram.num_shards(), 4);
        for addr in 0..64u64 {
            oram.write(addr, &[addr as u8; 16]).unwrap();
        }
        for addr in 0..64u64 {
            assert_eq!(oram.read(addr).unwrap(), vec![addr as u8; 16]);
        }
        // The merged stats saw every request; each shard took its quarter.
        assert_eq!(oram.stats().frontend_requests, 128);
        for s in oram.shard_stats() {
            assert_eq!(s.frontend_requests, 32);
        }
    }

    #[test]
    fn single_access_delta_fold_matches_a_full_remerge() {
        // Mix single accesses (delta-folded), batches and a reset (full
        // remerge): the cached merged view must always equal a from-scratch
        // merge over the shard stats.
        let mut oram = sharded(4, 64);
        let check = |oram: &ShardedOram| {
            let full = FrontendStats::merged(oram.shard_stats().iter().copied());
            assert_eq!(*oram.stats(), full);
        };
        for addr in 0..32u64 {
            oram.write(addr, &[addr as u8; 16]).unwrap();
            check(&oram);
        }
        oram.access_batch(
            &(0..16u64)
                .map(|addr| Request::Read { addr })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        check(&oram);
        oram.reset_stats();
        check(&oram);
        let mut buf = Vec::new();
        oram.read_into(5, &mut buf).unwrap();
        check(&oram);
        // Errors also keep the views aligned.
        let _ = oram.read(999);
        check(&oram);
    }

    #[test]
    fn batch_results_come_back_in_request_order_with_global_addresses() {
        let mut oram = sharded(2, 16);
        oram.write(5, &[5; 16]).unwrap();
        oram.write(6, &[6; 16]).unwrap();
        let responses = oram
            .access_batch(&[
                Request::Read { addr: 6 },
                Request::Read { addr: 5 },
                Request::Write {
                    addr: 0,
                    data: vec![9; 16],
                },
            ])
            .unwrap();
        assert_eq!(responses[0].addr, 6);
        assert_eq!(responses[0].data(), Some(&[6u8; 16][..]));
        assert_eq!(responses[1].addr, 5);
        assert_eq!(responses[1].data(), Some(&[5u8; 16][..]));
        assert_eq!(responses[2].addr, 0);
        assert_eq!(responses[2].data(), None);
    }

    #[test]
    fn out_of_range_global_addresses_are_rejected_despite_padding() {
        // 10 blocks over 4 shards pads per-shard capacity to ceil(10/4) = 3,
        // so the composite reports the padded capacity 12 and rejects
        // addresses at or beyond it.
        let oram = sharded(4, 10);
        assert_eq!(oram.num_blocks(), 12);
        let mut oram = oram;
        assert!(oram.read(11).is_ok());
        assert!(matches!(
            oram.read(12),
            Err(FreecursiveError::Backend(
                OramError::AddressOutOfRange { .. }
            ))
        ));
    }

    #[test]
    fn composing_mismatched_shards_is_an_error() {
        let a = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(8)
            .block_bytes(16)
            .build()
            .unwrap();
        let b = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(4)
            .block_bytes(16)
            .build()
            .unwrap();
        assert!(matches!(
            ShardedOram::new(vec![a, b]),
            Err(FreecursiveError::Service { .. })
        ));
        let empty: Vec<Box<dyn Oram>> = Vec::new();
        assert!(ShardedOram::new(empty).is_err());
    }
}
