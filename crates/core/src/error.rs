//! The crate's unified error surface.
//!
//! Everything the processor-facing API can fail with is a
//! [`FreecursiveError`]: configuration problems ([`ConfigError`]), backend
//! failures ([`path_oram::OramError`]), and PMMAC integrity violations, which
//! get their own variant because a secure processor treats them as a
//! halt-the-machine event rather than an ordinary error (§6).

use path_oram::OramError;
use serde::{Deserialize, Serialize};

/// Errors detected while validating a [`crate::FreecursiveConfig`] or
/// resolving an [`crate::OramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size parameter was zero.
    Degenerate,
    /// PMMAC requires counter-based PosMap formats (flat counters or the
    /// compressed format, §6.2.2).
    PmmacNeedsCounters,
    /// The requested X is smaller than 2.
    XTooSmall {
        /// The offending X.
        x: u64,
    },
    /// The requested X does not fit in the PosMap block.
    XTooLarge {
        /// The offending X.
        x: u64,
        /// The largest X the block can hold.
        max: u64,
    },
    /// The requested scheme point cannot be built by this constructor (e.g.
    /// asking [`crate::OramBuilder::build_freecursive`] for `R_X8`).
    UnsupportedScheme {
        /// The label of the offending scheme point.
        scheme: &'static str,
    },
    /// An oblivious-map geometry constraint failed: the overflow pool is
    /// smaller than one worst-case value chain, the backing ORAM is smaller
    /// or differently-sized than the layout requires, or a derived count
    /// does not fit its index type.  Raised at `build_map` time so bad
    /// parameter combinations never reach the first insert.
    MapGeometry {
        /// Which constraint failed.
        detail: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Degenerate => write!(f, "a size parameter was zero"),
            ConfigError::PmmacNeedsCounters => {
                write!(f, "pmmac requires a counter-based posmap format")
            }
            ConfigError::XTooSmall { x } => write!(f, "x = {x} is too small (minimum 2)"),
            ConfigError::XTooLarge { x, max } => {
                write!(
                    f,
                    "x = {x} does not fit in the posmap block (maximum {max})"
                )
            }
            ConfigError::UnsupportedScheme { scheme } => {
                write!(
                    f,
                    "scheme point {scheme} is not supported by this constructor"
                )
            }
            ConfigError::MapGeometry { detail } => {
                write!(f, "oblivious map geometry is unsatisfiable: {detail}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors of the oblivious key-value layer (`oram-omap`'s `ObliviousMap`),
/// surfaced through [`FreecursiveError::Map`] so map callers keep the same
/// unified error surface as block callers.
///
/// The variants split along the map's two failure axes: *input* problems
/// ([`MapError::KeyTooLarge`], [`MapError::ValueTooLarge`]) are detected
/// before any ORAM access is issued and depend only on the caller-visible
/// request, while [`MapError::CapacityExhausted`] is a *state* problem —
/// discovered mid-operation, after which the op still completes its full
/// padded access schedule so the failure is not distinguishable from a
/// success in the ORAM request count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MapError {
    /// The key is longer than the layout's maximum key size.
    KeyTooLarge {
        /// Length of the offending key in bytes.
        len: usize,
        /// The layout's maximum key length.
        max: usize,
    },
    /// The value is longer than the layout's maximum value size.
    ValueTooLarge {
        /// Length of the offending value in bytes.
        len: usize,
        /// The layout's maximum value length.
        max: usize,
    },
    /// The map cannot hold the entry: both candidate buckets are full, or
    /// the overflow pool has no free chain blocks left.  Also produced at
    /// construction when the requested geometry cannot satisfy even one
    /// worst-case entry.
    CapacityExhausted {
        /// What ran out (candidate slots, overflow pool, …).
        detail: &'static str,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds the maximum of {max}")
            }
            MapError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} bytes exceeds the maximum of {max}")
            }
            MapError::CapacityExhausted { detail } => {
                write!(f, "map capacity exhausted: {detail}")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// The unified error type of the processor-facing ORAM API.
///
/// Construction and access go through exactly this one enum, so callers can
/// hold a `Box<dyn Oram>` without caring which frontend or backend is behind
/// it.  `From` conversions are provided for both underlying error types;
/// [`OramError::IntegrityViolation`] is promoted to the dedicated
/// [`FreecursiveError::Integrity`] variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FreecursiveError {
    /// The requested configuration is invalid.
    Config(ConfigError),
    /// The backend failed (stash overflow, malformed bucket, missing block,
    /// out-of-range parameters, …).
    Backend(OramError),
    /// PMMAC detected tampered or replayed memory (§6).  A secure processor
    /// halts on this condition.
    Integrity {
        /// The unified address whose MAC failed to verify.
        addr: u64,
    },
    /// A request inside a batch failed: the index pins down *which* request,
    /// the source says why.  Produced by [`crate::Oram::access_batch`] and
    /// the sharded/service fan-out paths so batch callers never have to
    /// bisect a failing batch by hand.
    Batch {
        /// Position of the failing request within the submitted batch.
        index: usize,
        /// The underlying failure.
        source: Box<FreecursiveError>,
    },
    /// The [`crate::OramService`] runtime failed: a shard worker panicked,
    /// was shut down, or its channel disconnected.  Clients receive this
    /// instead of hanging on a dead worker.
    Service {
        /// Human-readable description of what happened to the worker.
        detail: String,
    },
    /// The oblivious key-value layer rejected the operation (key/value too
    /// large for the layout, or the map/overflow capacity is exhausted).
    /// See [`MapError`] for the failure-axis split.
    Map(MapError),
}

impl FreecursiveError {
    /// Whether this error is an integrity violation (the halt-the-processor
    /// condition of the threat model).  Sees through [`Self::Batch`]
    /// wrapping.
    pub fn is_integrity_violation(&self) -> bool {
        match self {
            FreecursiveError::Integrity { .. } => true,
            FreecursiveError::Batch { source, .. } => source.is_integrity_violation(),
            _ => false,
        }
    }

    /// Wraps this error with the index of the batch request that produced
    /// it.  Already-wrapped errors keep their (innermost-batch) index: the
    /// sharded fan-out re-wraps with the *global* index explicitly instead.
    pub fn with_batch_index(self, index: usize) -> FreecursiveError {
        match self {
            already @ FreecursiveError::Batch { .. } => already,
            source => FreecursiveError::Batch {
                index,
                source: Box::new(source),
            },
        }
    }

    /// Strips [`Self::Batch`] wrapping, returning the underlying failure.
    pub fn into_source(self) -> FreecursiveError {
        match self {
            FreecursiveError::Batch { source, .. } => source.into_source(),
            other => other,
        }
    }
}

impl std::fmt::Display for FreecursiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreecursiveError::Config(e) => write!(f, "invalid configuration: {e}"),
            FreecursiveError::Backend(e) => write!(f, "backend failure: {e}"),
            FreecursiveError::Integrity { addr } => {
                write!(
                    f,
                    "integrity violation on block {addr:#x} (tampered or replayed memory)"
                )
            }
            FreecursiveError::Batch { index, source } => {
                write!(f, "request {index} in batch failed: {source}")
            }
            FreecursiveError::Service { detail } => {
                write!(f, "oram service failure: {detail}")
            }
            FreecursiveError::Map(e) => write!(f, "oblivious map failure: {e}"),
        }
    }
}

impl std::error::Error for FreecursiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FreecursiveError::Config(e) => Some(e),
            FreecursiveError::Backend(e) => Some(e),
            FreecursiveError::Map(e) => Some(e),
            FreecursiveError::Batch { source, .. } => Some(source),
            FreecursiveError::Integrity { .. } | FreecursiveError::Service { .. } => None,
        }
    }
}

impl From<ConfigError> for FreecursiveError {
    fn from(e: ConfigError) -> Self {
        FreecursiveError::Config(e)
    }
}

impl From<MapError> for FreecursiveError {
    fn from(e: MapError) -> Self {
        FreecursiveError::Map(e)
    }
}

impl From<OramError> for FreecursiveError {
    fn from(e: OramError) -> Self {
        match e {
            OramError::IntegrityViolation { addr } => FreecursiveError::Integrity { addr },
            other => FreecursiveError::Backend(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ConfigError::XTooLarge { x: 99, max: 32 }
            .to_string()
            .contains("99"));
        assert!(FreecursiveError::Integrity { addr: 0xAB }
            .to_string()
            .contains("0xab"));
    }

    #[test]
    fn integrity_violations_are_promoted() {
        let e: FreecursiveError = OramError::IntegrityViolation { addr: 7 }.into();
        assert_eq!(e, FreecursiveError::Integrity { addr: 7 });
        assert!(e.is_integrity_violation());
        let e: FreecursiveError = OramError::MissingWriteData.into();
        assert_eq!(e, FreecursiveError::Backend(OramError::MissingWriteData));
        assert!(!e.is_integrity_violation());
    }

    #[test]
    fn batch_wrapping_reports_the_index_and_preserves_the_source() {
        let e = FreecursiveError::from(OramError::MissingWriteData).with_batch_index(17);
        assert!(e.to_string().contains("request 17"));
        // Re-wrapping keeps the innermost index.
        let rewrapped = e.clone().with_batch_index(99);
        assert_eq!(rewrapped, e);
        assert_eq!(
            e.into_source(),
            FreecursiveError::Backend(OramError::MissingWriteData)
        );
        // Integrity violations stay recognisable through the wrapper.
        let halt = FreecursiveError::Integrity { addr: 3 }.with_batch_index(0);
        assert!(halt.is_integrity_violation());
        use std::error::Error as _;
        assert!(halt.source().is_some());
    }

    #[test]
    fn service_errors_carry_detail() {
        let e = FreecursiveError::Service {
            detail: "shard 2 worker panicked".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(!e.is_integrity_violation());
    }

    #[test]
    fn map_errors_wrap_and_display() {
        let e: FreecursiveError = MapError::KeyTooLarge { len: 99, max: 24 }.into();
        assert!(matches!(
            e,
            FreecursiveError::Map(MapError::KeyTooLarge { len: 99, max: 24 })
        ));
        assert!(e.to_string().contains("99"));
        assert!(!e.is_integrity_violation());
        use std::error::Error as _;
        assert!(e.source().is_some());
        let e: FreecursiveError = MapError::ValueTooLarge { len: 7, max: 4 }.into();
        assert!(e.to_string().contains("exceeds"));
        // Capacity exhaustion stays recognisable through batch wrapping.
        let e = FreecursiveError::from(MapError::CapacityExhausted {
            detail: "both candidate buckets full",
        })
        .with_batch_index(3);
        assert!(matches!(
            e.into_source(),
            FreecursiveError::Map(MapError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn config_errors_wrap() {
        let e: FreecursiveError = ConfigError::Degenerate.into();
        assert!(matches!(
            e,
            FreecursiveError::Config(ConfigError::Degenerate)
        ));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
