//! Frontend-level errors (configuration problems); runtime ORAM errors are
//! [`path_oram::OramError`].

use serde::{Deserialize, Serialize};

/// Errors detected while validating a [`crate::FreecursiveConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size parameter was zero.
    Degenerate,
    /// PMMAC requires counter-based PosMap formats (flat counters or the
    /// compressed format, §6.2.2).
    PmmacNeedsCounters,
    /// The requested X is smaller than 2.
    XTooSmall {
        /// The offending X.
        x: u64,
    },
    /// The requested X does not fit in the PosMap block.
    XTooLarge {
        /// The offending X.
        x: u64,
        /// The largest X the block can hold.
        max: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Degenerate => write!(f, "a size parameter was zero"),
            ConfigError::PmmacNeedsCounters => {
                write!(f, "pmmac requires a counter-based posmap format")
            }
            ConfigError::XTooSmall { x } => write!(f, "x = {x} is too small (minimum 2)"),
            ConfigError::XTooLarge { x, max } => {
                write!(f, "x = {x} does not fit in the posmap block (maximum {max})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ConfigError::XTooLarge { x: 99, max: 32 }
            .to_string()
            .contains("99"));
    }
}
