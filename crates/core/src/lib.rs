//! # Freecursive ORAM
//!
//! A faithful algorithmic reproduction of **"Freecursive ORAM: \[Nearly\] Free
//! Recursion and Integrity Verification for Position-based Oblivious RAM"**
//! (Fletcher, Ren, Kwon, van Dijk, Devadas — ASPLOS 2015).
//!
//! How this crate's frontends fit the whole system — crate graph, the life
//! of one access down to bytes on disk, the batch scheduler, and the
//! per-layer obliviousness argument — is mapped end to end in
//! `docs/ARCHITECTURE.md` at the workspace root.
//!
//! The paper's contribution is an ORAM *frontend* — the logic that manages
//! the Position Map (PosMap) — consisting of three mechanisms:
//!
//! 1. the **PosMap Lookaside Buffer (PLB)** plus a **unified ORAM tree**,
//!    which exploit program address locality to skip most Recursive-ORAM
//!    PosMap accesses without leaking the access pattern (§4);
//! 2. the **compressed PosMap**, which replaces stored leaves with a group
//!    counter and per-block individual counters fed through a PRF, doubling
//!    the PosMap fan-out X and improving the construction asymptotically
//!    (§5);
//! 3. **PosMap MAC (PMMAC)**, which reuses those counters as the
//!    non-repeating nonces of a replay-resistant MAC, giving integrity
//!    verification that hashes only the block of interest instead of a whole
//!    Merkle path (§6).
//!
//! This crate contains the functional controllers behind one processor-facing
//! interface, the [`Oram`] trait: [`FreecursiveOram`] (the
//! PLB/compressed/PMMAC frontend), [`RecursiveOram`] (the `R_X8` baseline of
//! the evaluation), and [`InsecureOram`] (the flat "no ORAM" baseline).  Both
//! tree frontends are generic over the [`path_oram::OramBackend`] substrate
//! seam, and every design point is constructed through [`OramBuilder`] keyed
//! by [`SchemePoint`].  The scalable trace-driven *timing* simulator that
//! regenerates the paper's figures lives in the `oram-sim` crate; the Path
//! ORAM backend substrate in `path-oram`.
//!
//! On top of the single-instance controllers sits the scale-out layer:
//! [`ShardedOram`] (an address-partitioned composite of independent
//! instances, itself an [`Oram`] — see [`sharded`]) and
//! [`OramService`]/[`OramClient`] (the same shards on worker threads behind
//! cheaply-clonable client handles — see [`service`]), both built through
//! [`OramBuilder::shards`].
//!
//! # Quick start
//!
//! ```
//! use freecursive::{Oram, OramBuilder, Request, SchemePoint};
//!
//! # fn main() -> Result<(), freecursive::FreecursiveError> {
//! // The full PIC_X32 design at 2^12 blocks of 64 bytes.
//! let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
//!     .num_blocks(1 << 12)
//!     .build_freecursive()?;
//!
//! oram.write(1000, &vec![42u8; 64])?;
//! assert_eq!(oram.read(1000)?, vec![42u8; 64]);
//!
//! // The batched path serves mixed request streams in one call.
//! let responses = oram.access_batch(&[
//!     Request::Read { addr: 1000 },
//!     Request::Write { addr: 3, data: vec![7u8; 64] },
//! ])?;
//! assert_eq!(responses[0].data.as_deref(), Some(&[42u8; 64][..]));
//!
//! // The stats expose exactly the quantities the paper evaluates.
//! println!("posmap fraction of traffic: {:?}",
//!          oram.stats().posmap_bandwidth_fraction());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod analysis;
pub mod builder;
pub mod config;
pub mod error;
pub mod frontend;
pub mod insecure;
pub mod payload;
pub(crate) mod persist;
pub mod recursive;
pub mod scheme;
pub mod service;
pub mod sharded;
pub mod stats;
pub mod traits;

pub use adversary::Adversary;
pub use analysis::AsymptoticParams;
pub use builder::OramBuilder;
pub use config::{FreecursiveConfig, PosMapFormat};
pub use error::{ConfigError, FreecursiveError, MapError};
pub use frontend::FreecursiveOram;
pub use insecure::InsecureOram;
pub use recursive::{RecursiveOram, RecursiveOramConfig};
pub use scheme::SchemePoint;
pub use service::{OramClient, OramService, PendingBatch};
pub use sharded::{ShardRouter, ShardedOram};
pub use stats::FrontendStats;
pub use traits::{Oram, Request, Response};

// Re-export the substrate types callers commonly need alongside the frontend.
pub use path_oram::{
    Durability, EncryptionMode, InsecureBackend, OramBackend, OramError, PathOramBackend,
    StorageKind,
};

// `Oram: Send` is a supertrait promise; pin it down for every frontend (the
// backends carry their own assertions in `path_oram`, the PosMap structures
// in `posmap`).  A non-`Send` field added to any of these becomes a compile
// error here instead of a distant one at an `OramService` call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FreecursiveOram<PathOramBackend>>();
    assert_send::<FreecursiveOram<InsecureBackend>>();
    assert_send::<RecursiveOram<PathOramBackend>>();
    assert_send::<RecursiveOram<InsecureBackend>>();
    assert_send::<InsecureOram>();
    assert_send::<Box<dyn Oram>>();
    assert_send::<ShardedOram>();
    assert_send::<OramClient>();
    assert_send::<OramService>();
};
