//! # Freecursive ORAM
//!
//! A faithful algorithmic reproduction of **"Freecursive ORAM: [Nearly] Free
//! Recursion and Integrity Verification for Position-based Oblivious RAM"**
//! (Fletcher, Ren, Kwon, van Dijk, Devadas — ASPLOS 2015).
//!
//! The paper's contribution is an ORAM *frontend* — the logic that manages
//! the Position Map (PosMap) — consisting of three mechanisms:
//!
//! 1. the **PosMap Lookaside Buffer (PLB)** plus a **unified ORAM tree**,
//!    which exploit program address locality to skip most Recursive-ORAM
//!    PosMap accesses without leaking the access pattern (§4);
//! 2. the **compressed PosMap**, which replaces stored leaves with a group
//!    counter and per-block individual counters fed through a PRF, doubling
//!    the PosMap fan-out X and improving the construction asymptotically
//!    (§5);
//! 3. **PosMap MAC (PMMAC)**, which reuses those counters as the
//!    non-repeating nonces of a replay-resistant MAC, giving integrity
//!    verification that hashes only the block of interest instead of a whole
//!    Merkle path (§6).
//!
//! This crate contains the functional controller: [`FreecursiveOram`] (the
//! PLB/compressed/PMMAC frontend over a real Path ORAM backend) and
//! [`RecursiveOram`] (the `R_X8` baseline of the evaluation).  The scalable
//! trace-driven *timing* simulator that regenerates the paper's figures lives
//! in the `oram-sim` crate; the Path ORAM backend substrate in `path-oram`.
//!
//! # Quick start
//!
//! ```
//! use freecursive::{FreecursiveConfig, FreecursiveOram, Oram};
//!
//! # fn main() -> Result<(), path_oram::OramError> {
//! // A 64 MB ORAM (2^20 blocks of 64 bytes) with the full PIC_X32 design.
//! let config = FreecursiveConfig::pic_x32(1 << 12, 64);
//! let mut oram = FreecursiveOram::new(config)?;
//!
//! oram.write(1000, &vec![42u8; 64])?;
//! assert_eq!(oram.read(1000)?, vec![42u8; 64]);
//!
//! // The stats expose exactly the quantities the paper evaluates.
//! println!("posmap fraction of traffic: {:?}",
//!          oram.stats().posmap_bandwidth_fraction());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod analysis;
pub mod config;
pub mod error;
pub mod frontend;
pub mod payload;
pub mod recursive;
pub mod stats;
pub mod traits;

pub use adversary::Adversary;
pub use analysis::AsymptoticParams;
pub use config::{FreecursiveConfig, PosMapFormat};
pub use error::ConfigError;
pub use frontend::FreecursiveOram;
pub use recursive::{RecursiveOram, RecursiveOramConfig};
pub use stats::FrontendStats;
pub use traits::Oram;

// Re-export the substrate types callers commonly need alongside the frontend.
pub use path_oram::{EncryptionMode, OramError};
