//! The Freecursive ORAM frontend: PLB + unified ORAM tree (§4), compressed
//! PosMap (§5), and PMMAC integrity verification (§6).
//!
//! All PosMap blocks and data blocks live in a **single** ORAM tree (the
//! unified tree `ORam_U`), addressed in the disjoint `i‖a_i` space.  The
//! frontend keeps recently used PosMap blocks in the PLB; on an access it
//! probes the PLB from the data level upward, fetches only the PosMap blocks
//! it is missing (each with a `readrmv`), and finally accesses the data
//! block.  PLB evictions are `append`ed back into the stash (§4.2.2–§4.2.4).
//!
//! The same code path implements the `P_X16`, `PC_X32`, `PI_X8` and `PIC_X32`
//! design points of the evaluation; which one you get is decided by the
//! [`FreecursiveConfig`] PosMap format and PMMAC flag.

use crate::config::FreecursiveConfig;
use crate::error::FreecursiveError;
use crate::payload::{AdvanceResult, GroupRemapInfo, PosMapBlockPayload};
use crate::stats::FrontendStats;
use crate::traits::{Oram, Request, Response};
use oram_crypto::mac::{MacKey, MAC_BYTES};
use oram_crypto::prf::{AesPrf, Prf};
use path_oram::{AccessOp, OramBackend, OramError, OramParams, PathOramBackend};
use posmap::addressing::{tag_address, RecursionAddressing};
use posmap::onchip::{OnChipEntryKind, OnChipPosMap};
use posmap::{Plb, PlbEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the frontend stores per PLB-resident PosMap block: the typed payload
/// plus the access counter that will authenticate it when it is appended back
/// (the counter does not change while the block is PLB-resident, §6.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlbPayload {
    /// The PosMap block contents.
    pub block: PosMapBlockPayload,
    /// The block's own access counter (`None` when PMMAC is disabled and the
    /// format is raw leaves).
    pub counter: Option<u64>,
}

/// The result of resolving one recursion step: the child's current position
/// and its freshly assigned one.
#[derive(Debug, Clone)]
struct ResolvedChild {
    current_leaf: u64,
    current_counter: Option<u64>,
    advance: AdvanceResult,
}

/// The Freecursive ORAM controller: frontend plus a pluggable
/// [`OramBackend`] (the functional Path ORAM tree by default).
///
/// The backend type parameter is the paper's Frontend/Backend seam (§3.1):
/// everything PLB-, compression- and PMMAC-related lives here and is
/// oblivious to how the backend stores paths.  Use
/// [`crate::OramBuilder`] to construct instances:
///
/// ```
/// use freecursive::{Oram, OramBuilder, SchemePoint};
///
/// # fn main() -> Result<(), freecursive::FreecursiveError> {
/// // The full design: PLB + compressed PosMap + PMMAC.
/// let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
///     .num_blocks(1 << 12)
///     .build_freecursive()?;
/// oram.write(42, &vec![7u8; 64])?;
/// assert_eq!(oram.read(42)?, vec![7u8; 64]);
/// assert!(oram.stats().macs_verified > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FreecursiveOram<B: OramBackend = PathOramBackend> {
    config: FreecursiveConfig,
    rec: RecursionAddressing,
    backend: B,
    plb: Plb<PlbPayload>,
    onchip: OnChipPosMap,
    prf: AesPrf,
    mac_key: MacKey,
    rng: StdRng,
    stats: FrontendStats,
    /// Leaf level L of the unified tree.
    leaf_level: u32,
    /// Scratch: payloads fetched from the backend land here (capacity reused
    /// across requests, so the fetch path does not allocate).  Its length
    /// after a fetch is the backend payload size: block bytes plus the MAC
    /// field when PMMAC is on.
    payload_buf: Vec<u8>,
    /// Scratch: sealed (data ‖ MAC) payloads for write-back.
    sealed_buf: Vec<u8>,
    /// Scratch: discarded pre-images of write requests.
    result_buf: Vec<u8>,
    /// An all-zero data block, the write-back image of `read_remove`.
    zero_block: Vec<u8>,
}

/// Controller geometry and key material derived deterministically from a
/// configuration — computed identically by `new` and the resume path, so a
/// snapshot only needs to carry the configuration itself.
struct Derived {
    rec: RecursionAddressing,
    params: OramParams,
    leaf_level: u32,
    enc_key: [u8; 16],
    prf_key: [u8; 16],
    mac_key: [u8; 16],
    payload_bytes: usize,
}

impl Derived {
    fn from_config(config: &FreecursiveConfig) -> Self {
        let x = config.x();
        let rec = RecursionAddressing::new(config.num_blocks, x, config.onchip_entries);
        let payload_bytes = config.block_bytes + if config.pmmac { MAC_BYTES } else { 0 };
        let params = OramParams::new(rec.unified_total_blocks(), payload_bytes, config.z)
            .with_stash_capacity(config.stash_capacity);
        let leaf_level = params.leaf_level();

        let mut enc_key = [0u8; 16];
        enc_key[..8].copy_from_slice(&config.seed.to_le_bytes());
        enc_key[8] = 0xE1;
        let mut prf_key = [0u8; 16];
        prf_key[..8].copy_from_slice(&config.seed.to_le_bytes());
        prf_key[8] = 0x9F;
        let mut mac_key = [0u8; 16];
        mac_key[..8].copy_from_slice(&config.seed.to_le_bytes());
        mac_key[8] = 0x3C;

        Self {
            rec,
            params,
            leaf_level,
            enc_key,
            prf_key,
            mac_key,
            payload_bytes,
        }
    }
}

impl<B: OramBackend> FreecursiveOram<B> {
    /// Builds the controller from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FreecursiveError::Config`] if the configuration fails
    /// [`FreecursiveConfig::validate`], or [`FreecursiveError::Backend`] if
    /// backend construction fails.
    pub fn new(config: FreecursiveConfig) -> Result<Self, FreecursiveError> {
        config.validate()?;
        let derived = Derived::from_config(&config);
        let backend = B::new_backend_with(
            derived.params,
            config.encryption,
            derived.enc_key,
            config.seed,
            &config.storage,
            config.durability,
            0,
        )?;
        Ok(Self::assemble(config, derived, backend))
    }

    /// Everything `new` does after the backend exists; shared with the
    /// resume path, which constructs the backend from a snapshot instead.
    fn assemble(config: FreecursiveConfig, derived: Derived, backend: B) -> Self {
        let Derived {
            rec,
            params: _,
            leaf_level,
            prf_key,
            mac_key,
            payload_bytes,
            ..
        } = derived;
        let plb_blocks = (config.plb_capacity_bytes / config.block_bytes)
            .max(config.plb_associativity.max(1) * 4);
        let plb = Plb::new(
            plb_blocks - plb_blocks % config.plb_associativity.max(1),
            config.plb_associativity.max(1),
        );
        let onchip_kind = if config.pmmac {
            OnChipEntryKind::Counter
        } else {
            OnChipEntryKind::Leaf
        };
        let mut onchip = OnChipPosMap::new(rec.required_onchip_entries(), onchip_kind);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF5EE_D123);
        if !config.pmmac {
            // A deployed ORAM starts with every block mapped to a uniform
            // random leaf; with PMMAC the zero counters already map through
            // the PRF to pseudorandom leaves, but raw leaf entries must be
            // randomised explicitly or every first touch walks path 0.
            for i in 0..onchip.len() as u64 {
                onchip.set(i, rng.gen_range(0..(1u64 << leaf_level)));
            }
        }
        let zero_block = vec![0u8; config.block_bytes];
        Self {
            rng,
            prf: AesPrf::new(prf_key),
            mac_key: MacKey::new(mac_key),
            config,
            rec,
            backend,
            plb,
            onchip,
            stats: FrontendStats::default(),
            leaf_level,
            payload_buf: Vec::with_capacity(payload_bytes),
            sealed_buf: Vec::with_capacity(payload_bytes),
            result_buf: Vec::new(),
            zero_block,
        }
    }

    /// The recursion addressing in use (H, X, per-level block counts).
    pub fn addressing(&self) -> &RecursionAddressing {
        &self.rec
    }

    /// The unified-tree backend (read-only view).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the unified-tree backend — the active adversary's
    /// handle on untrusted memory (see [`crate::adversary`]).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &FreecursiveConfig {
        &self.config
    }

    /// The number of ORAM levels in the recursion (H).
    pub fn num_levels(&self) -> u32 {
        self.rec.num_levels()
    }

    /// Current PLB occupancy in blocks (diagnostics).
    pub fn plb_occupancy(&self) -> usize {
        self.plb.len()
    }

    // ------------------------------------------------------------------
    // Snapshot persistence
    // ------------------------------------------------------------------

    fn put_config(out: &mut Vec<u8>, config: &FreecursiveConfig) {
        use path_oram::snapshot::{put_opt_u64, put_u64};
        let FreecursiveConfig {
            num_blocks,
            block_bytes,
            z,
            posmap_format,
            x_override,
            pmmac,
            plb_capacity_bytes,
            plb_associativity,
            onchip_entries,
            encryption,
            stash_capacity,
            seed,
            storage,
            durability,
        } = config;
        put_u64(out, *num_blocks);
        put_u64(out, *block_bytes as u64);
        put_u64(out, *z as u64);
        crate::persist::put_posmap_format(out, *posmap_format);
        put_opt_u64(out, *x_override);
        path_oram::snapshot::put_bool(out, *pmmac);
        put_u64(out, *plb_capacity_bytes as u64);
        put_u64(out, *plb_associativity as u64);
        put_u64(out, *onchip_entries);
        crate::persist::put_encryption(out, *encryption);
        put_u64(out, *stash_capacity as u64);
        put_u64(out, *seed);
        storage.save(out);
        durability.save(out);
    }

    fn get_config(
        r: &mut path_oram::snapshot::SnapReader<'_>,
        dir: &std::path::Path,
    ) -> Result<FreecursiveConfig, OramError> {
        Ok(FreecursiveConfig {
            num_blocks: r.u64()?,
            block_bytes: r.u64()? as usize,
            z: r.u64()? as usize,
            posmap_format: crate::persist::get_posmap_format(r)?,
            x_override: r.opt_u64()?,
            pmmac: r.bool()?,
            plb_capacity_bytes: r.u64()? as usize,
            plb_associativity: r.u64()? as usize,
            onchip_entries: r.u64()?,
            encryption: crate::persist::get_encryption(r)?,
            stash_capacity: r.u64()? as usize,
            seed: r.u64()?,
            storage: path_oram::StorageKind::load(r, dir)?,
            durability: path_oram::Durability::load(r)?,
        })
    }

    /// Persists the whole instance into `dir`: configuration, on-chip
    /// PosMap, PLB contents (with LRU order), RNG stream position,
    /// statistics and the backend's controller state in a digest-sealed
    /// `oram.state`, plus the unified tree's files written by the backend's
    /// store.  Resume with [`crate::OramBuilder::resume`] (or
    /// [`FreecursiveOram::resume`] for a concrete backend type); the
    /// resumed instance's responses are byte-identical to an uninterrupted
    /// run's.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Backend`] wrapping storage/snapshot failures.
    pub fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        use path_oram::snapshot::{put_bytes, put_opt_u64, put_u64};
        std::fs::create_dir_all(dir).map_err(|e| crate::persist::dir_error(dir, e))?;
        let mut payload = Vec::new();
        Self::put_config(&mut payload, &self.config);
        crate::persist::put_rng_state(&mut payload, self.rng.state());
        put_u64(&mut payload, self.onchip.entries().len() as u64);
        for &entry in self.onchip.entries() {
            put_u64(&mut payload, entry);
        }
        let num_sets = self.plb.iter_sets().count();
        put_u64(&mut payload, num_sets as u64);
        for set in self.plb.iter_sets() {
            put_u64(&mut payload, set.len() as u64);
            for entry in set {
                put_u64(&mut payload, entry.unified_addr);
                put_u64(&mut payload, entry.leaf);
                put_opt_u64(&mut payload, entry.payload.counter);
                put_bytes(
                    &mut payload,
                    &entry.payload.block.to_bytes(self.config.block_bytes),
                );
            }
        }
        crate::persist::put_plb_stats(&mut payload, &self.plb.stats());
        crate::persist::put_frontend_stats(&mut payload, &self.stats);
        let mut backend_state = Vec::new();
        self.backend.save_state(&mut backend_state)?;
        put_bytes(&mut payload, &backend_state);
        path_oram::snapshot::write_state_file(
            &crate::persist::state_path(dir),
            crate::persist::KIND_FREECURSIVE,
            &payload,
        )?;
        self.backend.persist_tree(dir, 0)?;
        Ok(())
    }

    /// Rebuilds an instance from a snapshot directory written by
    /// [`FreecursiveOram::persist`].
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Integrity`] if the state file fails its digest
    /// check, [`FreecursiveError::Backend`] wrapping
    /// [`OramError::Snapshot`]/[`OramError::Storage`] for version
    /// mismatches, truncation, or I/O failures.
    pub fn resume(dir: &std::path::Path) -> Result<Self, FreecursiveError> {
        use path_oram::snapshot::SnapReader;
        let (kind, payload) =
            path_oram::snapshot::read_state_file(&crate::persist::state_path(dir))?;
        if kind != crate::persist::KIND_FREECURSIVE {
            return Err(crate::persist::wrong_kind("Freecursive ORAM", kind).into());
        }
        let mut r = SnapReader::new(&payload);
        let config = Self::get_config(&mut r, dir)?;
        config.validate()?;
        let rng_state = crate::persist::get_rng_state(&mut r)?;
        let onchip_count = r.len(r.remaining() / 8)?;
        let mut onchip_entries = Vec::with_capacity(onchip_count);
        for _ in 0..onchip_count {
            onchip_entries.push(r.u64()?);
        }
        let num_sets = r.len(r.remaining())?;
        let x = config.x();
        let mut sets: Vec<Vec<PlbEntry<PlbPayload>>> = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            let set_len = r.len(r.remaining())?;
            let mut set = Vec::with_capacity(set_len);
            for _ in 0..set_len {
                let unified_addr = r.u64()?;
                let leaf = r.u64()?;
                let counter = r.opt_u64()?;
                let block_bytes = r.bytes()?;
                let block = PosMapBlockPayload::from_bytes(block_bytes, config.posmap_format, x);
                set.push(PlbEntry {
                    unified_addr,
                    leaf,
                    payload: PlbPayload { block, counter },
                });
            }
            sets.push(set);
        }
        let plb_stats = crate::persist::get_plb_stats(&mut r)?;
        let stats = crate::persist::get_frontend_stats(&mut r)?;
        let backend_state = r.bytes()?.to_vec();
        r.finish()?;

        let derived = Derived::from_config(&config);
        let backend = B::resume_backend(
            derived.params,
            config.encryption,
            derived.enc_key,
            config.seed,
            &config.storage,
            config.durability,
            dir,
            0,
            &backend_state,
        )?;
        let mut oram = Self::assemble(config, derived, backend);
        oram.rng = StdRng::from_state(rng_state);
        if !oram.onchip.load_entries(&onchip_entries) {
            return Err(OramError::Snapshot {
                detail: "on-chip posmap size does not match the configuration".into(),
            }
            .into());
        }
        if num_sets != oram.plb.iter_sets().count() {
            return Err(OramError::Snapshot {
                detail: "plb set count does not match the configuration".into(),
            }
            .into());
        }
        // Re-inserting set by set in saved order restores residency and LRU
        // state exactly (the index function is unchanged); an eviction here
        // would mean the snapshot disagrees with the configured geometry.
        for set in sets {
            for entry in set {
                if oram.plb.insert(entry).is_some() {
                    return Err(OramError::Snapshot {
                        detail: "plb snapshot overflows the configured associativity".into(),
                    }
                    .into());
                }
            }
        }
        oram.plb.set_stats(plb_stats);
        oram.stats = stats;
        Ok(oram)
    }

    // ------------------------------------------------------------------
    // PMMAC helpers
    // ------------------------------------------------------------------

    /// Verifies a fetched backend payload in place: with PMMAC, the MAC
    /// trailer is checked against the expected counter (the data portion is
    /// `payload[..block_bytes]`).  A counter of zero means the block has
    /// never been written back by this controller, so the backend's implicit
    /// zero block is accepted without verification (a real deployment writes
    /// MACs during initialisation instead).
    ///
    /// Takes its fields individually (instead of `&mut self`) so callers can
    /// keep `self.payload_buf` borrowed across the call — this is what lets
    /// the fetch path run without copying the payload out first.
    // lint: ct-scope, no-alloc
    fn verify_payload(
        config: &FreecursiveConfig,
        mac_key: &MacKey,
        stats: &mut FrontendStats,
        unified_addr: u64,
        counter: Option<u64>,
        payload: &[u8],
    ) -> Result<(), OramError> {
        if !config.pmmac {
            return Ok(());
        }
        let data = &payload[..config.block_bytes];
        let mac_bytes = &payload[config.block_bytes..];
        let counter = counter.expect("pmmac requires counters");
        stats.macs_verified += 1;
        if counter == 0 {
            return Ok(());
        }
        let mut mac = [0u8; MAC_BYTES];
        mac.copy_from_slice(mac_bytes);
        if !mac_key.verify(counter, unified_addr, data, &oram_crypto::mac::Mac(mac)) {
            stats.integrity_violations += 1;
            return Err(OramError::IntegrityViolation { addr: unified_addr });
        }
        Ok(())
    }

    /// Assembles the backend payload for a write-back into `out` (cleared
    /// first): data plus (if PMMAC) the MAC under the block's new counter.
    /// Field-wise for the same reason as [`Self::verify_payload`].
    fn seal_payload(
        config: &FreecursiveConfig,
        mac_key: &MacKey,
        stats: &mut FrontendStats,
        unified_addr: u64,
        counter: Option<u64>,
        data: &[u8],
        out: &mut Vec<u8>,
    ) {
        out.clear();
        // lint: allow(no-alloc, writes into the reused sealed scratch whose capacity persists across requests)
        out.extend_from_slice(data);
        if !config.pmmac {
            return;
        }
        let counter = counter.expect("pmmac requires counters");
        let mac = mac_key.compute(counter, unified_addr, data);
        stats.macs_computed += 1;
        // lint: allow(no-alloc, the MAC trailer fits the scratch capacity reserved at construction)
        out.extend_from_slice(mac.as_bytes());
    }

    fn count_path_access(&mut self, is_posmap: bool) {
        let bytes = self.backend.params().access_bytes();
        // A Merkle-tree scheme ([25]) hashes every block on the path twice per
        // access: once to check the read and once to update the hashes on the
        // write-back (§6.3); PMMAC hashes the block of interest twice.
        let merkle = 2 * u64::from(self.backend.params().levels()) * self.backend.params().z as u64;
        self.stats.merkle_equivalent_hashes += merkle;
        if is_posmap {
            self.stats.posmap_backend_accesses += 1;
            self.stats.posmap_bytes_moved += bytes;
        } else {
            self.stats.data_backend_accesses += 1;
            self.stats.data_bytes_moved += bytes;
        }
    }

    // ------------------------------------------------------------------
    // Recursion walk
    // ------------------------------------------------------------------

    /// Resolves the child block at recursion level `level` covering `a0` from
    /// its parent (the on-chip PosMap for the top level, a PLB-resident
    /// PosMap block otherwise), advancing the parent entry so the child is
    /// remapped.
    fn resolve_child(&mut self, level: u32, a0: u64) -> ResolvedChild {
        let child_unified = self.rec.unified_addr(level, a0);
        let h = self.rec.num_levels();
        if level == h - 1 {
            // Parent is the on-chip PosMap.
            let idx = self.rec.posmap_block_addr(h - 1, a0);
            if self.config.pmmac {
                let current_counter = self.onchip.get(idx);
                let new_counter = self.onchip.increment(idx);
                // One batched PRF call derives both the fetch leaf and the
                // remap leaf.
                let (current_leaf, new_leaf) = self.prf.leaf_pair_for(
                    child_unified,
                    current_counter,
                    new_counter,
                    self.leaf_level,
                );
                ResolvedChild {
                    current_leaf,
                    current_counter: Some(current_counter),
                    advance: AdvanceResult {
                        new_leaf,
                        new_counter: Some(new_counter),
                        group_remap: None,
                    },
                }
            } else {
                let current_leaf = self.onchip.get(idx);
                let new_leaf = self.rng.gen_range(0..(1u64 << self.leaf_level));
                self.onchip.set(idx, new_leaf);
                ResolvedChild {
                    current_leaf,
                    current_counter: None,
                    advance: AdvanceResult {
                        new_leaf,
                        new_counter: None,
                        group_remap: None,
                    },
                }
            }
        } else {
            // Parent is the PosMap block at level + 1, which is guaranteed to
            // be PLB-resident at this point of the walk.
            let parent_unified = self.rec.unified_addr(level + 1, a0);
            let entry_index = self.rec.entry_index(level + 1, a0);
            // lint: allow(no-alloc, AesPrf is a fixed round-key array; the clone is a stack copy)
            let prf = self.prf.clone();
            let leaf_level = self.leaf_level;
            let entry = self
                .plb
                .peek_mut(parent_unified)
                .expect("parent PosMap block must be PLB-resident during the walk");
            let current_counter = entry.payload.block.child_counter(entry_index);
            let current_leaf =
                entry
                    .payload
                    .block
                    .child_leaf(entry_index, child_unified, &prf, leaf_level);
            let advance = entry.payload.block.advance_entry(
                entry_index,
                child_unified,
                &prf,
                leaf_level,
                &mut self.rng,
            );
            ResolvedChild {
                current_leaf,
                current_counter,
                advance,
            }
        }
    }

    /// Carries out a group remap (§5.2.2): every sibling of the child at
    /// `level` covered by the same parent PosMap block is remapped to the
    /// path given by the new group counter.  The in-flight child
    /// (`skip_entry`) is excluded — its remap happens through the access that
    /// triggered the overflow.
    fn group_remap(
        &mut self,
        level: u32,
        a0: u64,
        skip_entry: usize,
        info: &GroupRemapInfo,
    ) -> Result<(), OramError> {
        self.stats.group_remaps += 1;
        let parent_index = self.rec.posmap_block_addr(level + 1, a0);
        let x = self.rec.x();
        let level_blocks = self.rec.blocks_at_level(level);
        for j in 0..x as usize {
            if j == skip_entry {
                continue;
            }
            let sibling_index = parent_index * x + j as u64;
            if sibling_index >= level_blocks {
                continue;
            }
            let sibling_unified = tag_address(level, sibling_index);
            let old_counter = info.old_counters[j];
            let new_counter = info.new_counter;
            // A sibling PosMap block may currently live in the PLB; its
            // stored leaf/counter must be updated in place instead of going
            // through the Backend (and only the new leaf is needed).
            if level >= 1 {
                if let Some(entry) = self.plb.peek_mut(sibling_unified) {
                    entry.leaf = self
                        .prf
                        .leaf_for(sibling_unified, new_counter, self.leaf_level);
                    entry.payload.counter = Some(new_counter);
                    continue;
                }
            }
            // Backend round-trip: derive the fetch leaf and the remap leaf
            // in one batched PRF call.
            let (old_leaf, new_leaf) =
                self.prf
                    .leaf_pair_for(sibling_unified, old_counter, new_counter, self.leaf_level);
            let fetched = self.backend.access_into(
                AccessOp::ReadRmv,
                sibling_unified,
                old_leaf,
                0,
                None,
                &mut self.payload_buf,
            )?;
            assert!(fetched, "backend readrmv returned no data");
            self.stats.group_remap_accesses += 1;
            self.stats.posmap_bytes_moved += self.backend.params().access_bytes();
            self.stats.merkle_equivalent_hashes +=
                2 * u64::from(self.backend.params().levels()) * self.backend.params().z as u64;
            Self::verify_payload(
                &self.config,
                &self.mac_key,
                &mut self.stats,
                sibling_unified,
                Some(old_counter),
                &self.payload_buf,
            )?;
            Self::seal_payload(
                &self.config,
                &self.mac_key,
                &mut self.stats,
                sibling_unified,
                Some(new_counter),
                &self.payload_buf[..self.config.block_bytes],
                &mut self.sealed_buf,
            );
            self.backend.access(
                AccessOp::Append,
                sibling_unified,
                0,
                new_leaf,
                Some(&self.sealed_buf),
            )?;
            self.stats.appends += 1;
        }
        Ok(())
    }

    /// Parses a PosMap block fetched from the Backend.  A never-written block
    /// (all zero bytes) is given freshly randomised leaves when the format
    /// stores raw leaves, emulating the random initial position map a
    /// deployed ORAM starts from; counter-based formats need no special
    /// handling because zero counters already PRF to pseudorandom leaves.
    fn parse_posmap_block(&mut self, data: &[u8]) -> PosMapBlockPayload {
        let x = self.rec.x();
        if matches!(
            self.config.posmap_format,
            crate::config::PosMapFormat::UncompressedLeaves
        ) && data.iter().all(|&b| b == 0)
        {
            let mut block = PosMapBlockPayload::new_zeroed(self.config.posmap_format, x);
            if let PosMapBlockPayload::Leaves(leaves) = &mut block {
                for j in 0..x as usize {
                    leaves.set_leaf(j, self.rng.gen_range(0..(1u64 << self.leaf_level)));
                }
            }
            return block;
        }
        PosMapBlockPayload::from_bytes(data, self.config.posmap_format, x)
    }

    /// Appends a PosMap block evicted from the PLB back into the unified
    /// tree (§4.2.4 step 2).
    fn append_evicted(&mut self, victim: PlbEntry<PlbPayload>) -> Result<(), OramError> {
        let data = victim.payload.block.to_bytes(self.config.block_bytes);
        Self::seal_payload(
            &self.config,
            &self.mac_key,
            &mut self.stats,
            victim.unified_addr,
            victim.payload.counter,
            &data,
            &mut self.sealed_buf,
        );
        self.backend.access(
            AccessOp::Append,
            victim.unified_addr,
            0,
            victim.leaf,
            Some(&self.sealed_buf),
        )?;
        self.stats.appends += 1;
        Ok(())
    }

    /// Performs one full ORAM access for data block `a0` (§4.2.4), writing
    /// the block's previous contents into `out` (cleared first; capacity is
    /// reused by callers that pass a long-lived buffer).
    ///
    /// `remove` implements the frontend-level read-remove: the old contents
    /// are returned and a zero block is written back under a fresh counter,
    /// so the access is observationally identical to a read (same path
    /// touched, same bytes moved) and PMMAC state stays consistent.
    fn access_inner(
        &mut self,
        a0: u64,
        write_data: Option<&[u8]>,
        remove: bool,
        out: &mut Vec<u8>,
    ) -> Result<(), OramError> {
        out.clear();
        // lint: allow(secret-branch, range validation of caller input; a malformed address aborts visibly before any memory touch)
        if a0 >= self.config.num_blocks {
            return Err(OramError::AddressOutOfRange {
                addr: a0,
                capacity: self.config.num_blocks,
            });
        }
        if let Some(d) = write_data {
            if d.len() != self.config.block_bytes {
                return Err(OramError::BlockSizeMismatch {
                    expected: self.config.block_bytes,
                    actual: d.len(),
                });
            }
        }
        self.stats.frontend_requests += 1;
        let h = self.rec.num_levels();

        // Step 1: PLB lookup loop — find the lowest level whose *parent*
        // PosMap block is already on chip.
        let mut start_level = h - 1;
        for i in 0..h - 1 {
            let parent_unified = self.rec.unified_addr(i + 1, a0);
            // lint: allow(secret-branch, the PLB lookup loop's termination level is the hit depth revealed by design per section 4.1.2)
            if self.plb.lookup(parent_unified).is_some() {
                start_level = i;
                break;
            }
        }
        self.stats.plb = self.plb.stats();

        // Steps 2 and 3: walk down from `start_level`, fetching PosMap blocks
        // into the PLB, then access the data block itself.
        for level in (0..=start_level).rev() {
            let child_unified = self.rec.unified_addr(level, a0);
            let resolved = self.resolve_child(level, a0);
            if let Some(remap) = &resolved.advance.group_remap {
                let skip = self.rec.entry_index(level + 1, a0);
                self.group_remap(level, a0, skip, remap)?;
            }

            if level >= 1 {
                // PosMap block fetch (readrmv) and PLB refill.
                let fetched = self.backend.access_into(
                    AccessOp::ReadRmv,
                    child_unified,
                    resolved.current_leaf,
                    0,
                    None,
                    &mut self.payload_buf,
                )?;
                assert!(fetched, "backend readrmv returned no data");
                self.count_path_access(true);
                Self::verify_payload(
                    &self.config,
                    &self.mac_key,
                    &mut self.stats,
                    child_unified,
                    resolved.current_counter,
                    &self.payload_buf,
                )?;
                let payload = std::mem::take(&mut self.payload_buf);
                let block = self.parse_posmap_block(&payload[..self.config.block_bytes]);
                self.payload_buf = payload;
                let entry = PlbEntry {
                    unified_addr: child_unified,
                    leaf: resolved.advance.new_leaf,
                    payload: PlbPayload {
                        block,
                        counter: resolved.advance.new_counter,
                    },
                };
                // lint: allow(no-alloc, PLB way lists are bounded by the associativity and reuse their capacity after warm-up)
                if let Some(victim) = self.plb.insert(entry) {
                    self.append_evicted(victim)?;
                }
                self.stats.plb = self.plb.stats();
            } else {
                // Data block access.
                let fetched = self.backend.access_into(
                    AccessOp::ReadRmv,
                    child_unified,
                    resolved.current_leaf,
                    0,
                    None,
                    &mut self.payload_buf,
                )?;
                assert!(fetched, "backend readrmv returned no data");
                self.count_path_access(false);
                Self::verify_payload(
                    &self.config,
                    &self.mac_key,
                    &mut self.stats,
                    child_unified,
                    resolved.current_counter,
                    &self.payload_buf,
                )?;
                // lint: allow(no-alloc, grows the caller's buffer to block_bytes once; steady state reuses its capacity)
                out.extend_from_slice(&self.payload_buf[..self.config.block_bytes]);
                let write_back: &[u8] = if remove {
                    &self.zero_block
                } else if let Some(new_data) = write_data {
                    new_data
                } else {
                    &self.payload_buf[..self.config.block_bytes]
                };
                Self::seal_payload(
                    &self.config,
                    &self.mac_key,
                    &mut self.stats,
                    child_unified,
                    resolved.advance.new_counter,
                    write_back,
                    &mut self.sealed_buf,
                );
                self.backend.access(
                    AccessOp::Append,
                    child_unified,
                    0,
                    resolved.advance.new_leaf,
                    Some(&self.sealed_buf),
                )?;
                self.stats.appends += 1;
                // lint: allow(no-alloc, diagnostics snapshot of flat counters; copied once per request after the path work)
                self.stats.backend = self.backend.stats().clone();
                return Ok(());
            }
        }
        unreachable!("the walk always terminates with the data-level access")
    }
    // lint: end

    /// Dispatches one borrowed request — the single implementation behind
    /// both [`Oram::access`] and [`Oram::access_batch`], so the two paths
    /// cannot diverge.
    fn access_ref(&mut self, request: &Request) -> Result<Response, FreecursiveError> {
        let response = match request {
            Request::Read { addr } => {
                let mut data = Vec::new();
                self.access_inner(*addr, None, false, &mut data)?;
                Response {
                    addr: *addr,
                    data: Some(data),
                }
            }
            Request::Write { addr, data } => {
                let mut discard = std::mem::take(&mut self.result_buf);
                let result = self.access_inner(*addr, Some(data), false, &mut discard);
                self.result_buf = discard;
                result?;
                Response {
                    addr: *addr,
                    data: None,
                }
            }
            Request::ReadRemove { addr } => {
                let mut data = Vec::new();
                self.access_inner(*addr, None, true, &mut data)?;
                Response {
                    addr: *addr,
                    data: Some(data),
                }
            }
        };
        Ok(response)
    }
}

impl<B: OramBackend> Oram for FreecursiveOram<B> {
    fn block_bytes(&self) -> usize {
        self.config.block_bytes
    }

    fn num_blocks(&self) -> u64 {
        self.config.num_blocks
    }

    fn access(&mut self, request: Request) -> Result<Response, FreecursiveError> {
        self.access_ref(&request)
    }

    fn access_batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, FreecursiveError> {
        // The batched path executes the same walk as `access` but without
        // per-request `Request` cloning: write payloads are borrowed straight
        // out of the batch.  Contents are byte-identical to issuing the
        // requests one by one (pinned down by the integration tests).
        //
        // The whole batch runs inside one backend batch window, which lets
        // the backend dedupe the upper tree levels shared by the batch's
        // paths — read and sealed once per batch instead of once per access
        // (a no-op over the in-memory arena).  The window is bracketed
        // entirely inside this call, so snapshots never observe an open
        // window.
        self.backend.begin_batch();
        let result: Result<Vec<Response>, FreecursiveError> = requests
            .iter()
            .enumerate()
            .map(|(index, request)| {
                self.access_ref(request)
                    .map_err(|e| e.with_batch_index(index))
            })
            .collect();
        // Close the window even when an access failed: earlier successful
        // accesses in the batch have deferred writebacks that still must
        // reach the store.  An access error stays the primary failure.
        let flushed = self.backend.end_batch();
        let responses = result?;
        flushed?;
        Ok(responses)
    }

    fn access_batch_owned(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, FreecursiveError> {
        // The by-ref override already borrows write payloads without
        // cloning, so the owned path needs no separate implementation.
        self.access_batch(&requests)
    }

    fn read(&mut self, addr: u64) -> Result<Vec<u8>, FreecursiveError> {
        let mut out = Vec::new();
        self.access_inner(addr, None, false, &mut out)?;
        Ok(out)
    }

    fn read_into(&mut self, addr: u64, out: &mut Vec<u8>) -> Result<(), FreecursiveError> {
        // Zero-copy override: the pre-image lands straight in the caller's
        // buffer instead of a per-request allocation.
        Ok(self.access_inner(addr, None, false, out)?)
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), FreecursiveError> {
        let mut discard = std::mem::take(&mut self.result_buf);
        let result = self.access_inner(addr, Some(data), false, &mut discard);
        self.result_buf = discard;
        Ok(result?)
    }

    fn read_remove(&mut self, addr: u64) -> Result<Vec<u8>, FreecursiveError> {
        let mut out = Vec::new();
        self.access_inner(addr, None, true, &mut out)?;
        Ok(out)
    }

    fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FrontendStats::default();
        self.plb.reset_stats();
        self.backend.reset_stats();
    }

    fn persist(&self, dir: &std::path::Path) -> Result<(), FreecursiveError> {
        FreecursiveOram::persist(self, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OramBuilder;
    use crate::config::PosMapFormat;
    use crate::scheme::SchemePoint;

    fn point(scheme: SchemePoint, n: u64, block: usize) -> OramBuilder {
        OramBuilder::for_scheme(scheme)
            .num_blocks(n)
            .block_bytes(block)
    }

    fn all_design_points(n: u64, block: usize) -> Vec<(&'static str, OramBuilder)> {
        [
            SchemePoint::PX16,
            SchemePoint::PcX32,
            SchemePoint::PiX8,
            SchemePoint::PicX32,
        ]
        .into_iter()
        .map(|s| (s.label(), point(s, n, block)))
        .collect()
    }

    #[test]
    fn write_read_roundtrip_for_every_design_point() {
        for (name, builder) in all_design_points(1 << 12, 64) {
            let mut o = builder.onchip_entries(64).build_freecursive().unwrap();
            for addr in (0..200u64).step_by(13) {
                let data = vec![(addr % 251) as u8; 64];
                o.write(addr, &data).unwrap();
            }
            for addr in (0..200u64).step_by(13) {
                assert_eq!(
                    o.read(addr).unwrap(),
                    vec![(addr % 251) as u8; 64],
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        for (name, builder) in all_design_points(1 << 10, 64) {
            let mut o = builder.onchip_entries(32).build_freecursive().unwrap();
            assert_eq!(o.read(17).unwrap(), vec![0u8; 64], "{name}");
        }
    }

    #[test]
    fn read_remove_resets_the_block_and_stays_verifiable() {
        for (name, builder) in all_design_points(1 << 10, 64) {
            let mut o = builder.onchip_entries(32).build_freecursive().unwrap();
            o.write(9, &[0xEE; 64]).unwrap();
            assert_eq!(o.read_remove(9).unwrap(), vec![0xEE; 64], "{name}");
            // The block now reads as zero, and with PMMAC on the zero block
            // still verifies (it was re-MACed under a fresh counter).
            assert_eq!(o.read(9).unwrap(), vec![0u8; 64], "{name}");
            assert_eq!(o.stats().integrity_violations, 0, "{name}");
        }
    }

    #[test]
    fn sequential_locality_skips_most_posmap_accesses() {
        // A unit-stride scan touches the same PosMap blocks repeatedly, so the
        // PLB should make the number of PosMap backend accesses per request
        // far smaller than H - 1 (this is the whole point of the PLB, §4).
        let mut o = point(SchemePoint::PcX32, 1 << 14, 64)
            .onchip_entries(32)
            .build_freecursive()
            .unwrap();
        let h = f64::from(o.num_levels());
        for addr in 0..2000u64 {
            o.read(addr).unwrap();
        }
        let per_request =
            o.stats().posmap_backend_accesses as f64 / o.stats().frontend_requests as f64;
        assert!(
            per_request < 0.4,
            "expected ≪ {} posmap accesses per request, got {per_request}",
            h - 1.0
        );
    }

    #[test]
    fn random_access_pattern_needs_more_posmap_accesses_than_sequential() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let make = || {
            point(SchemePoint::PcX32, 1 << 14, 64)
                .onchip_entries(32)
                .build_freecursive()
                .unwrap()
        };
        let mut seq = make();
        for addr in 0..1500u64 {
            seq.read(addr).unwrap();
        }
        let mut rnd = make();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1500u64 {
            rnd.read(rng.gen_range(0..1 << 14)).unwrap();
        }
        assert!(
            rnd.stats().posmap_backend_accesses > seq.stats().posmap_backend_accesses,
            "random {} vs sequential {}",
            rnd.stats().posmap_backend_accesses,
            seq.stats().posmap_backend_accesses
        );
    }

    #[test]
    fn pmmac_counts_hashes_only_for_blocks_of_interest() {
        let mut o = point(SchemePoint::PicX32, 1 << 12, 64)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        for addr in 0..300u64 {
            o.read(addr % 64).unwrap();
        }
        let stats = o.stats();
        // One verification and one computation per backend path access plus
        // appends — far fewer than the Merkle equivalent.
        let reduction = stats.hash_reduction_factor().unwrap();
        assert!(
            reduction > 10.0,
            "hash reduction {reduction} should be large (paper: ≥68x at L=16)"
        );
    }

    #[test]
    fn mixed_read_write_consistency_with_pmmac() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut o = point(SchemePoint::PicX32, 1 << 10, 32)
            .onchip_entries(32)
            .build_freecursive()
            .unwrap();
        let n = 1u64 << 10;
        let mut reference: Vec<Option<Vec<u8>>> = vec![None; n as usize];
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..2500u32 {
            let addr = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                let mut data = vec![0u8; 32];
                rng.fill(&mut data[..]);
                data[0] = i as u8;
                o.write(addr, &data).unwrap();
                reference[addr as usize] = Some(data);
            } else {
                let got = o.read(addr).unwrap();
                match &reference[addr as usize] {
                    Some(expected) => assert_eq!(&got, expected, "addr {addr} access {i}"),
                    None => assert_eq!(got, vec![0u8; 32]),
                }
            }
        }
        assert_eq!(o.stats().integrity_violations, 0);
    }

    #[test]
    fn group_remap_triggers_with_tiny_individual_counters() {
        // Shrink beta so individual counters overflow quickly and the §5.2.2
        // machinery gets exercised, then verify data is still intact.
        let mut o = point(SchemePoint::PicX32, 1 << 10, 64)
            .posmap_format(PosMapFormat::Compressed { alpha: 32, beta: 3 })
            .onchip_entries(32)
            .build_freecursive()
            .unwrap();
        o.write(5, &[0x55; 64]).unwrap();
        // Hammer the same block so its individual counter overflows repeatedly.
        for _ in 0..40 {
            assert_eq!(o.read(5).unwrap(), vec![0x55; 64]);
        }
        assert!(
            o.stats().group_remaps > 0,
            "expected at least one group remap"
        );
        assert!(o.stats().group_remap_accesses > 0);
        // Other blocks in the same group survived their forced remaps.
        assert_eq!(o.read(6).unwrap(), vec![0u8; 64]);
        assert_eq!(o.stats().integrity_violations, 0);
    }

    #[test]
    fn out_of_range_and_wrong_size_are_rejected() {
        let mut o = point(SchemePoint::PcX32, 1 << 10, 64)
            .build_freecursive()
            .unwrap();
        assert!(matches!(
            o.read(1 << 10),
            Err(FreecursiveError::Backend(
                OramError::AddressOutOfRange { .. }
            ))
        ));
        assert!(matches!(
            o.write(0, &[0u8; 63]),
            Err(FreecursiveError::Backend(
                OramError::BlockSizeMismatch { .. }
            ))
        ));
    }

    #[test]
    fn stats_distinguish_posmap_and_data_traffic() {
        let mut o = point(SchemePoint::PcX32, 1 << 14, 64)
            .onchip_entries(16)
            .build_freecursive()
            .unwrap();
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500u32 {
            o.read(rng.gen_range(0..1 << 14)).unwrap();
        }
        let s = o.stats();
        assert_eq!(s.data_backend_accesses, 500);
        assert!(s.posmap_backend_accesses > 0);
        assert!(s.posmap_bytes_moved > 0);
        assert!(s.data_bytes_moved > 0);
        assert_eq!(
            s.total_bytes_moved(),
            s.total_backend_accesses() * o.backend().params().access_bytes()
        );
    }

    #[test]
    fn raw_leaf_format_spreads_first_touches_across_the_tree() {
        // Regression test: with zero-initialised PosMap state every first
        // touch used to walk path 0, overloading it and growing the stash
        // without bound.  The frontend now emulates a randomly initialised
        // position map, so a first-touch-heavy workload keeps the stash small.
        let mut o = point(SchemePoint::PX16, 1 << 12, 64)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..2500u32 {
            let addr = rng.gen_range(0..1 << 12);
            if rng.gen_bool(0.4) {
                o.write(addr, &[3u8; 64]).unwrap();
            } else {
                o.read(addr).unwrap();
            }
        }
        let max = o.backend().stats().max_stash_occupancy;
        assert!(max < 50, "stash should stay far below capacity, got {max}");
    }

    #[test]
    fn stash_occupancy_stays_bounded_under_load() {
        let mut o = point(SchemePoint::PcX32, 1 << 12, 32)
            .onchip_entries(64)
            .build_freecursive()
            .unwrap();
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3000u32 {
            let addr = rng.gen_range(0..1 << 12);
            if rng.gen_bool(0.3) {
                o.write(addr, &[1u8; 32]).unwrap();
            } else {
                o.read(addr).unwrap();
            }
        }
        assert!(
            o.backend().stats().max_stash_occupancy <= o.backend().params().stash_capacity,
            "max stash occupancy {} within capacity",
            o.backend().stats().max_stash_occupancy
        );
    }

    #[test]
    fn access_batch_matches_sequential_semantics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let make = || {
            point(SchemePoint::PicX32, 1 << 10, 32)
                .onchip_entries(32)
                .build_freecursive()
                .unwrap()
        };
        let mut batched = make();
        let mut sequential = make();
        let mut rng = StdRng::seed_from_u64(21);
        let requests: Vec<Request> = (0..300)
            .map(|i| {
                let addr = rng.gen_range(0u64..1 << 10);
                match i % 3 {
                    0 => Request::Read { addr },
                    1 => Request::Write {
                        addr,
                        data: vec![(i % 251) as u8; 32],
                    },
                    _ => Request::ReadRemove { addr },
                }
            })
            .collect();
        let batch_responses = batched.access_batch(&requests).unwrap();
        let seq_responses: Vec<Response> = requests
            .iter()
            .map(|r| sequential.access(r.clone()).unwrap())
            .collect();
        assert_eq!(batch_responses, seq_responses);
        for addr in 0..(1u64 << 10) {
            assert_eq!(batched.read(addr).unwrap(), sequential.read(addr).unwrap());
        }
    }
}
