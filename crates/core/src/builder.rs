//! The single construction path for every evaluation design point.
//!
//! [`OramBuilder`] replaces the old ad-hoc constructors
//! (`FreecursiveConfig::pic_x32`, `RecursiveOramConfig::r_x8`, …) with one
//! entry point keyed by [`SchemePoint`]:
//!
//! ```
//! use freecursive::{Oram, OramBuilder, SchemePoint};
//!
//! # fn main() -> Result<(), freecursive::FreecursiveError> {
//! // Any design point, as a trait object:
//! let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
//!     .num_blocks(1 << 12)
//!     .build()?;
//! oram.write(7, &vec![0xAB; 64])?;
//! assert_eq!(oram.read(7)?, vec![0xAB; 64]);
//! # Ok(())
//! # }
//! ```
//!
//! Every knob of the underlying configurations is exposed as an override;
//! unset knobs fall back to the paper's defaults for the chosen scheme
//! (including the per-scheme block size: 64 B for the main table, 128 B for
//! `PC_X64`, 4 KB for Phantom).

use crate::config::{FreecursiveConfig, PosMapFormat};
use crate::error::{ConfigError, FreecursiveError};
use crate::frontend::FreecursiveOram;
use crate::insecure::InsecureOram;
use crate::recursive::{RecursiveOram, RecursiveOramConfig};
use crate::scheme::SchemePoint;
use crate::service::OramService;
use crate::sharded::ShardedOram;
use crate::traits::Oram;
use path_oram::{Durability, EncryptionMode, OramBackend, PathOramBackend, StorageKind};
use std::path::Path;

/// Builder for every ORAM design point of the evaluation.
///
/// See the [module documentation](self) for an overview and the `build_*`
/// methods for the concrete construction targets.
#[derive(Debug, Clone)]
pub struct OramBuilder {
    scheme: SchemePoint,
    num_blocks: u64,
    block_bytes: Option<usize>,
    z: Option<usize>,
    onchip_entries: Option<u64>,
    plb_capacity_bytes: Option<usize>,
    plb_associativity: Option<usize>,
    posmap_format: Option<PosMapFormat>,
    x_override: Option<u64>,
    encryption: Option<EncryptionMode>,
    stash_capacity: Option<usize>,
    seed: Option<u64>,
    shards: u64,
    storage: Option<StorageKind>,
    memory_budget: Option<u64>,
    durability: Option<Durability>,
}

impl OramBuilder {
    /// Starts a builder for the given design point with the paper's default
    /// geometry (2^20 blocks of the scheme's evaluation block size).
    pub fn for_scheme(scheme: SchemePoint) -> Self {
        Self {
            scheme,
            num_blocks: 1 << 20,
            block_bytes: None,
            z: None,
            onchip_entries: None,
            plb_capacity_bytes: None,
            plb_associativity: None,
            posmap_format: None,
            x_override: None,
            encryption: None,
            stash_capacity: None,
            seed: None,
            shards: 1,
            storage: None,
            memory_budget: None,
            durability: None,
        }
    }

    /// The design point this builder constructs.
    pub fn scheme(&self) -> SchemePoint {
        self.scheme
    }

    /// Sets the number of data blocks (N).
    pub fn num_blocks(mut self, n: u64) -> Self {
        self.num_blocks = n;
        self
    }

    /// Sets the data block size in bytes (default: the scheme's evaluation
    /// block size, see [`SchemePoint::default_block_bytes`]).
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = Some(bytes);
        self
    }

    /// Sets the slots per bucket (Z).
    pub fn z(mut self, z: usize) -> Self {
        self.z = Some(z);
        self
    }

    /// Sets the on-chip PosMap capacity in entries.
    ///
    /// Ignored for [`SchemePoint::Phantom4K`], whose defining property is a
    /// fully on-chip position map (the capacity is pinned to `num_blocks`);
    /// every other scheme honours the override.
    pub fn onchip_entries(mut self, entries: u64) -> Self {
        self.onchip_entries = Some(entries);
        self
    }

    /// Sets the PLB capacity in bytes.
    ///
    /// The functional frontend always keeps a small PLB (it is clamped to at
    /// least four blocks per way — the recursion walk parks in-flight PosMap
    /// blocks there), so very small values measure a minimal PLB, not a
    /// PLB-less design; use the `R_X8` scheme for the no-PLB baseline.
    pub fn plb_capacity_bytes(mut self, bytes: usize) -> Self {
        self.plb_capacity_bytes = Some(bytes);
        self
    }

    /// Sets the PLB associativity.
    pub fn plb_associativity(mut self, ways: usize) -> Self {
        self.plb_associativity = Some(ways);
        self
    }

    /// Overrides the PosMap block format (e.g. a non-default α/β for the
    /// compressed format).
    pub fn posmap_format(mut self, format: PosMapFormat) -> Self {
        self.posmap_format = Some(format);
        self
    }

    /// Overrides the PosMap fan-out X explicitly.
    pub fn x(mut self, x: u64) -> Self {
        self.x_override = Some(x);
        self
    }

    /// Sets the bucket encryption discipline.
    pub fn encryption(mut self, mode: EncryptionMode) -> Self {
        self.encryption = Some(mode);
        self
    }

    /// Sets the stash capacity in blocks.
    pub fn stash_capacity(mut self, blocks: usize) -> Self {
        self.stash_capacity = Some(blocks);
        self
    }

    /// Sets the RNG/key seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The RNG/key seed in effect (explicit override, or the default seed 1
    /// every configuration falls back to).  Layers stacked on top of the
    /// built instance (e.g. the oblivious map's key-hashing seed) derive
    /// their own randomness from this value so one builder knob seeds the
    /// whole stack deterministically.
    pub fn seed_in_effect(&self) -> u64 {
        self.seed.unwrap_or(1)
    }

    /// Sets the number of shards for [`OramBuilder::build_sharded`] /
    /// [`OramBuilder::build_service`] (default 1).  `num_blocks` stays the
    /// *global* capacity: it is divided across the shards, padding the
    /// per-shard capacity up to `ceil(num_blocks / n)` when it doesn't
    /// divide evenly (so the composite's reported capacity rounds up to
    /// `n * ceil(num_blocks / n)`).
    pub fn shards(mut self, n: u64) -> Self {
        self.shards = n;
        self
    }

    /// Sets where the ORAM tree lives: the in-memory arena (default), a
    /// file-backed store in a chosen directory, a tiered store splitting
    /// the treetop into RAM with the rest file-backed, or throwaway
    /// temp-dir variants of either.  Unset, the ambient
    /// [`StorageKind::from_env`] resolution applies (`ORAM_STORAGE=file`
    /// selects temp-file storage, `ORAM_STORAGE=tiered` temp-dir tiered
    /// storage).  With [`OramBuilder::shards`] > 1, file-backed shards
    /// descend into `shard<i>/` subdirectories of the given directory.
    pub fn storage(mut self, kind: StorageKind) -> Self {
        self.storage = Some(kind);
        self
    }

    /// Sets the RAM byte budget for tiered storage: the tiered store pins
    /// the largest treetop (top K tree levels, `(2^K - 1)` buckets) that
    /// fits the budget in memory and spills the rest to the file tier (see
    /// [`path_oram::treetop_levels_for_budget`]).  Applies whenever the
    /// storage kind in effect is tiered — including `ORAM_STORAGE=tiered`
    /// from the environment — and overrides the budget carried by an
    /// explicit [`StorageKind::Tiered`]/[`StorageKind::TempTiered`].
    /// Unset, an explicit kind keeps its own budget and the environment
    /// resolution uses `ORAM_MEMORY_BUDGET` (default
    /// [`path_oram::DEFAULT_MEMORY_BUDGET`]).  Non-tiered kinds ignore it.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// The storage kind in effect (explicit override or environment
    /// default), with [`OramBuilder::memory_budget`] applied to tiered
    /// kinds.
    pub fn storage_in_effect(&self) -> StorageKind {
        self.apply_memory_budget(self.storage.clone().unwrap_or_else(StorageKind::from_env))
    }

    /// Re-derives a tiered kind's treetop budget from the builder's
    /// [`OramBuilder::memory_budget`] override; non-tiered kinds and an
    /// unset override pass through unchanged.
    fn apply_memory_budget(&self, kind: StorageKind) -> StorageKind {
        match (kind, self.memory_budget) {
            (StorageKind::Tiered { dir, .. }, Some(memory_budget)) => {
                StorageKind::Tiered { dir, memory_budget }
            }
            (StorageKind::TempTiered { .. }, Some(memory_budget)) => {
                StorageKind::TempTiered { memory_budget }
            }
            (kind, _) => kind,
        }
    }

    /// Sets the write-ahead-log discipline for file-backed trees:
    /// [`Durability::None`] (no log, the default), `Batch(n)` (fsync the log
    /// every `n` path writebacks) or `Strict` (fsync every writeback).
    /// Unset, the ambient [`Durability::from_env`] resolution applies
    /// (`ORAM_DURABILITY=strict|batch:<n>`).  Memory-backed trees ignore it.
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = Some(durability);
        self
    }

    /// The durability discipline in effect (explicit override or environment
    /// default).
    pub fn durability_in_effect(&self) -> Durability {
        self.durability.unwrap_or_else(Durability::from_env)
    }

    /// The block size in effect (explicit override or scheme default).
    pub fn block_bytes_in_effect(&self) -> usize {
        self.block_bytes
            .unwrap_or_else(|| self.scheme.default_block_bytes())
    }

    /// Resolves the [`FreecursiveConfig`] for a PLB/unified-tree scheme
    /// point (`P_X16`, `PC_X32`, `PC_X64`, `PI_X8`, `PIC_X32`, or the
    /// non-recursive `Phantom_4KB` emulation).
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnsupportedScheme`] for `insecure`/`R_X8`, or any
    /// validation error of the resolved configuration.
    pub fn freecursive_config(&self) -> Result<FreecursiveConfig, FreecursiveError> {
        let block = self.block_bytes_in_effect();
        let mut config = match self.scheme {
            SchemePoint::PX16 => FreecursiveConfig::p_x16(self.num_blocks, block),
            SchemePoint::PcX32 | SchemePoint::PcX64 => {
                FreecursiveConfig::pc_x32(self.num_blocks, block)
            }
            SchemePoint::PiX8 => FreecursiveConfig::pi_x8(self.num_blocks, block),
            SchemePoint::PicX32 => FreecursiveConfig::pic_x32(self.num_blocks, block),
            // Phantom keeps the whole position map on chip: a non-recursive
            // ORAM (H = 1), so the PosMap format never reaches the tree.
            SchemePoint::Phantom4K => {
                let mut cfg = FreecursiveConfig::p_x16(self.num_blocks, block);
                cfg.onchip_entries = self.num_blocks;
                cfg
            }
            SchemePoint::Insecure | SchemePoint::RX8 => {
                return Err(ConfigError::UnsupportedScheme {
                    scheme: self.scheme.label(),
                }
                .into())
            }
        };
        if let Some(z) = self.z {
            config.z = z;
        }
        if let Some(entries) = self.onchip_entries {
            // Phantom's defining property is the fully on-chip PosMap; don't
            // let a smaller override reintroduce recursion silently.
            if self.scheme != SchemePoint::Phantom4K {
                config.onchip_entries = entries;
            }
        }
        if let Some(bytes) = self.plb_capacity_bytes {
            config.plb_capacity_bytes = bytes;
        }
        if let Some(ways) = self.plb_associativity {
            config.plb_associativity = ways;
        }
        if let Some(format) = self.posmap_format {
            config.posmap_format = format;
        }
        if let Some(x) = self.x_override {
            config.x_override = Some(x);
        }
        if let Some(mode) = self.encryption {
            config.encryption = mode;
        }
        if let Some(capacity) = self.stash_capacity {
            config.stash_capacity = capacity;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(kind) = &self.storage {
            config.storage = kind.clone();
        }
        config.storage = self.apply_memory_budget(config.storage);
        if let Some(durability) = self.durability {
            config.durability = durability;
        }
        config.validate()?;
        Ok(config)
    }

    /// Resolves the [`RecursiveOramConfig`] for the `R_X8` baseline.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnsupportedScheme`] for any other scheme point.
    pub fn recursive_config(&self) -> Result<RecursiveOramConfig, FreecursiveError> {
        if self.scheme != SchemePoint::RX8 {
            return Err(ConfigError::UnsupportedScheme {
                scheme: self.scheme.label(),
            }
            .into());
        }
        let mut config = RecursiveOramConfig::r_x8(self.num_blocks, self.block_bytes_in_effect());
        if let Some(z) = self.z {
            config.z = z;
        }
        if let Some(entries) = self.onchip_entries {
            config.onchip_entries = entries;
        }
        if let Some(mode) = self.encryption {
            config.encryption = mode;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(kind) = &self.storage {
            config.storage = kind.clone();
        }
        config.storage = self.apply_memory_budget(config.storage);
        if let Some(durability) = self.durability {
            config.durability = durability;
        }
        Ok(config)
    }

    /// Builds a [`FreecursiveOram`] over an explicit backend type — the
    /// generic seam (e.g. `build_freecursive_on::<InsecureBackend>()` for a
    /// full frontend over flat memory).
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::freecursive_config`], plus backend construction
    /// failures.
    pub fn build_freecursive_on<B: OramBackend>(
        &self,
    ) -> Result<FreecursiveOram<B>, FreecursiveError> {
        FreecursiveOram::new(self.freecursive_config()?)
    }

    /// Builds a [`FreecursiveOram`] over the Path ORAM backend.
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::build_freecursive_on`].
    pub fn build_freecursive(&self) -> Result<FreecursiveOram, FreecursiveError> {
        self.build_freecursive_on::<PathOramBackend>()
    }

    /// Builds a baseline [`RecursiveOram`] over an explicit backend type.
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::recursive_config`], plus backend construction
    /// failures.
    pub fn build_recursive_on<B: OramBackend>(&self) -> Result<RecursiveOram<B>, FreecursiveError> {
        RecursiveOram::new(self.recursive_config()?)
    }

    /// Builds the baseline [`RecursiveOram`] over the Path ORAM backend.
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::build_recursive_on`].
    pub fn build_recursive(&self) -> Result<RecursiveOram, FreecursiveError> {
        self.build_recursive_on::<PathOramBackend>()
    }

    /// Builds the flat [`InsecureOram`] baseline.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnsupportedScheme`] unless the scheme is `insecure`,
    /// or [`ConfigError::Degenerate`] for zero sizes.
    pub fn build_insecure(&self) -> Result<InsecureOram, FreecursiveError> {
        if self.scheme != SchemePoint::Insecure {
            return Err(ConfigError::UnsupportedScheme {
                scheme: self.scheme.label(),
            }
            .into());
        }
        InsecureOram::new(self.num_blocks, self.block_bytes_in_effect())
    }

    /// Builds the design point as a trait object — the uniform entry point
    /// when the caller doesn't care which frontend serves the scheme.
    ///
    /// Honours every knob, including [`OramBuilder::shards`]: with more
    /// than one shard this returns the [`ShardedOram`] composite (for the
    /// worker-thread runtime use [`OramBuilder::build_service`], which has
    /// no trait-object shape to return).
    ///
    /// # Errors
    ///
    /// Any configuration or backend construction failure for the scheme.
    pub fn build(&self) -> Result<Box<dyn Oram>, FreecursiveError> {
        if self.shards > 1 {
            return Ok(Box::new(self.build_sharded()?));
        }
        Ok(match self.scheme {
            SchemePoint::Insecure => Box::new(self.build_insecure()?),
            SchemePoint::RX8 => Box::new(self.build_recursive()?),
            _ => Box::new(self.build_freecursive()?),
        })
    }

    /// Builds the [`OramBuilder::shards`] shard instances: the global
    /// `num_blocks` is divided across the shards (padding the per-shard
    /// capacity to `ceil(num_blocks / shards)` for uneven splits), the
    /// shared configuration is validated **once**, and each shard gets a
    /// distinct RNG/key seed (`base_seed + shard_index`, base 1 unless
    /// [`OramBuilder::seed`] was set) so shards never share randomness or
    /// keys.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Degenerate`] for zero shards, otherwise as for
    /// [`OramBuilder::build`] on the per-shard configuration.
    fn shard_instances(&self) -> Result<Vec<Box<dyn Oram>>, FreecursiveError> {
        if self.shards == 0 {
            return Err(ConfigError::Degenerate.into());
        }
        let per_shard = self.num_blocks.div_ceil(self.shards);
        let base_seed = self.seed.unwrap_or(1);
        // The prototype builds ONE shard: its own shard count must be 1 or
        // the `build()` call below would recurse into `build_sharded`.
        let prototype = self.clone().num_blocks(per_shard).shards(1);
        // Validate the shared configuration once, up front, so a bad knob
        // combination fails identically for every shard count (the
        // per-shard builds below re-use the already-validated settings and
        // differ only in seed).
        match self.scheme {
            SchemePoint::Insecure => {}
            SchemePoint::RX8 => {
                prototype.recursive_config()?;
            }
            _ => {
                prototype.freecursive_config()?;
            }
        }
        // File-backed storage descends into one subdirectory per shard, so
        // shards never collide on tree files.
        let storage = self.storage_in_effect();
        (0..self.shards)
            .map(|shard| {
                prototype
                    .clone()
                    .seed(base_seed.wrapping_add(shard))
                    .storage(storage.subdir(&format!("shard{shard}")))
                    .build()
            })
            .collect()
    }

    /// Builds a [`ShardedOram`] composite: `shards` independent instances
    /// of this design point behind the low-bits address router, executing
    /// on the caller's thread.  See [`OramBuilder::shards`] for how
    /// `num_blocks` is split.
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::build`], plus [`ConfigError::Degenerate`] for
    /// zero shards.
    pub fn build_sharded(&self) -> Result<ShardedOram, FreecursiveError> {
        ShardedOram::new(self.shard_instances()?)
    }

    /// Builds a running [`OramService`]: the same shards as
    /// [`OramBuilder::build_sharded`], each on its own worker thread,
    /// driven through [`crate::OramClient`] handles.
    ///
    /// # Errors
    ///
    /// As for [`OramBuilder::build_sharded`], plus thread-spawn failures.
    pub fn build_service(&self) -> Result<OramService, FreecursiveError> {
        OramService::from_shards(self.shard_instances()?)
    }

    /// Rebuilds an instance from a snapshot directory written by
    /// [`crate::Oram::persist`], as a trait object.  The snapshot records
    /// which frontend wrote it (Freecursive, Recursive baseline, Insecure,
    /// or a sharded composite with per-shard subdirectories) and its full
    /// configuration — including whether the tree was memory- or
    /// file-backed; file-backed snapshots reopen their tree files in place,
    /// so `dir` stays the live storage directory of the resumed instance.
    ///
    /// The resumed instance continues the exact request-for-request
    /// behaviour of the persisted one: responses, final contents, stats
    /// and randomness all match an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`FreecursiveError::Integrity`] if a state file fails its digest
    /// check; [`FreecursiveError::Backend`] wrapping
    /// [`path_oram::OramError::Snapshot`] /
    /// [`path_oram::OramError::Storage`] for version mismatches, truncated
    /// or missing files, and I/O failures; [`FreecursiveError::Config`] if
    /// the recorded configuration no longer validates.
    pub fn resume(dir: impl AsRef<Path>) -> Result<Box<dyn Oram>, FreecursiveError> {
        Self::resume_at(dir.as_ref(), true)
    }

    fn resume_at(dir: &Path, allow_composite: bool) -> Result<Box<dyn Oram>, FreecursiveError> {
        let (kind, payload) =
            path_oram::snapshot::read_state_file(&crate::persist::state_path(dir))?;
        match kind {
            crate::persist::KIND_FREECURSIVE => {
                Ok(Box::new(FreecursiveOram::<PathOramBackend>::resume(dir)?))
            }
            crate::persist::KIND_RECURSIVE => {
                Ok(Box::new(RecursiveOram::<PathOramBackend>::resume(dir)?))
            }
            crate::persist::KIND_INSECURE => Ok(Box::new(InsecureOram::resume(dir)?)),
            crate::persist::KIND_SHARDED if allow_composite => {
                let mut r = path_oram::snapshot::SnapReader::new(&payload);
                let num_shards = r.len(1 << 20)?;
                r.finish()?;
                let shards = (0..num_shards)
                    .map(|index| Self::resume_at(&dir.join(format!("shard{index}")), false))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(ShardedOram::new(shards)?))
            }
            other => Err(crate::persist::wrong_kind("resumable ORAM", other).into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use path_oram::InsecureBackend;

    #[test]
    fn builder_resolves_the_paper_presets() {
        let cfg = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 16)
            .freecursive_config()
            .unwrap();
        assert!(cfg.pmmac);
        assert_eq!(cfg.x(), 32);
        let cfg = OramBuilder::for_scheme(SchemePoint::PX16)
            .num_blocks(1 << 16)
            .freecursive_config()
            .unwrap();
        assert!(!cfg.pmmac);
        assert_eq!(cfg.x(), 16);
        // PC_X64 defaults to 128-byte blocks, doubling X.
        let cfg = OramBuilder::for_scheme(SchemePoint::PcX64)
            .num_blocks(1 << 16)
            .freecursive_config()
            .unwrap();
        assert_eq!(cfg.block_bytes, 128);
        assert_eq!(cfg.x(), 64);
    }

    #[test]
    fn overrides_reach_the_config() {
        let cfg = OramBuilder::for_scheme(SchemePoint::PcX32)
            .num_blocks(1 << 12)
            .block_bytes(128)
            .z(3)
            .onchip_entries(64)
            .plb_capacity_bytes(32 << 10)
            .plb_associativity(4)
            .seed(99)
            .freecursive_config()
            .unwrap();
        assert_eq!(cfg.block_bytes, 128);
        assert_eq!(cfg.z, 3);
        assert_eq!(cfg.onchip_entries, 64);
        assert_eq!(cfg.plb_capacity_bytes, 32 << 10);
        assert_eq!(cfg.plb_associativity, 4);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn phantom_is_non_recursive() {
        let oram = OramBuilder::for_scheme(SchemePoint::Phantom4K)
            .num_blocks(256)
            .block_bytes(64)
            .build_freecursive()
            .unwrap();
        assert_eq!(oram.num_levels(), 1);
    }

    #[test]
    fn mismatched_scheme_and_target_is_an_error() {
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::RX8).freecursive_config(),
            Err(FreecursiveError::Config(
                ConfigError::UnsupportedScheme { .. }
            ))
        ));
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::PcX32).recursive_config(),
            Err(FreecursiveError::Config(
                ConfigError::UnsupportedScheme { .. }
            ))
        ));
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::PcX32).build_insecure(),
            Err(FreecursiveError::Config(
                ConfigError::UnsupportedScheme { .. }
            ))
        ));
    }

    #[test]
    fn invalid_overrides_surface_as_config_errors() {
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::PcX32)
                .num_blocks(1 << 12)
                .x(1 << 20)
                .freecursive_config(),
            Err(FreecursiveError::Config(ConfigError::XTooLarge { .. }))
        ));
    }

    #[test]
    fn build_sharded_divides_capacity_and_pads_uneven_splits() {
        use crate::traits::Oram as _;
        // Even split: 64 blocks over 4 shards of 16.
        let oram = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(64)
            .block_bytes(16)
            .shards(4)
            .build_sharded()
            .unwrap();
        assert_eq!(oram.num_shards(), 4);
        assert_eq!(oram.num_blocks(), 64);
        // Uneven split: 10 blocks over 4 shards pads each to ceil(10/4) = 3,
        // reported capacity 12 — and the whole padded space is usable.
        let mut oram = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(10)
            .block_bytes(16)
            .shards(4)
            .build_sharded()
            .unwrap();
        assert_eq!(oram.num_blocks(), 12);
        for addr in 0..12u64 {
            oram.write(addr, &[addr as u8; 16]).unwrap();
            assert_eq!(oram.read(addr).unwrap(), vec![addr as u8; 16]);
        }
        // Zero shards is a configuration error.
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::Insecure)
                .num_blocks(8)
                .shards(0)
                .build_sharded(),
            Err(FreecursiveError::Config(ConfigError::Degenerate))
        ));
    }

    #[test]
    fn build_honours_the_shards_knob() {
        use crate::traits::Oram as _;
        // The uniform trait-object entry point must not silently ignore
        // `.shards(n)`: with 4 shards over 10 blocks it returns the
        // composite, observable through the padded capacity (12, not 10).
        let mut oram = OramBuilder::for_scheme(SchemePoint::Insecure)
            .num_blocks(10)
            .block_bytes(16)
            .shards(4)
            .build()
            .unwrap();
        assert_eq!(oram.num_blocks(), 12);
        oram.write(11, &[3u8; 16]).unwrap();
        assert_eq!(oram.read(11).unwrap(), vec![3u8; 16]);
    }

    #[test]
    fn sharded_tree_schemes_build_from_one_validated_config() {
        use crate::traits::Oram as _;
        // A real tree scheme across shards: each shard is an independent
        // PicX32 instance at a quarter of the capacity.
        let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .onchip_entries(32)
            .shards(4)
            .build_sharded()
            .unwrap();
        oram.write(1023, &[0xCD; 64]).unwrap();
        assert_eq!(oram.read(1023).unwrap(), vec![0xCD; 64]);
        // An invalid knob fails at the shared-config validation, before any
        // shard is built.
        assert!(matches!(
            OramBuilder::for_scheme(SchemePoint::PcX32)
                .num_blocks(1 << 10)
                .x(1 << 20)
                .shards(4)
                .build_sharded(),
            Err(FreecursiveError::Config(ConfigError::XTooLarge { .. }))
        ));
    }

    #[test]
    fn generic_seam_builds_over_the_insecure_backend() {
        let mut oram = OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 10)
            .onchip_entries(32)
            .build_freecursive_on::<InsecureBackend>()
            .unwrap();
        use crate::traits::Oram as _;
        oram.write(1, &[3u8; 64]).unwrap();
        assert_eq!(oram.read(1).unwrap(), vec![3u8; 64]);
        // The full frontend machinery ran: PMMAC verified MACs even though
        // the backend is a flat hash map.
        assert!(oram.stats().macs_verified > 0);
    }
}
