//! A typed view of PosMap block contents, uniform across the three formats
//! the paper evaluates (raw leaves, flat counters, compressed counters).
//!
//! The frontends manipulate PosMap blocks through this enum so that the PLB,
//! the recursion walk and PMMAC do not care which representation is
//! configured.

use crate::config::PosMapFormat;
use oram_crypto::prf::Prf;
use posmap::compressed::IncrementOutcome;
use posmap::{CompressedPosMapBlock, UncompressedPosMapBlock};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The result of advancing (remapping) one entry of a PosMap block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceResult {
    /// The child block's new leaf (where it must be appended/evicted to).
    pub new_leaf: u64,
    /// The child block's new access counter (`None` for the raw-leaf format,
    /// which has no counters).
    pub new_counter: Option<u64>,
    /// Present when the advance overflowed an individual counter and forced a
    /// group remap (§5.2.2): every sibling must be remapped through the
    /// Backend.
    pub group_remap: Option<GroupRemapInfo>,
}

/// Information needed to carry out a group remap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRemapInfo {
    /// The counters each entry held *before* the group counter was bumped
    /// (needed to locate the siblings on their old paths).
    pub old_counters: Vec<u64>,
    /// The counter every entry holds after the remap (`GC_new ‖ 0`).
    pub new_counter: u64,
}

/// The contents of one PosMap block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PosMapBlockPayload {
    /// X raw leaves.
    Leaves(UncompressedPosMapBlock),
    /// X flat 64-bit counters.
    FlatCounters(Vec<u64>),
    /// Compressed group/individual counters.
    Compressed(CompressedPosMapBlock),
}

impl PosMapBlockPayload {
    /// Creates an all-zero payload in the given format with `x` entries.
    pub fn new_zeroed(format: PosMapFormat, x: u64) -> Self {
        match format {
            PosMapFormat::UncompressedLeaves => {
                Self::Leaves(UncompressedPosMapBlock::new(x as usize))
            }
            PosMapFormat::FlatCounters => Self::FlatCounters(vec![0u64; x as usize]),
            PosMapFormat::Compressed { alpha, beta } => {
                Self::Compressed(CompressedPosMapBlock::new(x as usize, alpha, beta))
            }
        }
    }

    /// Parses a payload from the serialised PosMap block bytes.
    pub fn from_bytes(bytes: &[u8], format: PosMapFormat, x: u64) -> Self {
        match format {
            PosMapFormat::UncompressedLeaves => {
                Self::Leaves(UncompressedPosMapBlock::from_bytes(bytes, x as usize))
            }
            PosMapFormat::FlatCounters => {
                let counters = (0..x as usize)
                    .map(|i| {
                        u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
                    })
                    .collect();
                Self::FlatCounters(counters)
            }
            PosMapFormat::Compressed { alpha, beta } => Self::Compressed(
                CompressedPosMapBlock::from_bytes(bytes, x as usize, alpha, beta),
            ),
        }
    }

    /// Serialises the payload into exactly `block_bytes` bytes.
    pub fn to_bytes(&self, block_bytes: usize) -> Vec<u8> {
        match self {
            Self::Leaves(b) => b.to_bytes(block_bytes),
            Self::FlatCounters(counters) => {
                let mut out = vec![0u8; block_bytes];
                for (i, c) in counters.iter().enumerate() {
                    out[i * 8..(i + 1) * 8].copy_from_slice(&c.to_le_bytes());
                }
                out
            }
            Self::Compressed(b) => b.to_bytes(block_bytes),
        }
    }

    /// Number of entries (X).
    pub fn x(&self) -> usize {
        match self {
            Self::Leaves(b) => b.x(),
            Self::FlatCounters(c) => c.len(),
            Self::Compressed(b) => b.x(),
        }
    }

    /// The child's current access counter, or `None` for the raw-leaf format.
    pub fn child_counter(&self, index: usize) -> Option<u64> {
        match self {
            Self::Leaves(_) => None,
            Self::FlatCounters(c) => Some(c[index]),
            Self::Compressed(b) => Some(b.counter_of(index)),
        }
    }

    /// The child block's *current* leaf, derived from the entry.
    ///
    /// `child_unified_addr` is the child's address in the unified space (used
    /// as the PRF input for counter-based formats); `leaf_level` is L of the
    /// tree the child lives in.
    pub fn child_leaf(
        &self,
        index: usize,
        child_unified_addr: u64,
        prf: &dyn Prf,
        leaf_level: u32,
    ) -> u64 {
        match self {
            Self::Leaves(b) => b.leaf(index),
            Self::FlatCounters(c) => prf.leaf_for(child_unified_addr, c[index], leaf_level),
            Self::Compressed(b) => {
                prf.leaf_for(child_unified_addr, b.counter_of(index), leaf_level)
            }
        }
    }

    /// Advances (remaps) entry `index`: assigns the child a fresh leaf and,
    /// for counter formats, increments its counter.  Returns the new leaf,
    /// the new counter, and group-remap information if an individual counter
    /// overflowed.
    pub fn advance_entry<R: Rng>(
        &mut self,
        index: usize,
        child_unified_addr: u64,
        prf: &dyn Prf,
        leaf_level: u32,
        rng: &mut R,
    ) -> AdvanceResult {
        match self {
            Self::Leaves(b) => {
                let new_leaf = rng.gen_range(0..(1u64 << leaf_level));
                b.set_leaf(index, new_leaf);
                AdvanceResult {
                    new_leaf,
                    new_counter: None,
                    group_remap: None,
                }
            }
            Self::FlatCounters(c) => {
                c[index] = c[index].checked_add(1).expect("64-bit counter overflow");
                let new_counter = c[index];
                AdvanceResult {
                    new_leaf: prf.leaf_for(child_unified_addr, new_counter, leaf_level),
                    new_counter: Some(new_counter),
                    group_remap: None,
                }
            }
            Self::Compressed(b) => {
                let old_counters: Vec<u64> = (0..b.x()).map(|j| b.counter_of(j)).collect();
                match b.increment(index) {
                    IncrementOutcome::Normal => {
                        let new_counter = b.counter_of(index);
                        AdvanceResult {
                            new_leaf: prf.leaf_for(child_unified_addr, new_counter, leaf_level),
                            new_counter: Some(new_counter),
                            group_remap: None,
                        }
                    }
                    IncrementOutcome::GroupRemap => {
                        let new_counter = b.counter_of(index);
                        AdvanceResult {
                            new_leaf: prf.leaf_for(child_unified_addr, new_counter, leaf_level),
                            new_counter: Some(new_counter),
                            group_remap: Some(GroupRemapInfo {
                                old_counters,
                                new_counter,
                            }),
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::prf::AesPrf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prf() -> AesPrf {
        AesPrf::new([9u8; 16])
    }

    #[test]
    fn roundtrip_all_formats() {
        let formats = [
            (PosMapFormat::UncompressedLeaves, 16u64),
            (PosMapFormat::FlatCounters, 8),
            (PosMapFormat::compressed_default(), 32),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for (format, x) in formats {
            let mut payload = PosMapBlockPayload::new_zeroed(format, x);
            for j in 0..(x as usize).min(5) {
                payload.advance_entry(j, 1000 + j as u64, &prf(), 20, &mut rng);
            }
            let bytes = payload.to_bytes(64);
            let parsed = PosMapBlockPayload::from_bytes(&bytes, format, x);
            assert_eq!(parsed, payload, "format {format:?}");
        }
    }

    #[test]
    fn leaves_format_has_no_counters() {
        let payload = PosMapBlockPayload::new_zeroed(PosMapFormat::UncompressedLeaves, 16);
        assert_eq!(payload.child_counter(0), None);
    }

    #[test]
    fn counter_formats_start_at_zero_and_increment() {
        for format in [
            PosMapFormat::FlatCounters,
            PosMapFormat::compressed_default(),
        ] {
            let x = format.max_x(64);
            let mut payload = PosMapBlockPayload::new_zeroed(format, x);
            assert_eq!(payload.child_counter(3), Some(0));
            let mut rng = StdRng::seed_from_u64(2);
            let adv = payload.advance_entry(3, 77, &prf(), 24, &mut rng);
            assert_eq!(adv.new_counter, Some(1));
            assert_eq!(payload.child_counter(3), Some(1));
            assert!(adv.group_remap.is_none());
            // The current leaf reported after the advance matches the one the
            // advance returned.
            assert_eq!(payload.child_leaf(3, 77, &prf(), 24), adv.new_leaf);
        }
    }

    #[test]
    fn leaf_is_deterministic_function_of_counter_for_prf_formats() {
        let mut payload = PosMapBlockPayload::new_zeroed(PosMapFormat::FlatCounters, 8);
        let l0 = payload.child_leaf(2, 55, &prf(), 20);
        let l0_again = payload.child_leaf(2, 55, &prf(), 20);
        assert_eq!(l0, l0_again);
        let mut rng = StdRng::seed_from_u64(3);
        payload.advance_entry(2, 55, &prf(), 20, &mut rng);
        assert_ne!(payload.child_leaf(2, 55, &prf(), 20), l0);
    }

    #[test]
    fn compressed_overflow_reports_group_remap_with_old_counters() {
        let format = PosMapFormat::Compressed { alpha: 16, beta: 2 };
        let mut payload = PosMapBlockPayload::new_zeroed(format, 4);
        let mut rng = StdRng::seed_from_u64(4);
        // Overflow entry 0: beta = 2 so the 4th increment remaps the group.
        for _ in 0..3 {
            let adv = payload.advance_entry(0, 10, &prf(), 16, &mut rng);
            assert!(adv.group_remap.is_none());
        }
        // Also bump entry 1 so old counters are distinguishable.
        payload.advance_entry(1, 11, &prf(), 16, &mut rng);
        let adv = payload.advance_entry(0, 10, &prf(), 16, &mut rng);
        let remap = adv.group_remap.expect("group remap expected");
        assert_eq!(remap.old_counters, vec![3, 1, 0, 0]);
        // After the remap every entry carries GC=1, IC=0 → counter 4.
        assert_eq!(remap.new_counter, 1 << 2);
        for j in 0..4 {
            assert_eq!(payload.child_counter(j), Some(1 << 2));
        }
    }

    #[test]
    fn advance_changes_leaf_for_raw_leaf_format() {
        let mut payload = PosMapBlockPayload::new_zeroed(PosMapFormat::UncompressedLeaves, 16);
        let mut rng = StdRng::seed_from_u64(5);
        let before = payload.child_leaf(7, 0, &prf(), 20);
        let adv = payload.advance_entry(7, 0, &prf(), 20, &mut rng);
        assert_eq!(payload.child_leaf(7, 0, &prf(), 20), adv.new_leaf);
        assert!(adv.new_leaf < (1 << 20));
        // With overwhelming probability the leaf changed.
        assert_ne!(adv.new_leaf, before);
    }
}
