//! The named design points of the evaluation (§7.1.4 naming: P = PLB,
//! I = integrity/PMMAC, C = compressed PosMap, followed by X).
//!
//! `SchemePoint` lives in this crate so that *every* consumer — the
//! functional frontends via [`crate::OramBuilder`], the timing simulator in
//! `oram-sim`, the cache model, tests, benches, and examples — names design
//! points the same way.  (`oram-sim` re-exports it for backwards
//! compatibility.)

use serde::{Deserialize, Serialize};

/// A design point that can be attached to the secure processor model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemePoint {
    /// No ORAM at all: flat-latency DRAM (the denominator of every slowdown).
    Insecure,
    /// Baseline Recursive ORAM with 32-byte PosMap ORAM blocks (X = 8),
    /// separate trees, no PLB (\[26\]).
    RX8,
    /// PLB + unified tree with uncompressed PosMap blocks (X = 16 at 64 B).
    PX16,
    /// PLB + compressed PosMap (X = 32 at 64 B) — the headline PC_X32 point.
    PcX32,
    /// PC with 128-byte blocks (X = 64), used in the Figure 8 comparison.
    PcX64,
    /// PLB + PMMAC with flat 64-bit counters (X = 8).
    PiX8,
    /// PLB + compressed PosMap + PMMAC (X = 32) — complete Freecursive ORAM.
    PicX32,
    /// Phantom-style non-recursive ORAM with 4 KB blocks and an on-chip
    /// block buffer (Figure 9).
    Phantom4K,
}

impl SchemePoint {
    /// All ORAM design points (excluding the insecure baseline and Phantom).
    pub fn freecursive_points() -> [SchemePoint; 5] {
        [
            SchemePoint::RX8,
            SchemePoint::PX16,
            SchemePoint::PcX32,
            SchemePoint::PiX8,
            SchemePoint::PicX32,
        ]
    }

    /// Every scheme point, including the insecure baseline and Phantom —
    /// everything [`crate::OramBuilder::build`] can construct functionally.
    pub fn all_points() -> [SchemePoint; 8] {
        [
            SchemePoint::Insecure,
            SchemePoint::RX8,
            SchemePoint::PX16,
            SchemePoint::PcX32,
            SchemePoint::PcX64,
            SchemePoint::PiX8,
            SchemePoint::PicX32,
            SchemePoint::Phantom4K,
        ]
    }

    /// The label used in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            SchemePoint::Insecure => "insecure",
            SchemePoint::RX8 => "R_X8",
            SchemePoint::PX16 => "P_X16",
            SchemePoint::PcX32 => "PC_X32",
            SchemePoint::PcX64 => "PC_X64",
            SchemePoint::PiX8 => "PI_X8",
            SchemePoint::PicX32 => "PIC_X32",
            SchemePoint::Phantom4K => "Phantom_4KB",
        }
    }

    /// Whether this point uses the PLB + unified-tree frontend.
    pub fn uses_plb(&self) -> bool {
        matches!(
            self,
            SchemePoint::PX16
                | SchemePoint::PcX32
                | SchemePoint::PcX64
                | SchemePoint::PiX8
                | SchemePoint::PicX32
        )
    }

    /// Whether PMMAC integrity verification is enabled.
    pub fn pmmac(&self) -> bool {
        matches!(self, SchemePoint::PiX8 | SchemePoint::PicX32)
    }

    /// Whether the compressed PosMap format is used.
    pub fn compressed(&self) -> bool {
        matches!(
            self,
            SchemePoint::PcX32 | SchemePoint::PcX64 | SchemePoint::PicX32
        )
    }

    /// The data block size in bytes this point is evaluated at (§7.1.4/§7.1.5
    /// and Figure 9): 64 B for the paper's main table, 128 B for `PC_X64`,
    /// 4 KB for Phantom.
    pub fn default_block_bytes(&self) -> usize {
        match self {
            SchemePoint::PcX64 => 128,
            SchemePoint::Phantom4K => 4096,
            _ => 64,
        }
    }

    /// The PosMap fan-out X for a given ORAM block size in bytes.
    pub fn x(&self, block_bytes: usize) -> u64 {
        let bits = block_bytes * 8;
        let raw = match self {
            SchemePoint::Insecure | SchemePoint::Phantom4K => return 1,
            SchemePoint::RX8 => 8,
            // Uncompressed: 32-bit leaves.
            SchemePoint::PX16 => block_bytes / 4,
            // Compressed: alpha = 64, beta = 14 (§5.3).
            SchemePoint::PcX32 | SchemePoint::PcX64 | SchemePoint::PicX32 => (bits - 64) / 14,
            // Flat 64-bit counters.
            SchemePoint::PiX8 => block_bytes / 8,
        } as u64;
        // Power-of-two restriction (§5.3).
        if raw == 0 {
            1
        } else {
            1u64 << (63 - raw.leading_zeros())
        }
    }

    /// The ORAM-block payload size including the PMMAC MAC field.
    pub fn payload_bytes(&self, block_bytes: usize) -> usize {
        block_bytes
            + if self.pmmac() {
                oram_crypto::mac::MAC_BYTES
            } else {
                0
            }
    }

    /// PosMap-ORAM block size for the baseline separate-tree design
    /// (32 bytes following \[26\]); unified designs use the data block size.
    pub fn posmap_block_bytes(&self, block_bytes: usize) -> usize {
        match self {
            SchemePoint::RX8 => 32,
            _ => block_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_values_match_paper_names_at_64_bytes() {
        assert_eq!(SchemePoint::RX8.x(64), 8);
        assert_eq!(SchemePoint::PX16.x(64), 16);
        assert_eq!(SchemePoint::PcX32.x(64), 32);
        assert_eq!(SchemePoint::PiX8.x(64), 8);
        assert_eq!(SchemePoint::PicX32.x(64), 32);
        // And at 128 bytes the compressed X doubles (PC_X64).
        assert_eq!(SchemePoint::PcX64.x(128), 64);
    }

    #[test]
    fn pmmac_flags_and_payloads() {
        assert!(!SchemePoint::PcX32.pmmac());
        assert!(SchemePoint::PicX32.pmmac());
        assert_eq!(SchemePoint::PcX32.payload_bytes(64), 64);
        assert_eq!(
            SchemePoint::PicX32.payload_bytes(64),
            64 + oram_crypto::mac::MAC_BYTES
        );
    }

    #[test]
    fn baseline_uses_small_posmap_blocks() {
        assert_eq!(SchemePoint::RX8.posmap_block_bytes(64), 32);
        assert_eq!(SchemePoint::PcX32.posmap_block_bytes(64), 64);
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let mut labels: Vec<_> = SchemePoint::all_points()
            .iter()
            .map(|s| s.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn default_block_sizes_follow_the_evaluation() {
        assert_eq!(SchemePoint::PcX32.default_block_bytes(), 64);
        assert_eq!(SchemePoint::PcX64.default_block_bytes(), 128);
        assert_eq!(SchemePoint::Phantom4K.default_block_bytes(), 4096);
    }
}
