//! Asymptotic bandwidth analysis (§3.2.1 and §5.4).
//!
//! The paper accompanies its empirical results with two closed-form
//! bandwidth-overhead expressions, reproduced here so the asymptotic claims
//! can be checked numerically:
//!
//! * Baseline Recursive Path ORAM (§3.2.1):
//!   `O(log N + log³N / B)` bits moved per bit of data, obtained with a
//!   constant X and `B_p = Θ(log N)`-bit PosMap blocks.
//! * Compressed PosMap + unified tree (§5.4): with `β = log log N` and
//!   `X′ = log N / log log N`, the overhead becomes
//!   `O(log N + log³N / (B log log N))`, which asymptotically beats the
//!   baseline whenever `B = o(log²N)` and beats Kushilevitz et al. \[18\] when
//!   `B = ω(log N)` — making it the best known construction for every block
//!   size in between.
//!
//! These are *models* (they ignore constants the simulators capture); the
//! tests verify the qualitative relationships the paper states.

use serde::{Deserialize, Serialize};

/// Parameters of the asymptotic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymptoticParams {
    /// Number of data blocks (N).
    pub num_blocks: f64,
    /// Data block size in bits (B).
    pub block_bits: f64,
}

impl AsymptoticParams {
    /// Creates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not at least 2.
    pub fn new(num_blocks: f64, block_bits: f64) -> Self {
        assert!(
            num_blocks >= 2.0 && block_bits >= 2.0,
            "degenerate parameters"
        );
        Self {
            num_blocks,
            block_bits,
        }
    }

    fn log_n(&self) -> f64 {
        self.num_blocks.log2()
    }

    /// Bandwidth overhead (bits moved per data bit) of a single,
    /// non-recursive Path ORAM: `Θ(log N)`.
    pub fn non_recursive_overhead(&self) -> f64 {
        self.log_n()
    }

    /// Bandwidth overhead of baseline Recursive Path ORAM (§3.2.1):
    /// `log N + log³N / B`.
    pub fn recursive_overhead(&self) -> f64 {
        let l = self.log_n();
        l + l.powi(3) / self.block_bits
    }

    /// Bandwidth overhead of the compressed-PosMap unified-tree construction
    /// (§5.4): `log N + log³N / (B log log N)`.
    pub fn compressed_overhead(&self) -> f64 {
        let l = self.log_n();
        l + l.powi(3) / (self.block_bits * l.log2().max(1.0))
    }

    /// Bandwidth overhead of Kushilevitz et al. \[18\],
    /// `Θ(log²N / log log N)` — the best prior construction for small blocks
    /// and small client storage.
    pub fn kushilevitz_overhead(&self) -> f64 {
        let l = self.log_n();
        l.powi(2) / l.log2().max(1.0)
    }

    /// The share of a full Recursive ORAM access spent on PosMap ORAMs under
    /// the baseline model: `(log³N / B) / (log N + log³N / B)` — the
    /// asymptotic form of Figure 3.
    pub fn recursive_posmap_fraction(&self) -> f64 {
        let l = self.log_n();
        let posmap = l.powi(3) / self.block_bits;
        posmap / (l + posmap)
    }

    /// PosMap fan-out X′ used by the §5.4 analysis: `log N / log log N`.
    pub fn theoretical_x(&self) -> f64 {
        let l = self.log_n();
        l / l.log2().max(1.0)
    }

    /// Worst-case group-remap overhead `X′ / 2^β` with `β = log log N`
    /// (§5.4: `o(1)`).
    pub fn group_remap_overhead(&self) -> f64 {
        let l = self.log_n();
        self.theoretical_x() / 2f64.powf(l.log2().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(log_n: u32, block_bits: f64) -> AsymptoticParams {
        AsymptoticParams::new(2f64.powi(log_n as i32), block_bits)
    }

    #[test]
    fn posmap_accounts_for_roughly_half_the_overhead_at_realistic_sizes() {
        // §3.2.1: "In realistic processor settings, log N ≈ 25 and B ≈ log²N
        // (512 or 1024 bits).  Thus it is natural that PosMap ORAMs account
        // for roughly half of the bandwidth overhead."
        for block_bits in [512.0, 1024.0] {
            let frac = params(25, block_bits).recursive_posmap_fraction();
            assert!(
                (0.3..0.8).contains(&frac),
                "B={block_bits}: posmap fraction {frac}"
            );
        }
    }

    #[test]
    fn compression_always_helps_and_helps_more_for_small_blocks() {
        for log_n in [20u32, 26, 32] {
            for block_bits in [128.0, 512.0, 4096.0] {
                let p = params(log_n, block_bits);
                assert!(p.compressed_overhead() < p.recursive_overhead());
            }
            let small = params(log_n, 128.0);
            let large = params(log_n, 4096.0);
            let small_gain = small.recursive_overhead() / small.compressed_overhead();
            let large_gain = large.recursive_overhead() / large.compressed_overhead();
            assert!(small_gain > large_gain);
        }
    }

    #[test]
    fn compressed_scheme_beats_recursive_for_small_blocks() {
        // §5.4: asymptotically better whenever B = o(log²N).  At B ≈ log N
        // bits the gap is pronounced.
        let p = params(26, 26.0);
        assert!(p.compressed_overhead() < 0.75 * p.recursive_overhead());
    }

    #[test]
    fn compressed_scheme_beats_kushilevitz_for_moderate_blocks() {
        // §5.4: beats [18] when B = ω(log N); at B = log²N the advantage is
        // clear and grows with N.
        for log_n in [24u32, 32, 40] {
            let block_bits = (log_n * log_n) as f64;
            let p = params(log_n, block_bits);
            assert!(
                p.compressed_overhead() < p.kushilevitz_overhead(),
                "log N = {log_n}: {} vs {}",
                p.compressed_overhead(),
                p.kushilevitz_overhead()
            );
        }
    }

    #[test]
    fn group_remap_overhead_vanishes_asymptotically() {
        let small = params(16, 512.0).group_remap_overhead();
        let large = params(40, 512.0).group_remap_overhead();
        assert!(large < small);
        assert!(large < 0.5, "o(1) overhead, got {large}");
    }

    #[test]
    fn overheads_grow_with_capacity() {
        let a = params(20, 512.0);
        let b = params(30, 512.0);
        assert!(b.recursive_overhead() > a.recursive_overhead());
        assert!(b.compressed_overhead() > a.compressed_overhead());
        assert!(b.non_recursive_overhead() > a.non_recursive_overhead());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_degenerate_parameters() {
        let _ = AsymptoticParams::new(1.0, 512.0);
    }
}
