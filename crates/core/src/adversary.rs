//! The active adversary of the threat model (§2): a malicious data centre
//! that observes and tampers with untrusted DRAM.
//!
//! These helpers operate on a [`FreecursiveOram`]'s backend storage and are
//! used by the integrity tests, the `integrity_attack` example, and the
//! security-oriented benches.  They demonstrate:
//!
//! * arbitrary bit flips in ORAM tree buckets (detected by PMMAC when the
//!   block of interest is affected, §6.2.1),
//! * replay of stale bucket ciphertexts (defeated by the counters embedded in
//!   PMMAC MACs, §6.1),
//! * rollback of the plaintext bucket seed — the one-time-pad replay attack
//!   against the per-bucket-seed encryption of \[26\] that motivates the
//!   global-seed fix (§6.4).

use crate::frontend::FreecursiveOram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An active adversary bound to one ORAM instance's untrusted memory.
#[derive(Debug)]
pub struct Adversary {
    rng: StdRng,
}

impl Default for Adversary {
    fn default() -> Self {
        Self::new(0xBAD)
    }
}

impl Adversary {
    /// Creates an adversary with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Flips one byte in every currently initialised bucket of the ORAM
    /// tree.  Returns how many buckets were corrupted.
    pub fn corrupt_all_buckets(&mut self, oram: &mut FreecursiveOram, offset: usize) -> usize {
        let num = oram.backend().storage().num_buckets() as u64;
        let mut corrupted = 0;
        for idx in 0..num {
            if oram.backend().storage().is_initialized(idx)
                && oram
                    .backend_mut()
                    .storage_mut()
                    .tamper_xor(idx, offset, 0xFF)
            {
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Flips one random byte in one random initialised bucket.  Returns the
    /// bucket index, or `None` if the tree is still empty.
    pub fn corrupt_random_bucket(&mut self, oram: &mut FreecursiveOram) -> Option<u64> {
        let storage = oram.backend().storage();
        let initialized: Vec<u64> = (0..storage.num_buckets() as u64)
            .filter(|&i| storage.is_initialized(i))
            .collect();
        if initialized.is_empty() {
            return None;
        }
        let idx = initialized[self.rng.gen_range(0..initialized.len())];
        let offset = self
            .rng
            .gen_range(0..oram.backend().storage().bucket_bytes());
        oram.backend_mut()
            .storage_mut()
            .tamper_xor(idx, offset, 0x01);
        Some(idx)
    }

    /// Takes a snapshot of every initialised bucket (for a later replay).
    pub fn snapshot(&self, oram: &FreecursiveOram) -> Vec<(u64, Vec<u8>)> {
        let storage = oram.backend().storage();
        (0..storage.num_buckets() as u64)
            .filter(|&i| storage.is_initialized(i))
            .map(|i| (i, storage.snapshot_bucket(i)))
            .collect()
    }

    /// Replays a previously captured snapshot into untrusted memory,
    /// rolling the ORAM tree back to an earlier state.
    pub fn replay(&self, oram: &mut FreecursiveOram, snapshot: &[(u64, Vec<u8>)]) {
        for (idx, image) in snapshot {
            oram.backend_mut().storage_mut().replay_bucket(*idx, image);
        }
    }

    /// Rolls back the plaintext encryption seed of every initialised bucket
    /// by one — the precondition of the §6.4 one-time-pad replay attack.
    /// Returns how many bucket seeds were rolled back.
    pub fn rollback_all_seeds(&self, oram: &mut FreecursiveOram) -> usize {
        let num = oram.backend().storage().num_buckets() as u64;
        let mut rolled = 0;
        for idx in 0..num {
            if oram.backend_mut().storage_mut().rollback_seed(idx, 1) {
                rolled += 1;
            }
        }
        rolled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OramBuilder;
    use crate::error::FreecursiveError;
    use crate::scheme::SchemePoint;
    use crate::traits::Oram;
    use path_oram::OramError;

    fn pmmac_oram() -> FreecursiveOram {
        OramBuilder::for_scheme(SchemePoint::PicX32)
            .num_blocks(1 << 10)
            .block_bytes(64)
            .onchip_entries(32)
            .build_freecursive()
            .unwrap()
    }

    #[test]
    fn corruption_of_blocks_of_interest_is_detected() {
        let mut oram = pmmac_oram();
        let mut adv = Adversary::new(1);
        for addr in 0..32u64 {
            oram.write(addr, &[addr as u8; 64]).unwrap();
        }
        // Corrupt a data byte deep inside every bucket payload.
        let corrupted = adv.corrupt_all_buckets(&mut oram, 100);
        assert!(corrupted > 0);
        // Reading back must either detect the violation or (if a particular
        // block's path happened to be untouched) return correct data — it
        // must never silently return wrong data.
        let mut violations = 0;
        for addr in 0..32u64 {
            match oram.read(addr) {
                Err(
                    FreecursiveError::Integrity { .. }
                    | FreecursiveError::Backend(
                        OramError::MalformedBucket { .. } | OramError::BlockNotFound { .. },
                    ),
                ) => {
                    violations += 1;
                    break; // the controller would halt here
                }
                Ok(data) => assert_eq!(data, vec![addr as u8; 64]),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(violations > 0, "tampering went completely unnoticed");
    }

    #[test]
    fn replay_attack_is_detected_by_pmmac() {
        let mut oram = pmmac_oram();
        let adv = Adversary::new(2);
        let target = 7u64;
        let target_unified = oram.addressing().unified_addr(0, target);
        // Flush the target out of the on-chip stash so the snapshot actually
        // captures it in untrusted memory.
        let flush = |oram: &mut FreecursiveOram| {
            let mut other = 100u64;
            while oram.backend().stash_contains(target_unified) && other < 600 {
                oram.read(other).unwrap();
                other += 1;
            }
        };
        oram.write(target, &[1u8; 64]).unwrap();
        flush(&mut oram);
        // Capture the state, advance it, then roll memory back.
        let snapshot = adv.snapshot(&oram);
        for _ in 0..5 {
            oram.write(target, &[2u8; 64]).unwrap();
        }
        flush(&mut oram);
        adv.replay(&mut oram, &snapshot);
        match oram.read(target) {
            // Detected: the stale MAC does not verify under the current
            // counter, or the block is not where the fresh PosMap says.
            Err(
                FreecursiveError::Integrity { .. }
                | FreecursiveError::Backend(
                    OramError::BlockNotFound { .. } | OramError::MalformedBucket { .. },
                ),
            ) => {}
            // Not silently fooled: the read still returned the *fresh* value
            // because the block never left trusted storage.
            Ok(data) => assert_eq!(
                data,
                vec![2u8; 64],
                "replayed stale data was accepted as fresh"
            ),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn snapshot_covers_only_initialized_buckets() {
        let mut oram = pmmac_oram();
        let adv = Adversary::new(3);
        assert!(adv.snapshot(&oram).is_empty());
        oram.write(0, &[0u8; 64]).unwrap();
        assert!(!adv.snapshot(&oram).is_empty());
    }

    #[test]
    fn random_bucket_corruption_reports_target() {
        let mut oram = pmmac_oram();
        let mut adv = Adversary::new(4);
        assert!(adv.corrupt_random_bucket(&mut oram).is_none());
        oram.write(0, &[0u8; 64]).unwrap();
        assert!(adv.corrupt_random_bucket(&mut oram).is_some());
    }
}
