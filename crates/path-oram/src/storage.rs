//! Untrusted external memory holding the encrypted ORAM tree.
//!
//! The storage is indexed by linear bucket index.  It deliberately exposes a
//! tampering API so tests and examples can play the *active adversary* of the
//! threat model (§2): flipping bits, replaying stale buckets, and rolling back
//! bucket seeds.

use crate::params::OramParams;

/// Untrusted memory: a flat array of encrypted bucket images.
///
/// In a real system this is DRAM; the controller only ever exchanges
/// ciphertext with it.  All adversarial capabilities (observe, corrupt,
/// replay) are available through this type.
#[derive(Debug, Clone)]
pub struct TreeStorage {
    buckets: Vec<Vec<u8>>,
    bucket_bytes: usize,
}

impl TreeStorage {
    /// Allocates storage for every bucket of the tree described by `params`,
    /// initialised with `initial` (typically an encrypted empty bucket per
    /// index, written by the backend during initialisation).
    pub fn new(params: &OramParams) -> Self {
        Self {
            buckets: vec![Vec::new(); params.num_buckets() as usize],
            bucket_bytes: params.bucket_bytes(),
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Serialised bucket size in bytes.
    pub fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    /// Reads the raw (encrypted) image of a bucket.  Returns an empty slice
    /// for a bucket that has never been written.
    pub fn read_bucket(&self, index: u64) -> &[u8] {
        &self.buckets[index as usize]
    }

    /// Writes the raw (encrypted) image of a bucket.
    ///
    /// # Panics
    ///
    /// Panics if the image length differs from the configured bucket size.
    pub fn write_bucket(&mut self, index: u64, image: Vec<u8>) {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        self.buckets[index as usize] = image;
    }

    /// Whether a bucket has ever been written.
    pub fn is_initialized(&self, index: u64) -> bool {
        !self.buckets[index as usize].is_empty()
    }

    /// Total bytes currently resident (diagnostics).
    pub fn resident_bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.len() as u64).sum()
    }

    // ------------------------------------------------------------------
    // Active-adversary API (§2): these model a malicious data centre.
    // ------------------------------------------------------------------

    /// Flips the bits of `mask` at `offset` within bucket `index`.
    ///
    /// Returns `false` (and does nothing) if the bucket is uninitialised or
    /// the offset is out of range.
    pub fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if let Some(bucket) = self.buckets.get_mut(index as usize) {
            if let Some(byte) = bucket.get_mut(offset) {
                *byte ^= mask;
                return true;
            }
        }
        false
    }

    /// Takes a snapshot of a bucket's current ciphertext (for replay attacks).
    pub fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        self.buckets[index as usize].clone()
    }

    /// Replays a previously snapshotted ciphertext into a bucket.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the bucket size (a
    /// zero-length snapshot of an uninitialised bucket is allowed).
    pub fn replay_bucket(&mut self, index: u64, snapshot: Vec<u8>) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        self.buckets[index as usize] = snapshot;
    }

    /// Rolls back the plaintext seed field in a bucket header by `delta`
    /// (the seed is stored in the clear, §6.4).  Returns `false` if the
    /// bucket is uninitialised.
    pub fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        let bucket = &mut self.buckets[index as usize];
        if bucket.len() < 8 {
            return false;
        }
        let seed = u64::from_le_bytes(bucket[..8].try_into().expect("8-byte header"));
        bucket[..8].copy_from_slice(&seed.wrapping_sub(delta).to_le_bytes());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> TreeStorage {
        TreeStorage::new(&OramParams::new(64, 16, 4))
    }

    #[test]
    fn starts_uninitialized() {
        let s = storage();
        assert!(s.num_buckets() > 0);
        assert!(!s.is_initialized(0));
        assert!(s.read_bucket(0).is_empty());
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = storage();
        let image = vec![0xCD; s.bucket_bytes()];
        s.write_bucket(3, image.clone());
        assert!(s.is_initialized(3));
        assert_eq!(s.read_bucket(3), &image[..]);
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn rejects_wrong_size_image() {
        let mut s = storage();
        s.write_bucket(0, vec![0u8; 3]);
    }

    #[test]
    fn tamper_flips_exactly_the_requested_bits() {
        let mut s = storage();
        s.write_bucket(0, vec![0u8; s.bucket_bytes()]);
        assert!(s.tamper_xor(0, 10, 0xFF));
        assert_eq!(s.read_bucket(0)[10], 0xFF);
        assert_eq!(s.read_bucket(0)[9], 0x00);
        // Out of range / uninitialised tampering reports failure.
        assert!(!s.tamper_xor(0, 1 << 20, 1));
        assert!(!s.tamper_xor(1, 0, 1));
    }

    #[test]
    fn snapshot_and_replay_restore_old_contents() {
        let mut s = storage();
        let old = vec![1u8; s.bucket_bytes()];
        let new = vec![2u8; s.bucket_bytes()];
        s.write_bucket(5, old.clone());
        let snap = s.snapshot_bucket(5);
        s.write_bucket(5, new);
        s.replay_bucket(5, snap);
        assert_eq!(s.read_bucket(5), &old[..]);
    }

    #[test]
    fn rollback_seed_decrements_header() {
        let mut s = storage();
        let mut image = vec![0u8; s.bucket_bytes()];
        image[..8].copy_from_slice(&100u64.to_le_bytes());
        s.write_bucket(2, image);
        assert!(s.rollback_seed(2, 1));
        assert_eq!(
            u64::from_le_bytes(s.read_bucket(2)[..8].try_into().unwrap()),
            99
        );
        assert!(!s.rollback_seed(3, 1));
    }
}
