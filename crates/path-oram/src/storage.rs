//! Untrusted external memory holding the encrypted ORAM tree.
//!
//! The storage is indexed by linear bucket index.  It deliberately exposes a
//! tampering API so tests and examples can play the *active adversary* of the
//! threat model (§2): flipping bits, replaying stale buckets, and rolling back
//! bucket seeds.

use crate::params::OramParams;

/// Untrusted memory: one flat, contiguous arena of encrypted bucket images.
///
/// In a real system this is DRAM; the controller only ever exchanges
/// ciphertext with it.  Bucket `i` occupies the byte range
/// `[i * bucket_bytes, (i + 1) * bucket_bytes)` of the arena, so a path read
/// is `L + 1` slice views into one allocation instead of `L + 1`
/// pointer-chases through per-bucket heap objects.  A bitmap tracks which
/// buckets have ever been written; never-written buckets read as zero bytes
/// and are skipped by the backend.
///
/// The arena is allocated zeroed in one shot.  On the platforms we target the
/// allocator services large zeroed requests with untouched copy-on-write
/// pages, so a mostly-empty tree (e.g. a 4 GB-geometry ORAM in a short test)
/// costs physical memory only for the buckets actually written.
///
/// All adversarial capabilities (observe, corrupt, replay) are available
/// through this type.
#[derive(Debug, Clone)]
pub struct TreeStorage {
    arena: Vec<u8>,
    /// One bit per bucket: has this bucket ever been written?
    initialized: Vec<u64>,
    bucket_bytes: usize,
    num_buckets: usize,
}

impl TreeStorage {
    /// Allocates storage for every bucket of the tree described by `params`.
    /// All buckets start uninitialised (and all-zero).
    pub fn new(params: &OramParams) -> Self {
        let num_buckets = params.num_buckets() as usize;
        let bucket_bytes = params.bucket_bytes();
        Self {
            arena: vec![0u8; num_buckets * bucket_bytes],
            initialized: vec![0u64; num_buckets.div_ceil(64)],
            bucket_bytes,
            num_buckets,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Serialised bucket size in bytes.
    pub fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    #[inline]
    fn range(&self, index: u64) -> std::ops::Range<usize> {
        let start = index as usize * self.bucket_bytes;
        start..start + self.bucket_bytes
    }

    /// Reads the raw (encrypted) image of a bucket: a `bucket_bytes`-long
    /// view into the arena.  A bucket that has never been written reads as
    /// all zero bytes; check [`TreeStorage::is_initialized`] to distinguish.
    #[inline]
    pub fn read_bucket(&self, index: u64) -> &[u8] {
        &self.arena[self.range(index)]
    }

    /// Mutable view of a bucket's arena slot, marking the bucket
    /// initialised.  This is the zero-copy write path: the backend
    /// serialises and seals the eviction output directly into the slot.
    #[inline]
    pub fn bucket_slot_mut(&mut self, index: u64) -> &mut [u8] {
        self.mark_initialized(index);
        let range = self.range(index);
        &mut self.arena[range]
    }

    /// Byte offset of a bucket's image within the arena (see
    /// [`TreeStorage::arena_mut`]).
    #[inline]
    pub fn bucket_offset(&self, index: u64) -> usize {
        index as usize * self.bucket_bytes
    }

    /// The whole arena, mutable.  This is the batched-cipher hook: the
    /// backend serialises a path's buckets into their slots via
    /// [`TreeStorage::bucket_slot_mut`] (which marks them initialised), then
    /// seals all of them in one keystream pass over this slice using
    /// [`TreeStorage::bucket_offset`]-based spans.  Does **not** mark
    /// anything initialised.
    #[inline]
    pub fn arena_mut(&mut self) -> &mut [u8] {
        &mut self.arena
    }

    /// Writes the raw (encrypted) image of a bucket by copying `image` into
    /// its arena slot.
    ///
    /// # Panics
    ///
    /// Panics if the image length differs from the configured bucket size.
    pub fn write_bucket(&mut self, index: u64, image: &[u8]) {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        self.bucket_slot_mut(index).copy_from_slice(image);
    }

    fn mark_initialized(&mut self, index: u64) {
        self.initialized[index as usize / 64] |= 1u64 << (index % 64);
    }

    /// Whether a bucket has ever been written.
    #[inline]
    pub fn is_initialized(&self, index: u64) -> bool {
        self.initialized[index as usize / 64] >> (index % 64) & 1 == 1
    }

    /// Total bytes currently resident (diagnostics): initialised buckets
    /// times the bucket size.
    pub fn resident_bytes(&self) -> u64 {
        let buckets: u64 = self
            .initialized
            .iter()
            .map(|word| u64::from(word.count_ones()))
            .sum();
        buckets * self.bucket_bytes as u64
    }

    // ------------------------------------------------------------------
    // Active-adversary API (§2): these model a malicious data centre.
    // ------------------------------------------------------------------

    /// Flips the bits of `mask` at `offset` within bucket `index`.
    ///
    /// Returns `false` (and does nothing) if the bucket is uninitialised or
    /// the offset is out of range.
    pub fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if index as usize >= self.num_buckets
            || offset >= self.bucket_bytes
            || !self.is_initialized(index)
        {
            return false;
        }
        let start = self.range(index).start;
        self.arena[start + offset] ^= mask;
        true
    }

    /// Takes a snapshot of a bucket's current ciphertext (for replay
    /// attacks).  An uninitialised bucket snapshots as an empty vector,
    /// mirroring how the adversary sees "never written".
    pub fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if self.is_initialized(index) {
            self.read_bucket(index).to_vec()
        } else {
            Vec::new()
        }
    }

    /// Replays a previously snapshotted ciphertext into a bucket.  An empty
    /// snapshot restores the bucket to its uninitialised (all-zero) state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length is neither zero nor a full bucket image.
    pub fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        if snapshot.is_empty() {
            let range = self.range(index);
            self.arena[range].fill(0);
            self.initialized[index as usize / 64] &= !(1u64 << (index % 64));
        } else {
            self.write_bucket(index, snapshot);
        }
    }

    /// Rolls back the plaintext seed field in a bucket header by `delta`
    /// (the seed is stored in the clear, §6.4).  Returns `false` if the
    /// bucket is uninitialised.
    pub fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if !self.is_initialized(index) {
            return false;
        }
        let start = self.range(index).start;
        let header = &mut self.arena[start..start + 8];
        let seed = u64::from_le_bytes(header.try_into().expect("8-byte header"));
        header.copy_from_slice(&seed.wrapping_sub(delta).to_le_bytes());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> TreeStorage {
        TreeStorage::new(&OramParams::new(64, 16, 4))
    }

    #[test]
    fn starts_uninitialized_and_zeroed() {
        let s = storage();
        assert!(s.num_buckets() > 0);
        assert!(!s.is_initialized(0));
        assert!(s.read_bucket(0).iter().all(|&b| b == 0));
        assert_eq!(s.read_bucket(0).len(), s.bucket_bytes());
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = storage();
        let image = vec![0xCD; s.bucket_bytes()];
        s.write_bucket(3, &image);
        assert!(s.is_initialized(3));
        assert!(!s.is_initialized(2));
        assert!(!s.is_initialized(4));
        assert_eq!(s.read_bucket(3), &image[..]);
        assert_eq!(s.resident_bytes(), s.bucket_bytes() as u64);
    }

    #[test]
    fn buckets_are_contiguous_at_bucket_bytes_stride() {
        let mut s = storage();
        for idx in 0..s.num_buckets() as u64 {
            let image = vec![idx as u8 + 1; s.bucket_bytes()];
            s.write_bucket(idx, &image);
        }
        // Adjacent buckets sit back to back in the arena: writing one never
        // disturbs its neighbours.
        for idx in 0..s.num_buckets() as u64 {
            assert!(s.read_bucket(idx).iter().all(|&b| b == idx as u8 + 1));
        }
        assert_eq!(
            s.resident_bytes(),
            (s.num_buckets() * s.bucket_bytes()) as u64
        );
    }

    #[test]
    fn bucket_slot_mut_marks_initialized() {
        let mut s = storage();
        s.bucket_slot_mut(5)[0] = 0xAB;
        assert!(s.is_initialized(5));
        assert_eq!(s.read_bucket(5)[0], 0xAB);
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn rejects_wrong_size_image() {
        let mut s = storage();
        s.write_bucket(0, &[0u8; 3]);
    }

    #[test]
    fn tamper_flips_exactly_the_requested_bits() {
        let mut s = storage();
        s.write_bucket(0, &vec![0u8; s.bucket_bytes()]);
        assert!(s.tamper_xor(0, 10, 0xFF));
        assert_eq!(s.read_bucket(0)[10], 0xFF);
        assert_eq!(s.read_bucket(0)[9], 0x00);
        // Out of range / uninitialised tampering reports failure.
        assert!(!s.tamper_xor(0, 1 << 20, 1));
        assert!(!s.tamper_xor(1, 0, 1));
    }

    #[test]
    fn snapshot_and_replay_restore_old_contents() {
        let mut s = storage();
        let old = vec![1u8; s.bucket_bytes()];
        let new = vec![2u8; s.bucket_bytes()];
        s.write_bucket(5, &old);
        let snap = s.snapshot_bucket(5);
        s.write_bucket(5, &new);
        s.replay_bucket(5, &snap);
        assert_eq!(s.read_bucket(5), &old[..]);
    }

    #[test]
    fn replaying_an_empty_snapshot_uninitialises_the_bucket() {
        let mut s = storage();
        let snap = s.snapshot_bucket(7);
        assert!(snap.is_empty());
        s.write_bucket(7, &vec![9u8; s.bucket_bytes()]);
        s.replay_bucket(7, &snap);
        assert!(!s.is_initialized(7));
        assert!(s.read_bucket(7).iter().all(|&b| b == 0));
    }

    #[test]
    fn rollback_seed_decrements_header() {
        let mut s = storage();
        let mut image = vec![0u8; s.bucket_bytes()];
        image[..8].copy_from_slice(&100u64.to_le_bytes());
        s.write_bucket(2, &image);
        assert!(s.rollback_seed(2, 1));
        assert_eq!(
            u64::from_le_bytes(s.read_bucket(2)[..8].try_into().unwrap()),
            99
        );
        assert!(!s.rollback_seed(3, 1));
    }
}
