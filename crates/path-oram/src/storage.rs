//! Pluggable untrusted external memory holding the encrypted ORAM tree.
//!
//! The protocol only ever assumes `ReadBucket`/`WriteBucket` on untrusted
//! storage (§2), so the tree's home is a seam: the [`TreeStore`] trait
//! describes bucket-slot get/put over the `bucket_bytes` stride (plus the
//! batched whole-path access the one-pass seal/decrypt pipeline uses), with
//! two implementations:
//!
//! * [`MemStore`] — the original flat zeroed arena.  This is the hot-path
//!   store: the backend keeps its zero-copy access to the arena, so putting
//!   the trait in front costs the memory path nothing.
//! * [`FileStore`] — a sparse file addressed with positional I/O
//!   ([`std::os::unix::fs::FileExt`]), laid out with the subtree layout of
//!   Ren et al. \[26\] ([`dram_sim::SubtreeLayout`]) so a root-to-leaf path
//!   falls into at most ⌈levels/k⌉ contiguous extents.  Capacity is bounded
//!   by disk, not RAM, and the tree survives process exit.
//!
//! [`TreeStorage`] is the concrete enum the backend holds (two-variant
//! static dispatch; no boxing on the hot path).  Both stores expose the same
//! *active-adversary* API the threat model needs (§2): flipping bits,
//! replaying stale buckets, and rolling back bucket seeds — for the file
//! store these tamper with the actual bytes on disk.
//!
//! With a [`Durability`] discipline other than `None`, the file store keeps
//! a write-ahead log (see [`crate::wal`]): every path writeback is appended
//! to `tree<label>.wal` before the tree file is touched, the log is folded
//! into the `tree<label>.meta` checkpoint every `checkpoint_interval`
//! writebacks, and [`FileStore::open`] replays the checksum-valid log tail
//! past the last checkpoint — so a kill at any instant recovers to a
//! consistent prefix of the access history.
//!
//! # What the file store does and does not leak
//!
//! File offsets are a deterministic function of bucket indices, exactly as
//! arena offsets were: an observer of file I/O sees the same
//! one-path-read-one-path-write trace per access that a DRAM adversary saw.
//! Obliviousness is unchanged.  What the file store adds is *persistence
//! residue*: bucket ciphertexts outlive the process, so the snapshot
//! machinery (and the operator) must treat tree files as untrusted
//! ciphertext, which they already are in the threat model.

use crate::error::OramError;
use crate::params::OramParams;
use crate::snapshot::{self, SnapReader};
use crate::wal::{self, Durability, Wal};
use dram_sim::SubtreeLayout;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Levels per subtree (`k`) of the file layout.  Four levels pack 15 buckets
/// per subtree — with the paper's 320-byte buckets that is one ~4.7 KB
/// extent, about one OS page run per touched subtree.
pub const FILE_SUBTREE_LEVELS: u32 = 4;

/// State-file kind byte of a tree metadata file (see [`crate::snapshot`]).
const TREE_META_KIND: u8 = 0x10;

/// Writebacks between automatic WAL checkpoints (see
/// [`FileStore::checkpoint`]).  At the paper's ~320-byte buckets and
/// ~20-level paths this folds the log roughly every 6 MB, keeping replay
/// time and log residue bounded without making checkpoint fsyncs a
/// per-access cost.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1024;

/// Where a backend keeps its ORAM tree.
///
/// Construction-time knob, threaded from `OramBuilder::storage` through the
/// frontends to [`TreeStorage::create`].  Backends without untrusted tree
/// storage (e.g. the flat insecure baseline) ignore it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageKind {
    /// The in-memory arena ([`MemStore`]); the default.
    Mem,
    /// A file-backed tree ([`FileStore`]) living in the given directory.
    /// Constructing a *fresh* instance truncates any tree files already
    /// there; resuming a snapshot reopens them in place.
    File {
        /// Directory holding the tree files (`tree<label>.oram` /
        /// `tree<label>.meta`).
        dir: PathBuf,
    },
    /// A file-backed tree in a unique temporary directory that is deleted
    /// when the store is dropped.  This is what `ORAM_STORAGE=file` resolves
    /// to: every test/benchmark instance gets its own throwaway tree files.
    TempFile,
}

/// Monotonic discriminator for [`StorageKind::TempFile`] directories.
static TEMP_STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl StorageKind {
    /// Resolves the ambient default: `ORAM_STORAGE=file` selects
    /// [`StorageKind::TempFile`], anything else (or unset) selects
    /// [`StorageKind::Mem`].  This is how the CI file-storage test leg runs
    /// the whole suite over the file store without touching call sites.
    pub fn from_env() -> StorageKind {
        match std::env::var("ORAM_STORAGE") {
            Ok(v) if v.eq_ignore_ascii_case("file") => StorageKind::TempFile,
            _ => StorageKind::Mem,
        }
    }

    /// A storage kind rooted under `name` within this one: file-backed
    /// stores descend into a subdirectory (the per-shard wiring of
    /// `build_sharded`/`build_service`), memory and temp stores are
    /// unaffected (each temp store is unique already).
    pub fn subdir(&self, name: &str) -> StorageKind {
        match self {
            StorageKind::File { dir } => StorageKind::File {
                dir: dir.join(name),
            },
            other => other.clone(),
        }
    }

    /// Whether this kind keeps the tree in files.
    pub fn is_file_backed(&self) -> bool {
        !matches!(self, StorageKind::Mem)
    }

    /// One-byte tag recorded in snapshots (temp stores persist as plain
    /// file-backed ones: the snapshot directory *is* their new home).
    pub fn tag(&self) -> u8 {
        match self {
            StorageKind::Mem => 0,
            StorageKind::File { .. } | StorageKind::TempFile => 1,
        }
    }

    /// Inverse of [`StorageKind::tag`], rooting file-backed kinds at `dir`.
    ///
    /// # Errors
    ///
    /// [`OramError::Snapshot`] for an unknown tag.
    pub fn from_tag(tag: u8, dir: &Path) -> Result<StorageKind, OramError> {
        match tag {
            0 => Ok(StorageKind::Mem),
            1 => Ok(StorageKind::File {
                dir: dir.to_path_buf(),
            }),
            other => Err(OramError::Snapshot {
                detail: format!("unknown storage kind tag {other}"),
            }),
        }
    }
}

/// The storage seam: bucket-slot get/put over the `bucket_bytes` stride,
/// batched whole-path access, the active-adversary tampering API, and
/// snapshot persistence.
///
/// A bucket that has never been written reads as all zero bytes; the
/// initialised bitmap tells the backend which buckets to skip.  All methods
/// are indexed by the *linear* (heap-order) bucket index of
/// [`crate::tree::bucket_linear_index`]; where buckets land physically
/// (arena offset, file offset under the subtree layout) is the store's
/// business.
pub trait TreeStore: std::fmt::Debug + Send {
    /// Number of buckets.
    fn num_buckets(&self) -> usize;

    /// Serialised bucket size in bytes.
    fn bucket_bytes(&self) -> usize;

    /// Whether a bucket has ever been written.
    fn is_initialized(&self, index: u64) -> bool;

    /// Copies the raw (encrypted) image of a bucket into `out`, which must
    /// be exactly `bucket_bytes` long.  Uninitialised buckets read as zero
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError>;

    /// Writes the raw image of a bucket, marking it initialised.  `image`
    /// must be exactly `bucket_bytes` long.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError>;

    /// Batched span read: copies every *initialised* bucket of `indices`
    /// into `buf` at stride `level * bucket_bytes`.  Slots of uninitialised
    /// buckets are left untouched (the caller skips them via
    /// [`TreeStore::is_initialized`]).  This is the read half of the
    /// one-pass path pipeline: the caller decrypts the whole buffer in one
    /// batched cipher pass afterwards.  The default reads bucket by bucket;
    /// the file store overrides it to coalesce the path into its subtree
    /// extents (one positional read per extent).  Takes `&mut self` so
    /// overrides can stage through a reusable scratch buffer.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        let bb = self.bucket_bytes();
        for (level, &index) in indices.iter().enumerate() {
            if self.is_initialized(index) {
                self.read_bucket_into(index, &mut buf[level * bb..(level + 1) * bb])?;
            }
        }
        Ok(())
    }

    /// Batched span write: writes every bucket of `indices` from `buf` at
    /// stride `level * bucket_bytes`, marking all of them initialised — the
    /// write half of the pipeline, called once per eviction after the
    /// batched sealing pass.  Writes stay one positional write per bucket
    /// even on the file store: a path's buckets are interleaved with
    /// *other* paths' buckets inside each subtree extent, so an
    /// extent-sized write would clobber neighbours (reads have no such
    /// hazard, which is why only they coalesce).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        let bb = self.bucket_bytes();
        for (level, &index) in indices.iter().enumerate() {
            self.write_bucket(index, &buf[level * bb..(level + 1) * bb])?;
        }
        Ok(())
    }

    /// Total bytes currently resident (diagnostics): initialised buckets
    /// times the bucket size.
    fn resident_bytes(&self) -> u64;

    // ------------------------------------------------------------------
    // Active-adversary API (§2): these model a malicious data centre.
    // ------------------------------------------------------------------

    /// Flips the bits of `mask` at `offset` within bucket `index`; returns
    /// `false` (and does nothing) if the bucket is uninitialised or the
    /// offset is out of range.  For the file store this flips the byte on
    /// disk.
    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool;

    /// Takes a snapshot of a bucket's current ciphertext (for replay
    /// attacks).  An uninitialised bucket snapshots as an empty vector.
    fn snapshot_bucket(&self, index: u64) -> Vec<u8>;

    /// Replays a previously snapshotted ciphertext into a bucket.  An empty
    /// snapshot restores the bucket to its uninitialised (all-zero) state.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length is neither zero nor a full bucket
    /// image (test-harness contract, mirroring the original arena API).
    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]);

    /// Rolls back the plaintext seed field in a bucket header by `delta`
    /// (the seed is stored in the clear, §6.4).  Returns `false` if the
    /// bucket is uninitialised.
    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool;

    // ------------------------------------------------------------------
    // Persistence.
    // ------------------------------------------------------------------

    /// Persists the tree into `dir` as `tree<label>.oram` (bucket images at
    /// their subtree-layout offsets; one common format for both stores, so
    /// a memory-built snapshot can resume file-backed and vice versa) plus
    /// `tree<label>.meta` (geometry + initialised bitmap, digest-sealed).
    /// A file store persisting into its own live directory just flushes.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError>;
}

/// The subtree layout every tree file uses (base 0, `k` =
/// [`FILE_SUBTREE_LEVELS`] capped at the tree height).
fn file_layout(params: &OramParams) -> SubtreeLayout {
    SubtreeLayout::new(
        params.levels(),
        params.bucket_bytes() as u64,
        FILE_SUBTREE_LEVELS.min(params.levels()),
        0,
    )
}

/// Bytes of one full subtree extent under `layout`: the coalescing window
/// (and staging-buffer size) of the file store's path reads.
fn extent_bytes(layout: &SubtreeLayout, bucket_bytes: usize) -> usize {
    (((1usize << layout.subtree_levels()) - 1) * bucket_bytes).max(bucket_bytes)
}

/// Tree file path for `label` under `dir`.
fn tree_file_path(dir: &Path, label: u32) -> PathBuf {
    dir.join(format!("tree{label}.oram"))
}

/// Tree metadata file path for `label` under `dir`.
fn tree_meta_path(dir: &Path, label: u32) -> PathBuf {
    dir.join(format!("tree{label}.meta"))
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("{context} {}: {e}", path.display()),
    }
}

/// Bucket-granular variant of [`io_err`]: records the operation *and* the
/// bucket index, so a recovery-suite failure names the exact slot (e.g.
/// `write_path bucket 12 @ tree0.oram: ...`).  Only runs on the error path,
/// so the allocation never touches a successful access.
fn io_err_bucket(op: &str, index: u64, path: &Path, e: std::io::Error) -> OramError {
    OramError::Storage {
        detail: format!("{op} bucket {index} @ {}: {e}", path.display()),
    }
}

/// Serialises a tree metadata file: geometry, the initialised bitmap, and
/// the WAL sequence number the tree file is known to cover (`wal_seq`; 0
/// for trees that never logged).
fn write_tree_meta(
    path: &Path,
    num_buckets: usize,
    bucket_bytes: usize,
    subtree_levels: u32,
    initialized: &[u64],
    wal_seq: u64,
) -> Result<(), OramError> {
    let mut payload = Vec::with_capacity(40 + initialized.len() * 8);
    snapshot::put_u64(&mut payload, num_buckets as u64);
    snapshot::put_u64(&mut payload, bucket_bytes as u64);
    snapshot::put_u32(&mut payload, subtree_levels);
    snapshot::put_u64(&mut payload, initialized.len() as u64);
    for &word in initialized {
        snapshot::put_u64(&mut payload, word);
    }
    snapshot::put_u64(&mut payload, wal_seq);
    snapshot::write_state_file(path, TREE_META_KIND, &payload)
}

/// Reads and validates a tree metadata file against the expected geometry,
/// returning the initialised bitmap and the checkpointed WAL sequence
/// number.
fn read_tree_meta(
    path: &Path,
    num_buckets: usize,
    bucket_bytes: usize,
    expected_subtree_levels: u32,
) -> Result<(Vec<u64>, u64), OramError> {
    let (kind, payload) = snapshot::read_state_file(path)?;
    if kind != TREE_META_KIND {
        return Err(OramError::Snapshot {
            detail: format!("{} is not a tree metadata file", path.display()),
        });
    }
    let mut r = SnapReader::new(&payload);
    let file_buckets = r.u64()? as usize;
    let file_bucket_bytes = r.u64()? as usize;
    let file_subtree_levels = r.u32()?;
    if file_buckets != num_buckets || file_bucket_bytes != bucket_bytes {
        return Err(OramError::Snapshot {
            detail: format!(
                "tree geometry mismatch: snapshot has {file_buckets} buckets x \
                 {file_bucket_bytes} B, expected {num_buckets} x {bucket_bytes} B"
            ),
        });
    }
    // Every bucket's file offset is a function of the layout's k; a
    // mismatch here would read all buckets from the wrong offsets, so it
    // must be a hard error, not a recorded-and-ignored field.
    if file_subtree_levels != expected_subtree_levels {
        return Err(OramError::Snapshot {
            detail: format!(
                "tree layout mismatch: snapshot uses {file_subtree_levels} levels per subtree, \
                 this build expects {expected_subtree_levels}"
            ),
        });
    }
    let words = r.len(num_buckets.div_ceil(64))?;
    if words != num_buckets.div_ceil(64) {
        return Err(OramError::Snapshot {
            detail: format!(
                "bitmap has {words} words, expected {}",
                num_buckets.div_ceil(64)
            ),
        });
    }
    let mut bitmap = Vec::with_capacity(words);
    for _ in 0..words {
        bitmap.push(r.u64()?);
    }
    let wal_seq = r.u64()?;
    r.finish()?;
    Ok((bitmap, wal_seq))
}

#[inline]
fn bit_get(bitmap: &[u64], index: u64) -> bool {
    bitmap[index as usize / 64] >> (index % 64) & 1 == 1
}

#[inline]
fn bit_set(bitmap: &mut [u64], index: u64) {
    bitmap[index as usize / 64] |= 1u64 << (index % 64);
}

#[inline]
fn bit_clear(bitmap: &mut [u64], index: u64) {
    bitmap[index as usize / 64] &= !(1u64 << (index % 64));
}

fn popcount_bytes(bitmap: &[u64], bucket_bytes: usize) -> u64 {
    let buckets: u64 = bitmap.iter().map(|w| u64::from(w.count_ones())).sum();
    buckets * bucket_bytes as u64
}

// =====================================================================
// MemStore
// =====================================================================

/// The in-memory tree store: one flat, contiguous arena of encrypted bucket
/// images.
///
/// Bucket `i` occupies `[i * bucket_bytes, (i + 1) * bucket_bytes)` of the
/// arena, so a path read is `L + 1` slice views into one allocation.  The
/// arena is allocated zeroed in one shot; on the platforms we target the
/// allocator services large zeroed requests with untouched copy-on-write
/// pages, so a mostly-empty tree costs physical memory only for the buckets
/// actually written.
///
/// Beyond the [`TreeStore`] contract, `MemStore` exposes the zero-copy
/// arena accessors ([`MemStore::read_bucket`], [`MemStore::bucket_slot_mut`],
/// [`MemStore::arena_mut`]) the backend's hot path is built on.
#[derive(Debug, Clone)]
pub struct MemStore {
    arena: Vec<u8>,
    /// One bit per bucket: has this bucket ever been written?
    initialized: Vec<u64>,
    bucket_bytes: usize,
    num_buckets: usize,
    levels: u32,
    /// The WAL sequence number this store's contents cover: 0 for a fresh
    /// arena, the recovered sequence number after [`MemStore::load`].  The
    /// memory store never logs (there is nothing to make durable), but it
    /// carries the counter so a file-backed WAL'd snapshot can resume
    /// in-memory and the controller barrier check still lines up.
    wal_seq: u64,
}

impl MemStore {
    /// Allocates storage for every bucket of the tree described by `params`.
    /// All buckets start uninitialised (and all-zero).
    pub fn new(params: &OramParams) -> Self {
        let num_buckets = params.num_buckets() as usize;
        let bucket_bytes = params.bucket_bytes();
        Self {
            arena: vec![0u8; num_buckets * bucket_bytes],
            initialized: vec![0u64; num_buckets.div_ceil(64)],
            bucket_bytes,
            num_buckets,
            levels: params.levels(),
            wal_seq: 0,
        }
    }

    /// Loads a memory store from tree files persisted under `dir` (the
    /// common on-disk format, see [`TreeStore::persist_to`]).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for bad metadata.
    pub fn load(params: &OramParams, dir: &Path, label: u32) -> Result<Self, OramError> {
        let mut store = Self::new(params);
        let meta = tree_meta_path(dir, label);
        let (initialized, meta_seq) = read_tree_meta(
            &meta,
            store.num_buckets,
            store.bucket_bytes,
            FILE_SUBTREE_LEVELS.min(params.levels()),
        )?;
        store.initialized = initialized;
        store.wal_seq = meta_seq;
        let tree_path = tree_file_path(dir, label);
        let file = File::open(&tree_path).map_err(|e| io_err("opening", &tree_path, e))?;
        let layout = file_layout(params);
        for index in 0..store.num_buckets as u64 {
            if !bit_get(&store.initialized, index) {
                continue;
            }
            let offset = layout.linear_bucket_address(index);
            let range = store.range(index);
            file.read_exact_at(&mut store.arena[range], offset)
                .map_err(|e| io_err_bucket("load bucket", index, &tree_path, e))?;
        }
        // If the snapshot directory carries a WAL (a WAL'd file store that
        // crashed or simply never re-checkpointed), replay its checksum-valid
        // tail into the arena so the memory resume sees the same recovered
        // tree a file resume would.
        let num_buckets = store.num_buckets as u64;
        let bucket_bytes = store.bucket_bytes;
        let wal_path = wal::wal_file_path(dir, label);
        let summary = wal::replay(&wal_path, bucket_bytes, |seq, indices, images| {
            for (i, &index) in indices.iter().enumerate() {
                if index >= num_buckets {
                    return Err(OramError::Storage {
                        detail: format!(
                            "WAL record {seq} names bucket {index} outside the \
                             {num_buckets}-bucket tree @ {}",
                            wal_path.display()
                        ),
                    });
                }
                let range = store.range(index);
                store.arena[range]
                    .copy_from_slice(&images[i * bucket_bytes..(i + 1) * bucket_bytes]);
                bit_set(&mut store.initialized, index);
            }
            Ok(())
        })?;
        if let Some(s) = summary {
            if s.header_valid {
                store.wal_seq = store.wal_seq.max(s.last_seq);
            }
        }
        Ok(store)
    }

    /// The WAL sequence number this store's contents cover (see the field
    /// docs; always 0 for a store that was never loaded from a WAL'd
    /// snapshot).
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    // lint: ct-scope, no-alloc
    #[inline]
    fn range(&self, index: u64) -> std::ops::Range<usize> {
        let start = index as usize * self.bucket_bytes;
        start..start + self.bucket_bytes
    }

    /// Reads the raw (encrypted) image of a bucket: a `bucket_bytes`-long
    /// view into the arena.  A bucket that has never been written reads as
    /// all zero bytes; check [`TreeStore::is_initialized`] to distinguish.
    #[inline]
    pub fn read_bucket(&self, index: u64) -> &[u8] {
        &self.arena[self.range(index)]
    }

    /// Mutable view of a bucket's arena slot, marking the bucket
    /// initialised.  This is the zero-copy write path: the backend
    /// serialises and seals the eviction output directly into the slot.
    #[inline]
    pub fn bucket_slot_mut(&mut self, index: u64) -> &mut [u8] {
        self.mark_initialized(index);
        let range = self.range(index);
        &mut self.arena[range]
    }

    /// Byte offset of a bucket's image within the arena (see
    /// [`MemStore::arena_mut`]).
    #[inline]
    pub fn bucket_offset(&self, index: u64) -> usize {
        index as usize * self.bucket_bytes
    }

    /// The whole arena, mutable.  This is the batched-cipher hook: the
    /// backend serialises a path's buckets into their slots via
    /// [`MemStore::bucket_slot_mut`] (which marks them initialised), then
    /// seals all of them in one keystream pass over this slice using
    /// [`MemStore::bucket_offset`]-based spans.  Does **not** mark anything
    /// initialised.
    #[inline]
    pub fn arena_mut(&mut self) -> &mut [u8] {
        &mut self.arena
    }

    fn mark_initialized(&mut self, index: u64) {
        bit_set(&mut self.initialized, index);
    }
    // lint: end
}

impl TreeStore for MemStore {
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    #[inline]
    fn is_initialized(&self, index: u64) -> bool {
        bit_get(&self.initialized, index)
    }

    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        out.copy_from_slice(self.read_bucket(index));
        Ok(())
    }

    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        self.bucket_slot_mut(index).copy_from_slice(image);
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        popcount_bytes(&self.initialized, self.bucket_bytes)
    }

    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if index as usize >= self.num_buckets
            || offset >= self.bucket_bytes
            || !self.is_initialized(index)
        {
            return false;
        }
        let start = self.range(index).start;
        self.arena[start + offset] ^= mask;
        true
    }

    fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if self.is_initialized(index) {
            self.read_bucket(index).to_vec()
        } else {
            Vec::new()
        }
    }

    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        if snapshot.is_empty() {
            let range = self.range(index);
            self.arena[range].fill(0);
            bit_clear(&mut self.initialized, index);
        } else {
            self.write_bucket(index, snapshot)
                .expect("arena writes are infallible");
        }
    }

    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if !self.is_initialized(index) {
            return false;
        }
        let start = self.range(index).start;
        let header = &mut self.arena[start..start + 8];
        let seed = u64::from_le_bytes(header.try_into().expect("8-byte header"));
        header.copy_from_slice(&seed.wrapping_sub(delta).to_le_bytes());
        true
    }

    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tree_path)
            .map_err(|e| io_err("creating", &tree_path, e))?;
        // The tree file carries bucket images at their subtree-layout
        // offsets: the arena is linear heap order, so this is a permuting
        // copy of the initialised buckets into a sparse file.
        let layout = SubtreeLayout::new(
            self.levels,
            self.bucket_bytes as u64,
            FILE_SUBTREE_LEVELS.min(self.levels),
            0,
        );
        file.set_len(layout.total_bytes())
            .map_err(|e| io_err("sizing", &tree_path, e))?;
        for index in 0..self.num_buckets as u64 {
            if !self.is_initialized(index) {
                continue;
            }
            let offset = layout.linear_bucket_address(index);
            file.write_all_at(self.read_bucket(index), offset)
                .map_err(|e| io_err_bucket("persist bucket", index, &tree_path, e))?;
        }
        file.sync_all()
            .map_err(|e| io_err("syncing", &tree_path, e))?;
        // A stale WAL beside the target would replay over the fresh tree on
        // resume; this snapshot is complete, so drop it.
        let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        write_tree_meta(
            &tree_meta_path(dir, label),
            self.num_buckets,
            self.bucket_bytes,
            FILE_SUBTREE_LEVELS.min(self.levels),
            &self.initialized,
            self.wal_seq,
        )
    }
}

// =====================================================================
// FileStore
// =====================================================================

/// The file-backed tree store: bucket images in one sparse file at their
/// [`dram_sim::SubtreeLayout`] offsets, accessed with positional I/O.
///
/// The initialised bitmap lives in memory while the store is live and is
/// written to the sidecar `tree<label>.meta` file by
/// [`TreeStore::persist_to`] and by WAL checkpoints.  Crash consistency
/// depends on the [`Durability`] discipline the store was built with:
/// under [`Durability::None`] the tree is consistent only at successful
/// `persist` boundaries (the pre-WAL behaviour); under `Batch`/`Strict`
/// every writeback is logged to `tree<label>.wal` before it is applied and
/// [`FileStore::open`] replays the checksum-valid log tail, so a kill at
/// any instant recovers to a consistent prefix of the access history.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    tree_path: PathBuf,
    dir: PathBuf,
    label: u32,
    layout: SubtreeLayout,
    initialized: Vec<u64>,
    bucket_bytes: usize,
    num_buckets: usize,
    /// Reusable staging buffer for coalesced path reads, sized to one
    /// subtree extent (`(2^k - 1) * bucket_bytes`); allocated once so the
    /// steady-state access path stays allocation-free.
    extent_buf: Vec<u8>,
    /// Set for [`StorageKind::TempFile`] stores: the directory is removed
    /// on drop.
    remove_on_drop: bool,
    /// The write-ahead log; `None` under [`Durability::None`], in which
    /// case the whole logging/checkpointing machinery is inert.
    wal: Option<Wal>,
    /// Sequence number of the last writeback applied to the tree (== the
    /// last WAL append when logging, frozen at its recovered value when
    /// not).
    wal_seq: u64,
    /// Writebacks since the last checkpoint fold.
    records_since_checkpoint: u64,
    /// Auto-checkpoint cadence in writebacks.
    checkpoint_interval: u64,
    /// Fault injection (kill-point suite): remaining bucket writes the
    /// tree file will accept before a simulated kill.
    fail_tree_writes_after: Option<u64>,
}

impl FileStore {
    /// Creates a **fresh** file-backed tree under `dir` (truncating any
    /// existing `tree<label>` files there).  Under a logged [`Durability`]
    /// the store also writes an initial (empty) checkpoint and opens a
    /// fresh WAL, so a kill before the first explicit `persist` already
    /// recovers instead of leaving an unreadable directory.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tree_path)
            .map_err(|e| io_err("creating", &tree_path, e))?;
        let layout = file_layout(params);
        // A sparse file: the full tree geometry is reserved in the address
        // space, but unwritten regions occupy no disk blocks (the file
        // analogue of the arena's copy-on-write zero pages).
        file.set_len(layout.total_bytes())
            .map_err(|e| io_err("sizing", &tree_path, e))?;
        // A fresh tree owes nothing to any previous occupant of the
        // directory: a leftover log would replay a stranger's buckets.
        let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        let num_buckets = params.num_buckets() as usize;
        let extent_buf = vec![0u8; extent_bytes(&layout, params.bucket_bytes())];
        let mut store = Self {
            file,
            tree_path,
            dir: dir.to_path_buf(),
            label,
            layout,
            initialized: vec![0u64; num_buckets.div_ceil(64)],
            bucket_bytes: params.bucket_bytes(),
            num_buckets,
            extent_buf,
            remove_on_drop: false,
            wal: None,
            wal_seq: 0,
            records_since_checkpoint: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            fail_tree_writes_after: None,
        };
        if durability.is_logged() {
            store.checkpoint()?;
            store.wal = Some(Wal::create(
                &store.dir,
                label,
                store.bucket_bytes,
                0,
                durability,
            )?);
        }
        Ok(store)
    }

    /// Creates a fresh file-backed tree in a unique temporary directory
    /// that is removed when the store is dropped.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    pub fn create_temp(
        params: &OramParams,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        let unique = format!(
            "oram-tree-{}-{}",
            std::process::id(),
            TEMP_STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut store = Self::create(params, &dir, label, durability)?;
        store.remove_on_drop = true;
        Ok(store)
    }

    /// Reopens a persisted file-backed tree in place: the snapshot
    /// directory becomes (or stays) the live storage directory.
    ///
    /// Recovery happens here: if a `tree<label>.wal` is present its
    /// checksum-valid tail is replayed into the tree (stopping cleanly at
    /// the first torn or invalid record — the expected shape of a crash),
    /// the recovered state is folded into a fresh checkpoint, and — under
    /// a logged [`Durability`] — a new log generation is opened.  Replay is
    /// idempotent (records are full bucket post-images), so it does not
    /// matter how much of the log the tree file had already absorbed before
    /// the kill.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for missing or corrupt metadata.
    pub fn open(
        params: &OramParams,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        let num_buckets = params.num_buckets() as usize;
        let bucket_bytes = params.bucket_bytes();
        let (mut initialized, meta_seq) = read_tree_meta(
            &tree_meta_path(dir, label),
            num_buckets,
            bucket_bytes,
            FILE_SUBTREE_LEVELS.min(params.levels()),
        )?;
        let tree_path = tree_file_path(dir, label);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&tree_path)
            .map_err(|e| io_err("opening", &tree_path, e))?;
        let layout = file_layout(params);
        let actual = file
            .metadata()
            .map_err(|e| io_err("inspecting", &tree_path, e))?
            .len();
        if actual < layout.total_bytes() {
            return Err(OramError::Snapshot {
                detail: format!(
                    "tree file {} is short: {actual} bytes, expected {}",
                    tree_path.display(),
                    layout.total_bytes()
                ),
            });
        }
        // Replay the checksum-valid WAL tail (if any) over the tree file.
        let wal_path = wal::wal_file_path(dir, label);
        let summary = wal::replay(&wal_path, bucket_bytes, |seq, indices, images| {
            for (i, &index) in indices.iter().enumerate() {
                if index >= num_buckets as u64 {
                    return Err(OramError::Storage {
                        detail: format!(
                            "WAL record {seq} names bucket {index} outside the \
                             {num_buckets}-bucket tree @ {}",
                            wal_path.display()
                        ),
                    });
                }
                file.write_all_at(
                    &images[i * bucket_bytes..(i + 1) * bucket_bytes],
                    layout.linear_bucket_address(index),
                )
                .map_err(|e| io_err_bucket("replay bucket", index, &tree_path, e))?;
                bit_set(&mut initialized, index);
            }
            Ok(())
        })?;
        let mut wal_seq = meta_seq;
        if let Some(s) = &summary {
            if s.header_valid {
                wal_seq = wal_seq.max(s.last_seq);
            }
        }
        let extent_buf = vec![0u8; extent_bytes(&layout, bucket_bytes)];
        let mut store = Self {
            file,
            tree_path,
            dir: dir.to_path_buf(),
            label,
            layout,
            initialized,
            bucket_bytes,
            num_buckets,
            extent_buf,
            remove_on_drop: false,
            wal: None,
            wal_seq,
            records_since_checkpoint: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            fail_tree_writes_after: None,
        };
        if summary.is_some() {
            // Fold whatever the log contributed into a fresh checkpoint so
            // the recovered state stands on its own...
            store.checkpoint()?;
            if !durability.is_logged() {
                // ...and drop the log when the new discipline won't keep one.
                let _ = std::fs::remove_file(&wal_path);
            }
        }
        if durability.is_logged() {
            store.wal = Some(Wal::create(
                &store.dir,
                label,
                bucket_bytes,
                store.wal_seq,
                durability,
            )?);
        }
        Ok(store)
    }

    /// The directory holding this store's tree files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the last writeback applied to this tree.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Whether this store keeps a write-ahead log.
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Folds the applied log into the on-disk checkpoint: flush the tree
    /// file, rewrite `tree<label>.meta` (atomically, see
    /// [`crate::snapshot::write_state_file`]) to cover sequence number
    /// `wal_seq`, then truncate the log back to a bare header.  A crash
    /// between any two of these steps is safe: before the meta write the
    /// old checkpoint + full log still recover everything; after it the new
    /// checkpoint covers every record the truncation is about to drop.
    ///
    /// Runs automatically every `checkpoint_interval` writebacks; callable
    /// directly for an explicit fold.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure.
    // lint: no-panic
    pub fn checkpoint(&mut self) -> Result<(), OramError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("syncing", &self.tree_path, e))?;
        write_tree_meta(
            &tree_meta_path(&self.dir, self.label),
            self.num_buckets,
            self.bucket_bytes,
            self.layout.subtree_levels(),
            &self.initialized,
            self.wal_seq,
        )?;
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate_to(self.wal_seq)?;
        }
        self.records_since_checkpoint = 0;
        Ok(())
    }
    // lint: end

    /// Overrides the auto-checkpoint cadence (clamped to ≥ 1).  Test
    /// harness hook; the default is [`DEFAULT_CHECKPOINT_INTERVAL`].
    #[doc(hidden)]
    pub fn set_checkpoint_interval(&mut self, records: u64) {
        self.checkpoint_interval = records.max(1);
    }

    /// Fault-injection hook (kill-point suite): permit at most `bytes`
    /// further WAL bytes, then fail appends leaving a torn record.  No-op
    /// without a WAL.
    #[doc(hidden)]
    pub fn set_fail_after_wal_bytes(&mut self, bytes: u64) {
        if let Some(wal) = self.wal.as_mut() {
            wal.set_crash_after_bytes(bytes);
        }
    }

    /// Fault-injection hook (kill-point suite): permit at most `writes`
    /// further bucket writes to the tree file, then fail.
    #[doc(hidden)]
    pub fn set_fail_after_tree_writes(&mut self, writes: u64) {
        self.fail_tree_writes_after = Some(writes);
    }

    #[inline]
    fn offset(&self, index: u64) -> u64 {
        self.layout.linear_bucket_address(index)
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.remove_on_drop {
            // Best-effort cleanup of a throwaway temp store.
            let _ = std::fs::remove_file(&self.tree_path);
            let _ = std::fs::remove_file(tree_meta_path(&self.dir, self.label));
            let _ = std::fs::remove_file(wal::wal_file_path(&self.dir, self.label));
            let _ = std::fs::remove_dir(&self.dir);
        }
    }
}

impl TreeStore for FileStore {
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    fn bucket_bytes(&self) -> usize {
        self.bucket_bytes
    }

    #[inline]
    fn is_initialized(&self, index: u64) -> bool {
        bit_get(&self.initialized, index)
    }

    fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        debug_assert_eq!(out.len(), self.bucket_bytes);
        self.file
            .read_exact_at(out, self.offset(index))
            .map_err(|e| io_err_bucket("read_bucket", index, &self.tree_path, e))
    }

    fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        assert_eq!(
            image.len(),
            self.bucket_bytes,
            "bucket image must be exactly bucket_bytes long"
        );
        if let Some(budget) = self.fail_tree_writes_after.as_mut() {
            if *budget == 0 {
                return Err(OramError::Storage {
                    detail: format!(
                        "injected crash before tree write of bucket {index} @ {}",
                        self.tree_path.display()
                    ),
                });
            }
            *budget -= 1;
        }
        self.file
            .write_all_at(image, self.offset(index))
            .map_err(|e| io_err_bucket("write_bucket", index, &self.tree_path, e))?;
        bit_set(&mut self.initialized, index);
        Ok(())
    }

    fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        // WAL-before-tree: the sealed path image is appended (and, per the
        // fsync discipline, made durable) before the first in-place tree
        // write starts.  A kill anywhere in here leaves either a torn log
        // record (the writeback never happened) or a complete one (replay
        // finishes the tree writes on open).
        if let Some(wal) = self.wal.as_mut() {
            self.wal_seq = wal.append(indices, buf)?;
        }
        let bb = self.bucket_bytes;
        for (level, &index) in indices.iter().enumerate() {
            self.write_bucket(index, &buf[level * bb..(level + 1) * bb])?;
        }
        if self.wal.is_some() {
            self.records_since_checkpoint += 1;
            if self.records_since_checkpoint >= self.checkpoint_interval {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        // Coalesced path read: sort the initialised buckets by file offset
        // and read each run that fits one subtree-extent window with a
        // single positional read.  Under the subtree layout every bucket of
        // a path lies inside its level-group's extent, so a root-to-leaf
        // path costs at most ⌈levels/k⌉ reads.  The window may cover
        // buckets of *other* paths; their bytes are staged and discarded,
        // never copied out.
        let bb = self.bucket_bytes;
        let window = self.extent_buf.len() as u64;
        // (file offset, level) per initialised bucket; paths are at most
        // `MAX_LEAF_LEVEL + 1` levels, far below this stack bound.
        let mut runs = [(0u64, 0usize); 64];
        let mut n = 0;
        for (level, &index) in indices.iter().enumerate() {
            if self.is_initialized(index) {
                runs[n] = (self.offset(index), level);
                n += 1;
            }
        }
        runs[..n].sort_unstable();
        let mut i = 0;
        while i < n {
            let start = runs[i].0;
            let mut j = i;
            while j + 1 < n && runs[j + 1].0 + bb as u64 - start <= window {
                j += 1;
            }
            let len = (runs[j].0 + bb as u64 - start) as usize;
            let chunk = &mut self.extent_buf[..len];
            self.file
                .read_exact_at(chunk, start)
                .map_err(|e| io_err("reading path extent from", &self.tree_path, e))?;
            for &(offset, level) in &runs[i..=j] {
                let rel = (offset - start) as usize;
                buf[level * bb..(level + 1) * bb].copy_from_slice(&chunk[rel..rel + bb]);
            }
            i = j + 1;
        }
        Ok(())
    }

    fn resident_bytes(&self) -> u64 {
        popcount_bytes(&self.initialized, self.bucket_bytes)
    }

    fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        if index as usize >= self.num_buckets
            || offset >= self.bucket_bytes
            || !self.is_initialized(index)
        {
            return false;
        }
        let pos = self.offset(index) + offset as u64;
        let mut byte = [0u8];
        if self.file.read_exact_at(&mut byte, pos).is_err() {
            return false;
        }
        byte[0] ^= mask;
        self.file.write_all_at(&byte, pos).is_ok()
    }

    fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        if !self.is_initialized(index) {
            return Vec::new();
        }
        let mut out = vec![0u8; self.bucket_bytes];
        self.read_bucket_into(index, &mut out)
            .expect("snapshotting an initialised bucket");
        out
    }

    fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        assert!(
            snapshot.is_empty() || snapshot.len() == self.bucket_bytes,
            "snapshot must be a full bucket image"
        );
        if snapshot.is_empty() {
            let zeros = vec![0u8; self.bucket_bytes];
            self.file
                .write_all_at(&zeros, self.offset(index))
                .expect("zeroing a bucket on replay");
            bit_clear(&mut self.initialized, index);
        } else {
            self.write_bucket(index, snapshot)
                .expect("replaying a bucket image");
        }
    }

    fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        if !self.is_initialized(index) {
            return false;
        }
        let pos = self.offset(index);
        let mut header = [0u8; 8];
        if self.file.read_exact_at(&mut header, pos).is_err() {
            return false;
        }
        let seed = u64::from_le_bytes(header);
        self.file
            .write_all_at(&seed.wrapping_sub(delta).to_le_bytes(), pos)
            .is_ok()
    }

    fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating", dir, e))?;
        let target = tree_file_path(dir, label);
        let in_place = match (
            std::fs::canonicalize(&target),
            std::fs::canonicalize(&self.tree_path),
        ) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        };
        if in_place {
            self.file
                .sync_all()
                .map_err(|e| io_err("syncing", &self.tree_path, e))?;
        } else {
            // Persisting into a different directory: copy the initialised
            // buckets into a fresh sparse file at the same offsets.
            let out = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&target)
                .map_err(|e| io_err("creating", &target, e))?;
            out.set_len(self.layout.total_bytes())
                .map_err(|e| io_err("sizing", &target, e))?;
            let mut buf = vec![0u8; self.bucket_bytes];
            for index in 0..self.num_buckets as u64 {
                if !self.is_initialized(index) {
                    continue;
                }
                self.read_bucket_into(index, &mut buf)?;
                out.write_all_at(&buf, self.offset(index))
                    .map_err(|e| io_err_bucket("persist bucket", index, &target, e))?;
            }
            out.sync_all().map_err(|e| io_err("syncing", &target, e))?;
            // The copy is complete as of wal_seq; a stale log beside the
            // target would replay foreign buckets over it on resume.
            let _ = std::fs::remove_file(wal::wal_file_path(dir, label));
        }
        // In place, the live WAL stays as is: replay is idempotent, and the
        // meta written below covers everything applied so far anyway.
        write_tree_meta(
            &tree_meta_path(dir, label),
            self.num_buckets,
            self.bucket_bytes,
            self.layout.subtree_levels(),
            &self.initialized,
            self.wal_seq,
        )
    }
}

// =====================================================================
// TreeStorage: the enum the backend holds.
// =====================================================================

/// Untrusted tree storage behind the [`TreeStore`] seam: either the
/// in-memory arena or the file-backed store, dispatched statically.
///
/// All trait methods are also available as inherent methods (delegating),
/// so existing call sites — in particular the adversary API used by tests
/// and examples — keep working without importing the trait.
// One instance exists per ORAM tree, so the size gap between the slim
// arena handle and the WAL-carrying file store is irrelevant; boxing the
// file variant would buy nothing but an extra indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TreeStorage {
    /// In-memory arena.
    Mem(MemStore),
    /// File-backed store.
    File(FileStore),
}

macro_rules! delegate {
    ($self:ident, $store:ident => $body:expr) => {
        match $self {
            TreeStorage::Mem($store) => $body,
            TreeStorage::File($store) => $body,
        }
    };
}

impl TreeStorage {
    /// Allocates in-memory storage for the tree described by `params`
    /// (back-compatible constructor; use [`TreeStorage::create`] to choose
    /// the store kind).
    pub fn new(params: &OramParams) -> Self {
        TreeStorage::Mem(MemStore::new(params))
    }

    /// Creates a fresh store of the given kind.  `label` distinguishes
    /// several trees sharing one directory (the recursive frontend's
    /// per-level ORAMs).  `durability` selects the WAL discipline for
    /// file-backed kinds; memory stores have nothing to log and ignore it.
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure creating file-backed stores.
    pub fn create(
        params: &OramParams,
        kind: &StorageKind,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        Ok(match kind {
            StorageKind::Mem => TreeStorage::Mem(MemStore::new(params)),
            StorageKind::File { dir } => {
                TreeStorage::File(FileStore::create(params, dir, label, durability)?)
            }
            StorageKind::TempFile => {
                TreeStorage::File(FileStore::create_temp(params, label, durability)?)
            }
        })
    }

    /// Opens a store over tree files persisted under `dir`: memory stores
    /// load the buckets into a fresh arena, file stores reopen the files in
    /// place (the snapshot directory becomes the live directory).  Either
    /// way, a checksum-valid WAL tail left behind by a crash is replayed
    /// first (see [`FileStore::open`]).
    ///
    /// # Errors
    ///
    /// [`OramError::Storage`] on I/O failure, [`OramError::Snapshot`] /
    /// [`OramError::IntegrityViolation`] for missing or corrupt metadata.
    pub fn open_snapshot(
        params: &OramParams,
        kind: &StorageKind,
        dir: &Path,
        label: u32,
        durability: Durability,
    ) -> Result<Self, OramError> {
        Ok(match kind {
            StorageKind::Mem => TreeStorage::Mem(MemStore::load(params, dir, label)?),
            StorageKind::File { dir: file_dir } => {
                TreeStorage::File(FileStore::open(params, file_dir, label, durability)?)
            }
            StorageKind::TempFile => {
                return Err(OramError::Snapshot {
                    detail: "cannot resume a snapshot into a temporary file store; \
                             use StorageKind::File or StorageKind::Mem"
                        .into(),
                })
            }
        })
    }

    /// The memory store, if that is what this is — the backend's zero-copy
    /// fast path keys off this.
    #[inline]
    pub fn as_mem(&self) -> Option<&MemStore> {
        match self {
            TreeStorage::Mem(m) => Some(m),
            TreeStorage::File(_) => None,
        }
    }

    /// Mutable variant of [`TreeStorage::as_mem`].
    #[inline]
    pub fn as_mem_mut(&mut self) -> Option<&mut MemStore> {
        match self {
            TreeStorage::Mem(m) => Some(m),
            TreeStorage::File(_) => None,
        }
    }

    /// Whether the tree lives in files.
    pub fn is_file_backed(&self) -> bool {
        matches!(self, TreeStorage::File(_))
    }

    // Inherent delegations so call sites don't need the trait in scope.

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        delegate!(self, s => TreeStore::num_buckets(s))
    }

    /// Serialised bucket size in bytes.
    pub fn bucket_bytes(&self) -> usize {
        delegate!(self, s => TreeStore::bucket_bytes(s))
    }

    /// Whether a bucket has ever been written.
    #[inline]
    pub fn is_initialized(&self, index: u64) -> bool {
        delegate!(self, s => s.is_initialized(index))
    }

    /// See [`TreeStore::read_bucket_into`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::read_bucket_into`].
    pub fn read_bucket_into(&self, index: u64, out: &mut [u8]) -> Result<(), OramError> {
        delegate!(self, s => s.read_bucket_into(index, out))
    }

    /// See [`TreeStore::write_bucket`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::write_bucket`].
    pub fn write_bucket(&mut self, index: u64, image: &[u8]) -> Result<(), OramError> {
        delegate!(self, s => s.write_bucket(index, image))
    }

    /// See [`TreeStore::read_path_into`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::read_path_into`].
    pub fn read_path_into(&mut self, indices: &[u64], buf: &mut [u8]) -> Result<(), OramError> {
        delegate!(self, s => s.read_path_into(indices, buf))
    }

    /// See [`TreeStore::write_path`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::write_path`].
    pub fn write_path(&mut self, indices: &[u64], buf: &[u8]) -> Result<(), OramError> {
        delegate!(self, s => s.write_path(indices, buf))
    }

    /// See [`TreeStore::resident_bytes`].
    pub fn resident_bytes(&self) -> u64 {
        delegate!(self, s => s.resident_bytes())
    }

    /// See [`TreeStore::tamper_xor`].
    pub fn tamper_xor(&mut self, index: u64, offset: usize, mask: u8) -> bool {
        delegate!(self, s => s.tamper_xor(index, offset, mask))
    }

    /// See [`TreeStore::snapshot_bucket`].
    pub fn snapshot_bucket(&self, index: u64) -> Vec<u8> {
        delegate!(self, s => s.snapshot_bucket(index))
    }

    /// See [`TreeStore::replay_bucket`].
    pub fn replay_bucket(&mut self, index: u64, snapshot: &[u8]) {
        delegate!(self, s => s.replay_bucket(index, snapshot))
    }

    /// See [`TreeStore::rollback_seed`].
    pub fn rollback_seed(&mut self, index: u64, delta: u64) -> bool {
        delegate!(self, s => s.rollback_seed(index, delta))
    }

    /// See [`TreeStore::persist_to`].
    ///
    /// # Errors
    ///
    /// As for [`TreeStore::persist_to`].
    pub fn persist_to(&self, dir: &Path, label: u32) -> Result<(), OramError> {
        delegate!(self, s => s.persist_to(dir, label))
    }

    /// Sequence number of the last writeback this store's contents cover
    /// (0 for stores that never logged; see [`FileStore::wal_seq`] and
    /// [`MemStore::wal_seq`]).  The controller barrier recorded in
    /// snapshots compares against this on resume.
    pub fn wal_seq(&self) -> u64 {
        match self {
            TreeStorage::Mem(m) => m.wal_seq(),
            TreeStorage::File(f) => f.wal_seq(),
        }
    }

    /// Explicit WAL checkpoint fold (see [`FileStore::checkpoint`]); a
    /// no-op for memory stores.
    ///
    /// # Errors
    ///
    /// As for [`FileStore::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), OramError> {
        match self {
            TreeStorage::Mem(_) => Ok(()),
            TreeStorage::File(f) => f.checkpoint(),
        }
    }

    /// See [`FileStore::set_checkpoint_interval`]; no-op for memory stores.
    #[doc(hidden)]
    pub fn set_checkpoint_interval(&mut self, records: u64) {
        if let TreeStorage::File(f) = self {
            f.set_checkpoint_interval(records);
        }
    }

    /// See [`FileStore::set_fail_after_wal_bytes`]; no-op for memory stores.
    #[doc(hidden)]
    pub fn set_fail_after_wal_bytes(&mut self, bytes: u64) {
        if let TreeStorage::File(f) = self {
            f.set_fail_after_wal_bytes(bytes);
        }
    }

    /// See [`FileStore::set_fail_after_tree_writes`]; no-op for memory
    /// stores.
    #[doc(hidden)]
    pub fn set_fail_after_tree_writes(&mut self, writes: u64) {
        if let TreeStorage::File(f) = self {
            f.set_fail_after_tree_writes(writes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> OramParams {
        OramParams::new(64, 16, 4)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "oram-storage-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Runs the shared store-contract checks against any store.
    fn check_store_contract(s: &mut dyn TreeStore) {
        assert!(s.num_buckets() > 0);
        assert!(!s.is_initialized(0));
        let bb = s.bucket_bytes();
        let mut out = vec![0xFFu8; bb];
        s.read_bucket_into(0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "uninitialised reads as zero");
        assert_eq!(s.resident_bytes(), 0);

        // Write/read round trip.
        let image = vec![0xCD; bb];
        s.write_bucket(3, &image).unwrap();
        assert!(s.is_initialized(3));
        assert!(!s.is_initialized(2));
        s.read_bucket_into(3, &mut out).unwrap();
        assert_eq!(out, image);
        assert_eq!(s.resident_bytes(), bb as u64);

        // Tampering.
        s.write_bucket(0, &vec![0u8; bb]).unwrap();
        assert!(s.tamper_xor(0, 10, 0xFF));
        s.read_bucket_into(0, &mut out).unwrap();
        assert_eq!(out[10], 0xFF);
        assert_eq!(out[9], 0x00);
        assert!(!s.tamper_xor(0, 1 << 20, 1));
        assert!(!s.tamper_xor(1, 0, 1));

        // Snapshot and replay.
        let old = vec![1u8; bb];
        let new = vec![2u8; bb];
        s.write_bucket(5, &old).unwrap();
        let snap = s.snapshot_bucket(5);
        s.write_bucket(5, &new).unwrap();
        s.replay_bucket(5, &snap);
        s.read_bucket_into(5, &mut out).unwrap();
        assert_eq!(out, old);

        // Empty replay uninitialises.
        let empty = s.snapshot_bucket(7);
        assert!(empty.is_empty());
        s.write_bucket(7, &vec![9u8; bb]).unwrap();
        s.replay_bucket(7, &empty);
        assert!(!s.is_initialized(7));
        s.read_bucket_into(7, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        // Seed rollback.
        let mut image = vec![0u8; bb];
        image[..8].copy_from_slice(&100u64.to_le_bytes());
        s.write_bucket(2, &image).unwrap();
        assert!(s.rollback_seed(2, 1));
        s.read_bucket_into(2, &mut out).unwrap();
        assert_eq!(u64::from_le_bytes(out[..8].try_into().unwrap()), 99);
        assert!(!s.rollback_seed(6, 1));

        // Batched path access.
        let indices = [0u64, 2, 5];
        let mut buf = vec![0u8; 3 * bb];
        s.read_path_into(&indices, &mut buf).unwrap();
        s.read_bucket_into(0, &mut out).unwrap();
        assert_eq!(&buf[..bb], &out[..]);
        let patterned: Vec<u8> = (0..3 * bb).map(|i| (i % 251) as u8).collect();
        s.write_path(&indices, &patterned).unwrap();
        for (level, &idx) in indices.iter().enumerate() {
            s.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &patterned[level * bb..(level + 1) * bb]);
            assert!(s.is_initialized(idx));
        }
    }

    #[test]
    fn mem_store_satisfies_the_contract() {
        let mut s = MemStore::new(&params());
        check_store_contract(&mut s);
    }

    #[test]
    fn file_store_satisfies_the_contract() {
        let mut s = FileStore::create_temp(&params(), 0, Durability::None).unwrap();
        check_store_contract(&mut s);
    }

    #[test]
    fn mem_store_zero_copy_accessors_still_work() {
        let p = params();
        let mut s = MemStore::new(&p);
        s.bucket_slot_mut(5)[0] = 0xAB;
        assert!(s.is_initialized(5));
        assert_eq!(s.read_bucket(5)[0], 0xAB);
        assert_eq!(s.bucket_offset(5), 5 * s.bucket_bytes());
        // Adjacent buckets sit back to back in the arena.
        for idx in 0..s.num_buckets() as u64 {
            let image = vec![idx as u8 + 1; s.bucket_bytes()];
            s.write_bucket(idx, &image).unwrap();
        }
        for idx in 0..s.num_buckets() as u64 {
            assert!(s.read_bucket(idx).iter().all(|&b| b == idx as u8 + 1));
        }
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn mem_store_rejects_wrong_size_image() {
        let mut s = MemStore::new(&params());
        let _ = s.write_bucket(0, &[0u8; 3]);
    }

    #[test]
    #[should_panic(expected = "bucket_bytes")]
    fn file_store_rejects_wrong_size_image() {
        let mut s = FileStore::create_temp(&params(), 0, Durability::None).unwrap();
        let _ = s.write_bucket(0, &[0u8; 3]);
    }

    #[test]
    fn stores_persist_into_a_common_interchangeable_format() {
        let p = params();
        let dir_a = temp_dir("interchange-a");
        let dir_b = temp_dir("interchange-b");

        // Populate a mem store and persist it.
        let mut mem = MemStore::new(&p);
        let image_a = vec![0xA1; mem.bucket_bytes()];
        let image_b = vec![0xB2; mem.bucket_bytes()];
        mem.write_bucket(1, &image_a).unwrap();
        mem.write_bucket(30, &image_b).unwrap();
        mem.persist_to(&dir_a, 0).unwrap();

        // Resume it file-backed, verify contents, mutate, persist elsewhere.
        let mut file = FileStore::open(&p, &dir_a, 0, Durability::None).unwrap();
        let mut out = vec![0u8; file.bucket_bytes()];
        file.read_bucket_into(1, &mut out).unwrap();
        assert_eq!(out, image_a);
        file.read_bucket_into(30, &mut out).unwrap();
        assert_eq!(out, image_b);
        assert!(!file.is_initialized(2));
        let image_c = vec![0xC3; file.bucket_bytes()];
        file.write_bucket(2, &image_c).unwrap();
        file.persist_to(&dir_b, 0).unwrap();

        // Resume *that* as a mem store.
        let mem2 = MemStore::load(&p, &dir_b, 0).unwrap();
        assert_eq!(mem2.read_bucket(1), &image_a[..]);
        assert_eq!(mem2.read_bucket(2), &image_c[..]);
        assert_eq!(mem2.read_bucket(30), &image_b[..]);
        assert_eq!(mem2.resident_bytes(), 3 * mem2.bucket_bytes() as u64);

        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn file_store_persists_in_place_with_a_flush() {
        let p = params();
        let dir = temp_dir("inplace");
        let mut s = FileStore::create(&p, &dir, 0, Durability::None).unwrap();
        s.write_bucket(4, &vec![0x44; s.bucket_bytes()]).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::None).unwrap();
        let mut out = vec![0u8; s2.bucket_bytes()];
        s2.read_bucket_into(4, &mut out).unwrap();
        assert_eq!(out, vec![0x44; s2.bucket_bytes()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_without_metadata_is_a_storage_error() {
        let p = params();
        let dir = temp_dir("nometa");
        assert!(matches!(
            FileStore::open(&p, &dir, 0, Durability::None),
            Err(OramError::Storage { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_metadata_is_an_integrity_violation() {
        let p = params();
        let dir = temp_dir("badmeta");
        let mut s = FileStore::create(&p, &dir, 0, Durability::None).unwrap();
        s.write_bucket(0, &vec![7u8; s.bucket_bytes()]).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        let meta = tree_meta_path(&dir, 0);
        let mut bytes = std::fs::read(&meta).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&meta, &bytes).unwrap();
        assert!(matches!(
            FileStore::open(&p, &dir, 0, Durability::None),
            Err(OramError::IntegrityViolation { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn geometry_mismatch_is_a_snapshot_error() {
        let dir = temp_dir("geom");
        let s = FileStore::create(&params(), &dir, 0, Durability::None).unwrap();
        s.persist_to(&dir, 0).unwrap();
        drop(s);
        // Different geometry: more blocks, different bucket size.
        let other = OramParams::new(1 << 10, 64, 4);
        assert!(matches!(
            FileStore::open(&other, &dir, 0, Durability::None),
            Err(OramError::Snapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temp_stores_clean_up_after_themselves() {
        let p = params();
        let s = FileStore::create_temp(&p, 0, Durability::None).unwrap();
        let dir = s.dir().to_path_buf();
        assert!(dir.exists());
        drop(s);
        assert!(!dir.exists(), "temp store directory should be removed");
    }

    #[test]
    fn storage_kind_resolution_and_subdirs() {
        assert_eq!(StorageKind::Mem.subdir("shard0"), StorageKind::Mem);
        let file = StorageKind::File {
            dir: PathBuf::from("/data/oram"),
        };
        assert_eq!(
            file.subdir("shard3"),
            StorageKind::File {
                dir: PathBuf::from("/data/oram/shard3")
            }
        );
        assert_eq!(StorageKind::Mem.tag(), 0);
        assert_eq!(file.tag(), 1);
        assert_eq!(StorageKind::TempFile.tag(), 1);
        let root = Path::new("/snap");
        assert_eq!(StorageKind::from_tag(0, root).unwrap(), StorageKind::Mem);
        assert_eq!(
            StorageKind::from_tag(1, root).unwrap(),
            StorageKind::File {
                dir: root.to_path_buf()
            }
        );
        assert!(StorageKind::from_tag(9, root).is_err());
    }

    #[test]
    fn wal_store_recovers_writebacks_never_persisted() {
        let p = params();
        let dir = temp_dir("walrec");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        let indices = [0u64, 1, 3];
        let image: Vec<u8> = (0..3 * bb).map(|i| (i % 249) as u8 + 1).collect();
        s.write_path(&indices, &image).unwrap();
        // No persist_to: only create()'s empty checkpoint and the WAL
        // survive the drop.
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::Strict).unwrap();
        assert_eq!(s2.wal_seq(), 1);
        let mut out = vec![0u8; bb];
        for (level, &idx) in indices.iter().enumerate() {
            assert!(s2.is_initialized(idx));
            s2.read_bucket_into(idx, &mut out).unwrap();
            assert_eq!(out, &image[level * bb..(level + 1) * bb]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_folds_the_log_and_survives_reopen() {
        let p = params();
        let dir = temp_dir("ckpt");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Batch(8)).unwrap();
        s.set_checkpoint_interval(2);
        let bb = s.bucket_bytes();
        for round in 0..5u64 {
            let image = vec![round as u8 + 1; 2 * bb];
            s.write_path(&[round, round + 8], &image).unwrap();
        }
        assert_eq!(s.wal_seq(), 5);
        // Five writebacks at interval 2 → folds after #2 and #4; the log
        // holds only record #5, far below two records' worth of bytes.
        let wal_len = std::fs::metadata(wal::wal_file_path(&dir, 0))
            .unwrap()
            .len();
        assert!(
            wal_len < 2 * (2 * bb) as u64,
            "log should have been truncated by the fold (len {wal_len})"
        );
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::Batch(8)).unwrap();
        assert_eq!(s2.wal_seq(), 5);
        let mut out = vec![0u8; bb];
        s2.read_bucket_into(4, &mut out).unwrap();
        assert_eq!(out, vec![5u8; bb]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_without_durability_folds_and_drops_the_log() {
        let p = params();
        let dir = temp_dir("drop-wal");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        s.write_path(&[2, 9], &vec![0x5A; 2 * bb]).unwrap();
        drop(s);
        let s2 = FileStore::open(&p, &dir, 0, Durability::None).unwrap();
        assert!(!s2.has_wal());
        assert!(!wal::wal_file_path(&dir, 0).exists());
        assert_eq!(s2.wal_seq(), 1);
        let mut out = vec![0u8; bb];
        s2.read_bucket_into(9, &mut out).unwrap();
        assert_eq!(out, vec![0x5A; bb]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_load_replays_a_wal_tail() {
        let p = params();
        let dir = temp_dir("mem-tail");
        let mut s = FileStore::create(&p, &dir, 0, Durability::Strict).unwrap();
        let bb = s.bucket_bytes();
        s.write_path(&[1, 6], &vec![0x77; 2 * bb]).unwrap();
        // Meta is still the empty create() checkpoint; the data lives only
        // in the WAL.  A memory resume must see the same recovered tree.
        drop(s);
        let mem = MemStore::load(&p, &dir, 0).unwrap();
        assert_eq!(mem.wal_seq(), 1);
        assert_eq!(mem.read_bucket(6), &vec![0x77u8; bb][..]);
        assert!(mem.is_initialized(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tree_storage_enum_dispatches_to_both_stores() {
        let p = params();
        let mut mem = TreeStorage::create(&p, &StorageKind::Mem, 0, Durability::None).unwrap();
        assert!(mem.as_mem().is_some());
        assert!(!mem.is_file_backed());
        mem.write_bucket(1, &vec![5u8; mem.bucket_bytes()]).unwrap();
        assert_eq!(mem.snapshot_bucket(1), vec![5u8; mem.bucket_bytes()]);

        let mut file =
            TreeStorage::create(&p, &StorageKind::TempFile, 0, Durability::None).unwrap();
        assert!(file.as_mem().is_none());
        assert!(file.is_file_backed());
        file.write_bucket(1, &vec![5u8; file.bucket_bytes()])
            .unwrap();
        assert_eq!(file.snapshot_bucket(1), vec![5u8; file.bucket_bytes()]);
    }
}
